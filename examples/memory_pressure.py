#!/usr/bin/env python3
"""Inverse lotteries for space-shared memory (the §6.2 generalization).

Three clients with a 3:2:1 ticket allocation hammer a small physical
frame pool with working sets larger than memory.  Under inverse-lottery
replacement the poorly funded client donates most of the evicted pages;
under plain LRU everyone suffers equally, tickets be damned.

Run:  python examples/memory_pressure.py
"""

from repro.core.inverse import inverse_probabilities
from repro.core.prng import ParkMillerPRNG
from repro.mem import (
    FramePool,
    InverseLotteryReplacement,
    LRUReplacement,
    MemoryManager,
)

TICKETS = {"render": 300.0, "compile": 200.0, "backup": 100.0}
FRAMES = 96
PAGES_PER_CLIENT = 64
REFERENCES = 90_000


def drive(manager: MemoryManager, seed: int) -> None:
    stream = ParkMillerPRNG(seed)
    clients = sorted(TICKETS)
    for step in range(REFERENCES):
        client = clients[step % len(clients)]
        manager.reference(client, stream.randrange(PAGES_PER_CLIENT),
                          now=float(step))


def report(title: str, manager: MemoryManager) -> None:
    print(f"  {title}")
    for client in sorted(TICKETS):
        print(f"    {client:<8} tickets={TICKETS[client]:>5.0f}"
              f"  evicted={manager.evictions.get(client, 0):>6d}"
              f"  share={manager.eviction_share(client):6.1%}"
              f"  fault-rate={manager.fault_rate(client):6.1%}"
              f"  resident={manager.pool.usage(client):>3d} frames")
    print()


def main() -> None:
    print("== inverse-lottery page replacement (tickets protect memory) ==")
    pool = FramePool(FRAMES)
    policy = InverseLotteryReplacement(
        tickets_of=TICKETS.__getitem__, prng=ParkMillerPRNG(61)
    )
    manager = MemoryManager(pool, policy)
    drive(manager, seed=62)
    report("inverse lottery:", manager)

    print("   closed-form loss probabilities (ticket term only):")
    for client, probability in inverse_probabilities(
        sorted(TICKETS.items())
    ):
        print(f"    {client:<8} P[loses] = {probability:.3f}")
    print()

    print("== LRU baseline (ticket-blind) ==")
    lru_manager = MemoryManager(FramePool(FRAMES), LRUReplacement())
    drive(lru_manager, seed=62)
    report("global LRU:", lru_manager)

    print("shape: with the inverse lottery, eviction shares order"
          " backup > compile > render;")
    print("LRU splits evictions evenly regardless of funding.")


if __name__ == "__main__":
    main()
