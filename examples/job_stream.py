#!/usr/bin/env python3
"""Service classes on an open job stream (trace-driven evaluation).

A Poisson stream of jobs arrives at a busy machine.  Each job is
assigned a service class purely by ticket count -- gold (400), silver
(200), bronze (100).  Under lottery scheduling, mean slowdown orders
gold < silver < bronze; under round-robin, everyone gets the same
(mediocre) service regardless of what they paid.

This is the paper's "databases and transaction-processing applications
[managing] response times seen by competing clients or transactions
with varying importance" (section 5.4), demonstrated on the
trace-replay substrate.  The full sweep (including the deterministic
stride scheduler) lives in ``repro.experiments.service_classes``.

Run:  python examples/job_stream.py
"""

from repro.experiments.service_classes import run_stream


def summarize(title, replayer, means):
    print(f"== {title} ==")
    print(f"  jobs completed: {replayer.completed()} / {len(replayer.trace)}")
    print(f"  mean response: {replayer.mean_response_time() / 1000:.2f}s")
    for name in ("gold", "silver", "bronze"):
        print(f"  {name:<7} mean slowdown {means[name]:6.2f}x")
    print()


def main() -> None:
    print("900 Poisson jobs, ~80% offered load, ticket classes"
          " 400/200/100\n")
    summarize("lottery scheduling", *run_stream("lottery"))
    summarize("round-robin (ticket-blind)", *run_stream("round-robin"))
    print("lottery differentiates the classes; round-robin cannot.")


if __name__ == "__main__":
    main()
