#!/usr/bin/env python3
"""Distributed lottery scheduling across cluster nodes (§4.2 extension).

Three single-CPU nodes share a clock and a ticket ledger.  Six threads
with very unequal funding all start on node0 — the worst possible
placement.  Without migration, node0's local lottery can only split one
CPU; with the funding-balancing rebalancer, node ticket totals equalize
and every thread converges to its *global* entitlement.

Run:  python examples/cluster_demo.py
"""

from repro.distributed import Cluster
from repro.kernel.syscalls import Compute

FUNDINGS = [800.0, 400.0, 200.0, 100.0, 100.0, 100.0]
DURATION_MS = 200_000.0


def spinner(ctx):
    while True:
        yield Compute(50.0)


def run(rebalance: bool) -> Cluster:
    cluster = Cluster(nodes=3,
                      rebalance_period=1000.0 if rebalance else None,
                      seed=909)
    node0 = cluster.nodes[0]
    for index, funding in enumerate(FUNDINGS):
        cluster.spawn(spinner, f"t{index}", tickets=funding, node=node0)
    cluster.run_until(DURATION_MS)
    return cluster


def report(title: str, cluster: Cluster) -> None:
    print(f"== {title} ==")
    print(f"  migrations: {cluster.migrations}")
    print(f"  {'thread':<6} {'node':<6} {'funding':>8} {'cpu (s)':>8}"
          f" {'entitled':>9} {'error':>7}")
    for row in cluster.fairness_report(DURATION_MS):
        print(f"  {row['thread']:<6} {row['node']:<6}"
              f" {row['funding']:>8.0f} {row['cpu_ms'] / 1000:>8.1f}"
              f" {row['entitled_ms'] / 1000:>9.1f}"
              f" {row['relative_error']:>6.1%}")
    print(f"  worst deviation from global entitlement:"
          f" {cluster.max_relative_error(DURATION_MS):.1%}")
    print()


def main() -> None:
    print("six threads (800/400/200/100/100/100 tickets), all placed on"
          " node0\n")
    report("static placement (no migration)", run(rebalance=False))
    report("funding-balancing migration", run(rebalance=True))
    print("with migration, per-node ticket totals equalize, so each")
    print("node's local lottery composes into the global share --")
    print("the distributed scheduler the paper's section 4.2 sketches.")


if __name__ == "__main__":
    main()
