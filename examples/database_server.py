#!/usr/bin/env python3
"""Client-server ticket transfers (the Figure 7 scenario).

A multithreaded text-search server holds essentially no tickets of its
own; three clients with an 8:3:1 allocation fund it query-by-query via
the transfers that ride on synchronous RPC.  Both throughput and
response time track the allocation -- and when the big client leaves,
the survivors' rates rise immediately.

Run:  python examples/database_server.py
"""

from repro import Engine, Kernel, Ledger, LotteryPolicy, ParkMillerPRNG
from repro.workloads.database import DatabaseClient, DatabaseServer


def main() -> None:
    engine = Engine()
    ledger = Ledger()
    kernel = Kernel(engine, LotteryPolicy(ledger, prng=ParkMillerPRNG(51)),
                    ledger=ledger, quantum=100.0)

    print("loading the corpus and starting 3 worker threads...")
    server = DatabaseServer(kernel, workers=3, corpus_kb=1000.0,
                            scan_ms_per_kb=1.0)
    print(f"  corpus: {server.corpus_kb:.0f} KB;"
          f" one query costs ~{server.corpus_kb * server.scan_ms_per_kb:.0f}"
          " ms of CPU")

    clients = {
        "A": DatabaseClient(kernel, server, "A", tickets=800,
                            max_queries=40),
        "B": DatabaseClient(kernel, server, "B", tickets=300),
        "C": DatabaseClient(kernel, server, "C", tickets=100),
    }

    def report():
        counts = {n: c.completed for n, c in clients.items()}
        print(f"[{engine.now / 1000:6.1f}s] completed queries: {counts}")
        if engine.now < 600_000.0:
            engine.call_after(60_000.0, report)

    engine.call_after(60_000.0, report)
    kernel.run_until(600_000.0)

    print()
    print("results (every query counted the planted string correctly):")
    for name, client in clients.items():
        results = sorted(set(client.results))
        print(f"  {name}: {client.completed:4d} queries,"
              f" mean response {client.mean_response_time() / 1000:7.2f}s,"
              f" result={results}")
    b, c = clients["B"], clients["C"]
    if c.completed:
        print(f"\n  B:C throughput {b.completed / c.completed:.2f}:1"
              " (allocated 3:1)")
    print(f"  server answered {server.queries_served} queries with no"
          " tickets of its own -- all CPU was client-funded transfers")


if __name__ == "__main__":
    main()
