#!/usr/bin/env python3
"""Lottery-scheduled mutexes and priority inversion (§6.1).

Act 1 reproduces the Figure 11 contention experiment in miniature:
eight threads, group funding A:B = 2:1, each looping
acquire-hold-release-compute.  Acquisition counts and waiting times
track the 2:1 allocation.

Act 2 demonstrates the inheritance ticket: a nearly unfunded thread
takes the lock, a heavily funded thread blocks on it -- and the owner
suddenly runs at the waiter's rate, so the critical section finishes
quickly instead of crawling (the priority-inversion fix).

Run:  python examples/lock_inheritance.py
"""

from repro import Engine, Kernel, Ledger, LotteryPolicy, ParkMillerPRNG
from repro.kernel.syscalls import AcquireMutex, Compute, ReleaseMutex
from repro.sync.mutex import LotteryMutex
from repro.workloads.synthetic import MutexContender


def act1_contention() -> None:
    print("== act 1: Figure 11 in miniature (A:B funded 2:1) ==")
    engine = Engine()
    ledger = Ledger()
    kernel = Kernel(engine, LotteryPolicy(ledger, prng=ParkMillerPRNG(66)),
                    ledger=ledger, quantum=100.0)
    mutex = LotteryMutex(kernel, "hotlock", prng=ParkMillerPRNG(67))
    groups = {"A": [], "B": []}
    for group, funding in (("A", 200), ("B", 100)):
        for member in range(4):
            name = f"{group}{member + 1}"
            contender = MutexContender(name, mutex, hold_ms=50,
                                       compute_ms=50,
                                       seed=1000 + member * 7 + ord(group))
            groups[group].append(
                kernel.spawn(contender.body, name, tickets=funding)
            )
    kernel.run_until(120_000)
    stats = {}
    for group, threads in groups.items():
        acquisitions = sum(mutex.acquisitions.get(t.tid, 0) for t in threads)
        waits = [w for t in threads
                 for w in mutex.waiting_times.get(t.tid, [])]
        mean_wait = sum(waits) / len(waits) if waits else 0.0
        stats[group] = (acquisitions, mean_wait)
        print(f"  group {group}: {acquisitions:4d} acquisitions,"
              f" mean wait {mean_wait:6.0f} ms")
    a, b = stats["A"], stats["B"]
    print(f"  acquisition ratio {a[0] / b[0]:.2f}:1 (paper: 1.80:1);"
          f" waiting ratio 1:{b[1] / a[1]:.2f} (paper: 1:2.11)")
    print()


def act2_inheritance() -> None:
    print("== act 2: the inheritance ticket beats priority inversion ==")
    from repro.sync.mutex import Mutex

    for variant in ("lottery mutex", "standard mutex"):
        engine = Engine()
        ledger = Ledger()
        kernel = Kernel(engine,
                        LotteryPolicy(ledger, prng=ParkMillerPRNG(71)),
                        ledger=ledger, quantum=100.0)
        if variant == "lottery mutex":
            mutex = LotteryMutex(kernel, "lock", prng=ParkMillerPRNG(72))
        else:
            # No mutex currency, no inheritance: the blocked waiter's
            # funding idles while the poor owner crawls.
            mutex = Mutex(kernel, "lock")
        section_done = {}

        def poor_owner(ctx):
            yield AcquireMutex(mutex)
            yield Compute(500.0)  # a long critical section
            yield ReleaseMutex(mutex)
            section_done["at"] = ctx.now

        def rich_waiter(ctx):
            yield Compute(10.0)
            yield AcquireMutex(mutex)
            yield ReleaseMutex(mutex)

        def background(ctx):
            while True:
                yield Compute(100.0)

        kernel.spawn(poor_owner, "poor-owner", tickets=2)
        kernel.spawn(rich_waiter, "rich-waiter", tickets=500)
        for i in range(3):
            kernel.spawn(background, f"noise{i}", tickets=500)
        kernel.run_until(120_000)
        at = section_done.get("at")
        done = f"{at / 1000:.1f}s" if at is not None else ">120s (crawling)"
        print(f"  {variant:<16} critical section finished at {done}")
    print("\n  with the lottery mutex, the 2-ticket owner inherited the")
    print("  waiter's 500 tickets and cleared the lock far sooner.")


if __name__ == "__main__":
    act1_contention()
    act2_inheritance()
