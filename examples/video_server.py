#!/usr/bin/env python3
"""Multimedia rate control (the Figure 8 scenario, interactively extended).

Three simulated MPEG viewers share one CPU.  Tickets -- not feedback
hacks in the applications -- set their relative frame rates; halfway
through, the allocation changes from 3:2:1 to 3:1:2 and the rates
follow within one quantum.  A fourth, paced viewer then joins to show
that a viewer whose share exceeds its target frame rate simply sleeps
(compensation tickets keep its share intact when it wakes).

Run:  python examples/video_server.py
"""

from repro import Engine, Kernel, Ledger, LotteryPolicy, ParkMillerPRNG
from repro.core.inflation import set_share
from repro.workloads.mpeg import MpegViewer


def main() -> None:
    engine = Engine()
    ledger = Ledger()
    kernel = Kernel(engine, LotteryPolicy(ledger, prng=ParkMillerPRNG(88)),
                    ledger=ledger, quantum=100.0)

    videos = ledger.create_currency("videos")
    ledger.create_ticket(600, fund=videos)

    viewers = []
    threads = []
    for name, share in (("A", 300), ("B", 200), ("C", 100)):
        viewer = MpegViewer(f"viewer{name}", decode_ms=100.0)
        task = kernel.create_task(f"mpeg-{name}")
        task.currency = videos
        thread = kernel.spawn(viewer.body, viewer.name, task=task,
                              tickets=share, currency=videos)
        viewers.append(viewer)
        threads.append(thread)

    half = 150_000.0

    def reallocate():
        print(f"[{engine.now / 1000:6.1f}s] reallocating 3:2:1 -> 3:1:2")
        for thread, share in zip(threads, (300, 100, 200)):
            set_share(thread, videos, share)

    engine.call_at(half, reallocate)

    def report():
        window = 30_000.0
        start = max(engine.now - window, 0.0)
        rates = [v.frame_rate(start, engine.now) for v in viewers]
        floor = min(r for r in rates if r > 0) if any(rates) else 1.0
        pretty = " : ".join(f"{r / floor:.2f}" for r in rates)
        print(f"[{engine.now / 1000:6.1f}s] frame rates "
              + " ".join(f"{v.name}={r:.2f}fps" for v, r in zip(viewers, rates))
              + f"  ratio {pretty}")
        if engine.now < 300_000.0:
            engine.call_after(30_000.0, report)

    engine.call_after(30_000.0, report)
    kernel.run_until(300_000.0)

    print()
    print("cumulative frames:",
          {v.name: int(v.frames) for v in viewers})

    # -- act 2: a paced viewer joins --------------------------------------
    print()
    print("A 10 fps *paced* viewer joins with a huge allocation;")
    print("it sleeps between frames, so the others keep most of the CPU:")
    paced = MpegViewer("paced", decode_ms=10.0, target_fps=10.0)
    task = kernel.create_task("mpeg-paced")
    task.currency = videos
    kernel.spawn(paced.body, "paced", task=task, tickets=1200,
                 currency=videos)
    start = engine.now
    kernel.run_until(start + 60_000.0)
    print(f"  paced viewer: {paced.frame_rate(start, engine.now):.1f} fps"
          " (capped by its own deadline pacing, not by tickets)")
    others = [v.frame_rate(start, engine.now) for v in viewers]
    print("  others still decode at "
          + ", ".join(f"{r:.2f}fps" for r in others))


if __name__ == "__main__":
    main()
