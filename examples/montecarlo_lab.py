#!/usr/bin/env python3
"""Error-driven ticket inflation (the Figure 6 scenario).

Three Monte-Carlo integrations of the quarter-circle (so each estimate
converges to pi/4) start 90 seconds apart.  Each periodically re-funds
itself with a ticket value proportional to the *square of its relative
error*: young, uncertain experiments sprint; converged ones idle at a
trickle.  The cumulative-trials curves show the younger tasks catching
up -- the paper's point that inflation gives mutually trusting clients
dynamic control with no scheduler involvement.

Run:  python examples/montecarlo_lab.py
"""

from repro import Engine, Kernel, Ledger, LotteryPolicy, ParkMillerPRNG
from repro.core.inflation import ErrorDrivenInflator
from repro.workloads.montecarlo import MonteCarloTask


def main() -> None:
    engine = Engine()
    ledger = Ledger()
    kernel = Kernel(engine, LotteryPolicy(ledger, prng=ParkMillerPRNG(27)),
                    ledger=ledger, quantum=100.0)

    mc = ledger.create_currency("mc")
    ledger.create_ticket(1000, fund=mc)
    inflator = ErrorDrivenInflator(mc, scale=1e7, exponent=2.0, floor=1e-6)

    tasks = []
    for index in range(3):
        task = MonteCarloTask(f"mc{index}", seed=1000 + index,
                              inflator=inflator)
        tasks.append(task)
        start_at = index * 90_000.0

        def spawn(task=task, index=index):
            kernel_task = kernel.create_task(f"mc-task-{index}")
            kernel_task.currency = mc
            kernel.spawn(task.body, task.name, task=kernel_task,
                         tickets=1e7, currency=mc)
            print(f"[{engine.now / 1000:6.1f}s] {task.name} started")

        if start_at == 0:
            spawn()
        else:
            engine.call_at(start_at, spawn)

    def report():
        parts = []
        for task in tasks:
            error = task.estimator.relative_error()
            parts.append(f"{task.name}: {task.trials / 1e6:6.2f}M trials"
                         f" (err {error:.1e})")
        print(f"[{engine.now / 1000:6.1f}s] " + " | ".join(parts))
        if engine.now < 600_000.0:
            engine.call_after(60_000.0, report)

    engine.call_after(60_000.0, report)
    kernel.run_until(600_000.0)

    print()
    print("final estimates (true value pi/4 = 0.7853981...):")
    for task in tasks:
        print(f"  {task.name}: {task.estimator.estimate:.6f}"
              f" +- {task.estimator.standard_error():.6f}"
              f" after {task.trials:,} trials")
    totals = [task.trials for task in tasks]
    print(f"\n  spread between oldest and youngest: "
          f"{(max(totals) - min(totals)) / max(totals):.1%}"
          " (curves converge as errors equalize)")


if __name__ == "__main__":
    main()
