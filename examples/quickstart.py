#!/usr/bin/env python3
"""Quickstart: lottery scheduling in five minutes.

Walks through the paper's core ideas on a tiny simulated machine:

1. a raw lottery over ticket counts (Figure 1),
2. proportional-share CPU scheduling (the one-liner API),
3. currencies and the Figure 3 valuation example,
4. the section 4.7 user commands via the command shell.

Run:  python examples/quickstart.py
"""

from repro import (
    Compute,
    Engine,
    Kernel,
    Ledger,
    LotteryPolicy,
    ParkMillerPRNG,
    TicketHolder,
    hold_lottery,
    simulate_shares,
)
from repro.cli import Shell


def part1_simple_lottery() -> None:
    print("== 1. A lottery over 20 tickets (paper Figure 1) ==")
    entries = [("client1", 10.0), ("client2", 2.0), ("client3", 5.0),
               ("client4", 1.0), ("client5", 2.0)]
    prng = ParkMillerPRNG(1994)
    wins = {name: 0 for name, _ in entries}
    draws = 10_000
    for _ in range(draws):
        wins[hold_lottery(entries, prng)] += 1
    for name, tickets in entries:
        print(f"  {name}: {tickets:>4.0f} tickets -> "
              f"{wins[name] / draws:.3f} of wins "
              f"(expected {tickets / 20:.3f})")
    print()


def part2_proportional_cpu() -> None:
    print("== 2. Proportional-share CPU scheduling ==")
    shares = simulate_shares({"editor": 300, "builder": 100},
                             duration_ms=60_000, seed=42)
    for name, share in shares.items():
        print(f"  {name}: {share:.1%} of the CPU")
    print("  (allocated 3:1 -> observed "
          f"{shares['editor'] / shares['builder']:.2f}:1)")
    print()


def part3_currencies() -> None:
    print("== 3. Currencies (paper Figure 3) ==")
    ledger = Ledger()
    alice = ledger.create_currency("alice")
    bob = ledger.create_currency("bob")
    ledger.create_ticket(1000, fund=alice)
    ledger.create_ticket(2000, fund=bob)
    task2 = ledger.create_currency("task2")
    task3 = ledger.create_currency("task3")
    ledger.create_ticket(200, currency=alice, fund=task2)
    ledger.create_ticket(100, currency=bob, fund=task3)
    threads = {}
    for name, currency, amount in (
        ("thread2", task2, 200), ("thread3", task2, 300),
        ("thread4", task3, 100),
    ):
        holder = TicketHolder(name)
        ledger.create_ticket(amount, currency=currency, fund=holder)
        holder.start_competing()
        threads[name] = holder
    for name, holder in threads.items():
        print(f"  {name}: {holder.funding():.0f} base units")
    print(f"  total active base: {ledger.total_active_base():.0f}"
          " (paper: 400 / 600 / 2000 of 3000)")
    print()


def part4_shell() -> None:
    print("== 4. The user commands (paper section 4.7) ==")
    shell = Shell()
    # Register a running client so currency values are live in lscur.
    player = TicketHolder("player")
    player.start_competing()
    shell.state.register_holder("player", player)
    for line in (
        "mkcur multimedia",
        "mktkt 600 base backing",
        "fund backing multimedia",
        "fundx 100 multimedia player",
        "lscur",
        "lstkt",
    ):
        print(f"  $ {line}")
        output = shell.execute(line)
        for row in output.splitlines():
            print(f"    {row}")
    print()


def part5_kernel_by_hand() -> None:
    print("== 5. Building a machine by hand ==")
    engine = Engine()
    ledger = Ledger()
    kernel = Kernel(engine, LotteryPolicy(ledger, prng=ParkMillerPRNG(7)),
                    ledger=ledger, quantum=100.0)

    def worker(ctx):
        while True:
            yield Compute(25.0)

    fast = kernel.spawn(worker, "fast", tickets=400)
    slow = kernel.spawn(worker, "slow", tickets=100)
    kernel.run_until(30_000)
    print(f"  fast: {fast.cpu_time:.0f} ms, slow: {slow.cpu_time:.0f} ms"
          f" -> ratio {fast.cpu_time / slow.cpu_time:.2f}:1 (allocated 4:1)")


if __name__ == "__main__":
    part1_simple_lottery()
    part2_proportional_cpu()
    part3_currencies()
    part4_shell()
    part5_kernel_by_hand()
