"""Legacy setup shim (the environment's setuptools predates PEP 660)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of Waldspurger & Weihl, 'Lottery Scheduling: Flexible "
        "Proportional-Share Resource Management' (OSDI 1994)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
