"""Recipe and snapshot-coverage registries.

**Recipes** make restore possible without pickling live objects.
Thread bodies are Python generators -- their frames cannot be
serialized -- but the whole simulation is a pure function of its seeds
(see ``docs/DETERMINISM.md``), so a checkpoint stores *how the system
was built* (a recipe name plus JSON-serializable arguments) alongside
the captured state tree.  Restore re-executes the recipe to the
checkpoint time and *proves* the reconstruction by diffing its live
state tree against the saved one; any mismatch is a divergence, named
by path.

A recipe is a callable ``build(**args) -> SimHandle`` registered under
a stable name.  Its arguments must round-trip through JSON, and it must
be deterministic: same args, same universe.

**Snapshot coverage** is the other registry: for every class with a
``snapshot_state()`` seam, the sets of instance attributes the seam
captures and those it deliberately leaves out (transient/derived
state).  The RPR007 lint rule audits each class's actual ``self.x``
assignments against this table, so adding mutable state without
extending the seam fails the lint instead of silently producing
checkpoints that miss it.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.errors import CheckpointError

__all__ = [
    "SimHandle",
    "register_recipe",
    "build_recipe",
    "recipe_names",
    "ensure_builtin_recipes",
    "SNAPSHOT_COVERAGE",
]


class SimHandle:
    """A built simulation: engine, named components, how to advance it.

    Parameters
    ----------
    recipe:
        Registered recipe name that built this system.
    args:
        The JSON-serializable arguments the recipe was built with
        (stored verbatim in checkpoints).
    engine:
        The discrete-event engine driving the system.
    components:
        name -> object exposing ``snapshot_state()``; capture order is
        the insertion order, so keep it stable within a recipe.
    advance:
        Optional override for "run to virtual time T" when plain
        ``engine.run(until=T)`` is not the right verb.
    """

    def __init__(self, recipe: str, args: Dict[str, Any], engine: Any,
                 components: Dict[str, Any],
                 advance: Optional[Callable[[float], None]] = None) -> None:
        self.recipe = recipe
        self.args = dict(args)
        self.engine = engine
        self.components = dict(components)
        self._advance = advance

    @property
    def now(self) -> float:
        """Current virtual time (ms)."""
        return self.engine.now

    def advance(self, until: float) -> None:
        """Run the simulation forward to virtual time ``until``."""
        if until < self.now:
            raise CheckpointError(
                f"cannot advance backwards: now={self.now:g}ms, "
                f"asked for {until:g}ms"
            )
        if self._advance is not None:
            self._advance(until)
        else:
            self.engine.run(until=until)

    def kernels(self) -> List[Any]:
        """Every kernel in the system (for the sanitizer gate)."""
        from repro.distributed.cluster import Cluster
        from repro.kernel.kernel import Kernel

        found: List[Any] = []
        for component in self.components.values():
            if isinstance(component, Kernel):
                found.append(component)
            elif isinstance(component, Cluster):
                found.extend(node.kernel for node in component.nodes)
            elif hasattr(component, "shard_kernels"):
                # Sharded engines expose their in-process kernels (the
                # mp backend's live in workers and report an empty
                # list; those sanitize themselves worker-side).
                found.extend(component.shard_kernels())
        return found

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SimHandle recipe={self.recipe!r} t={self.now:g}ms "
                f"components={sorted(self.components)}>")


# -- recipe registry ----------------------------------------------------------

_RECIPES: Dict[str, Callable[..., SimHandle]] = {}


def register_recipe(name: str) -> Callable[[Callable[..., SimHandle]],
                                           Callable[..., SimHandle]]:
    """Decorator registering a recipe builder under ``name``."""

    def decorate(builder: Callable[..., SimHandle]) -> Callable[..., SimHandle]:
        if name in _RECIPES:
            raise CheckpointError(f"recipe {name!r} is already registered")
        _RECIPES[name] = builder
        return builder

    return decorate


def ensure_builtin_recipes() -> None:
    """Import the built-in recipe module (idempotent)."""
    import repro.checkpoint.recipes  # noqa: F401  (registers on import)


def recipe_names() -> List[str]:
    """Registered recipe names, sorted."""
    ensure_builtin_recipes()
    return sorted(_RECIPES)


def build_recipe(name: str, args: Dict[str, Any]) -> SimHandle:
    """Build a fresh simulation from a registered recipe."""
    ensure_builtin_recipes()
    try:
        builder = _RECIPES[name]
    except KeyError:
        raise CheckpointError(
            f"unknown recipe {name!r}; registered: {sorted(_RECIPES)}"
        ) from None
    handle = builder(**args)
    if not isinstance(handle, SimHandle):
        raise CheckpointError(
            f"recipe {name!r} returned {type(handle).__name__}, "
            f"expected SimHandle"
        )
    return handle


# -- snapshot-coverage registry ----------------------------------------------

#: dotted class path -> {"covered": attrs the seam captures,
#:                       "transient": attrs deliberately left out}.
#: Audited by lint rule RPR007 (b) against the classes' actual ``self.x``
#: assignments: an attribute in neither set means mutable state was
#: added without a decision about checkpointing it.
SNAPSHOT_COVERAGE: Dict[str, Dict[str, Iterable[str]]] = {
    "repro.sim.engine.Engine": {
        "covered": {"events_processed", "_next_tid"},
        # clock/_queue are captured through their own seams; trace_hook
        # is an observer, not state.
        "transient": {"clock", "_queue", "trace_hook", "_running"},
    },
    "repro.sim.engine.LoopCore": {
        # The mechanics Engine inherits; same coverage story.  core_id
        # is construction-time identity (the snapshot's position in the
        # sharded engine's core list encodes it), not evolving state.
        "covered": {"events_processed", "_next_tid"},
        "transient": {"clock", "_queue", "trace_hook", "_running",
                      "core_id"},
    },
    "repro.sim.events.EventQueue": {
        "covered": {"_seq", "_heap"},
        "transient": {"_live"},
    },
    "repro.core.prng.ParkMillerPRNG": {
        "covered": {"_state", "_initial_seed"},
        "transient": {"draws"},
    },
    "repro.kernel.kernel.Kernel": {
        "covered": {"quantum", "context_switch_cost", "running",
                    "_quantum_left", "_quantum_size", "_dispatch_pending",
                    "_instant_syscalls", "_inflight", "dispatch_count",
                    "idle_time", "kills", "_idle_since", "tasks", "threads",
                    "ports", "policy", "ledger", "engine"},
        # Observers, fault seams, and hooks are re-wired by the recipe,
        # not restored from data; the instant-syscall handler table is
        # a pure function of the kernel's bound methods.
        "transient": {"recorder", "quantum_jitter", "ipc_faults",
                      "invariant_hooks", "telemetry", "_instant_handlers"},
    },
    "repro.kernel.thread.Thread": {
        "covered": {"tid", "task", "state", "priority", "funding_currency",
                    "_started", "current_syscall", "cpu_time", "dispatches",
                    "voluntary_yields", "created_at", "exited_at",
                    "runnable_since"},
        # The generator frame is the one thing a checkpoint cannot hold;
        # restore re-executes the recipe instead of restoring frames.
        # _context wraps the kernel; _pending_send is consumed within
        # the same dispatch it is set in.
        "transient": {"kernel", "_generator", "_context", "_pending_send"},
    },
    "repro.schedulers.stride.StridePolicy": {
        "covered": {"_seq", "_global_tickets", "_global_pass",
                    "_pending_pass", "_entries", "_remain", "_strides",
                    "_tickets_of"},
        # _heap/_removed are the lazy-deletion pair over _entries; the
        # snapshot captures the canonical (pass, seq) table instead.
        "transient": {"kernel", "_heap", "_removed"},
    },
    "repro.schedulers.lottery_policy.LotteryPolicy": {
        "covered": {"prng", "_use_tree", "_static_funding",
                    "_zero_funding_fallback", "lotteries_held",
                    "fallback_selections", "compensation", "_tree", "_list"},
        # ledger is captured at the kernel level; _members and _dirty
        # are derived indexes over the active structure (membership and
        # pending revaluations); draw_hook is a telemetry observer,
        # forbidden from mutating scheduling state.
        "transient": {"kernel", "ledger", "_members", "_dirty", "draw_hook"},
    },
    "repro.distributed.cluster.Cluster": {
        "covered": {"engine", "ledger", "rebalance_period", "migrations",
                    "migration_rollbacks", "node_crashes", "node_restarts",
                    "threads_killed", "evacuations", "nodes", "_placement"},
        "transient": {"recorder", "telemetry"},
    },
    "repro.iosched.disk.Disk": {
        "covered": {"scheduler", "prng", "tickets", "_head_sector", "_busy",
                    "busy_time", "_queues", "_rr_order", "completed",
                    "bytes_served", "io_errors", "_fifo"},
        "transient": {"engine", "fault_policy", "seek_ms_per_1000_sectors",
                      "rotational_ms", "transfer_kb_per_ms"},
    },
    "repro.mem.frames.FramePool": {
        "covered": {"frames", "_free"},
        "transient": {"_where", "_owned"},  # derived indexes over frames
    },
    "repro.mem.manager.MemoryManager": {
        "covered": {"pool", "total_references", "faults", "hits",
                    "evictions"},
        "transient": {"policy"},
    },
    "repro.faults.injector.FaultInjector": {
        "covered": {"plan", "_prng", "applied", "_armed"},
        "transient": {"cluster", "kernels", "disks", "engine", "telemetry"},
    },
    "repro.telemetry.spans.SpanTracer": {
        "covered": {"max_spans", "strict", "_next_sid", "dropped_spans"},
        # The span buffer and per-track stacks are exported (JSONL /
        # Chrome), not checkpointed; the seam captures their summary
        # counts so restore-then-trace divergence is still diffable.
        "transient": {"_spans", "_stacks"},
    },
    "repro.telemetry.registry.MetricRegistry": {
        "covered": {"_instruments"},
        "transient": set(),
    },
    "repro.telemetry.probe.Telemetry": {
        "covered": {"tracer", "registry"},
        # Probe wiring is re-attached after restore, never restored
        # from data (same rule as Kernel.recorder).
        "transient": {"_probes", "_instrumented_policies",
                      "_observing_checkpoints"},
    },
    "repro.workloads.arrivals.ArrivalProcess": {
        "covered": {"rate_per_s", "prng", "clock_ms", "emitted"},
        "transient": set(),
    },
    "repro.workloads.arrivals.MMPPArrivals": {
        # Rates derive from the constructor parameters; the evolving
        # phase machine is what a restore must re-position.
        "covered": {"burst_factor", "mean_dwell_ms", "_phase",
                    "_phase_until_ms"},
        "transient": {"_calm_rate", "_burst_rate"},
    },
    "repro.workloads.arrivals.DiurnalArrivals": {
        "covered": {"period_ms", "amplitude"},
        "transient": {"_peak_rate_per_ms"},
    },
    "repro.serving.admission.TokenBucket": {
        "covered": {"rate_per_s", "burst", "tokens", "clock_ms",
                    "admitted", "shed"},
        "transient": set(),
    },
    "repro.serving.admission.AdmissionController": {
        "covered": {"capacity_rps", "headroom", "burst_s", "buckets"},
        "transient": set(),
    },
    "repro.serving.stats.LatencyDigest": {
        "covered": {"bin_ms", "count", "total_ms", "max_ms", "counts"},
        "transient": set(),
    },
    "repro.serving.stats.ServingStats": {
        "covered": {"bin_ms", "offered", "shed", "completed", "e2e",
                    "wake"},
        "transient": set(),
    },
    "repro.serving.slo_controller.ClassLatencyProbe": {
        "covered": {"prefix", "window"},
        # stats is shared measurement plumbing (captured as its own
        # object); the id-keyed attribution cache is rebuilt on replay.
        "transient": {"stats", "bin_ms", "_by_tid"},
    },
    "repro.serving.slo_controller.SloClassState": {
        "covered": {"name", "target_p99_ms", "floor", "ceiling"},
        # Lever tickets live in the ledger's state tree; the window
        # baseline is re-established at the next control epoch.
        "transient": {"levers", "baseline"},
    },
    "repro.serving.slo_controller.SloController": {
        "covered": {"epoch_ms", "epochs", "min_samples", "inflate",
                    "deflate", "comfort", "classes"},
        "transient": {"probe", "history"},
    },
}
