"""Canonical state trees: encoding, checksums, diffing, atomic I/O.

A *state tree* is the plain-data form of a simulated system: nested
dicts/lists/scalars produced by the ``snapshot_state()`` seams that
every stateful component exposes (engine, schedulers, kernel, cluster,
disks, memory, injector).  This module gives the trees their on-disk
contract:

* **canonical encoding** -- one byte-exact JSON rendering per tree
  (sorted keys, no whitespace, NaN/Infinity rejected), so checksums and
  comparisons are stable across processes and Python versions;
* **integrity checksum** -- SHA-256 over the canonical payload; a
  corrupted or hand-edited checkpoint is rejected at load, never
  silently restored;
* **structural diff** -- recursive comparison returning the *path* of
  the first mismatch (``state.nodes[1].kernel.running``), which is how
  restore verification and divergence reports name what broke;
* **crash-consistent writes** -- temp file + fsync + ``os.replace`` in
  the target directory, so a crash mid-save leaves either the old
  checkpoint or the new one, never a torn file.

The file format is versioned: ``SCHEMA_VERSION`` bumps whenever the
shape of any component's state tree changes incompatibly (see
``docs/CHECKPOINT.md`` for the versioning rules).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import CheckpointError

__all__ = [
    "SCHEMA_VERSION",
    "FORMAT_NAME",
    "canonical_json",
    "tree_checksum",
    "diff_trees",
    "format_mismatches",
    "write_checkpoint_file",
    "read_checkpoint_file",
]

#: Bump on any incompatible change to a component's state-tree shape.
SCHEMA_VERSION = 1

#: The ``format`` field every checkpoint file must carry.
FORMAT_NAME = "repro-checkpoint"

#: Fields covered by the checksum (everything except the checksum itself).
_CHECKSUMMED_FIELDS = ("format", "schema_version", "recipe", "args",
                      "time_ms", "state")


def canonical_json(tree: Any) -> str:
    """The one true JSON rendering of a state tree.

    Sorted keys and tight separators make the encoding a function of
    the tree's *value* alone; ``allow_nan=False`` rejects NaN/Infinity,
    which have no portable JSON form and would poison checksums.
    """
    try:
        return json.dumps(tree, sort_keys=True, separators=(",", ":"),
                          allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise CheckpointError(
            f"state tree is not canonically serializable: {exc}"
        ) from exc


def tree_checksum(tree: Any) -> str:
    """SHA-256 hex digest of the canonical encoding."""
    return hashlib.sha256(canonical_json(tree).encode("utf-8")).hexdigest()


# -- structural diff ---------------------------------------------------------


def diff_trees(expected: Any, actual: Any, path: str = "state",
               limit: int = 20) -> List[Tuple[str, Any, Any]]:
    """First mismatches between two trees, as (path, expected, actual).

    Traversal is depth-first in key order, so the first entry is the
    shallowest-leftmost divergence -- the thing to report.  ``limit``
    caps the list; a badly diverged tree does not produce megabytes of
    noise.
    """
    mismatches: List[Tuple[str, Any, Any]] = []
    _diff(expected, actual, path, mismatches, limit)
    return mismatches


def _diff(expected: Any, actual: Any, path: str,
          out: List[Tuple[str, Any, Any]], limit: int) -> None:
    if len(out) >= limit:
        return
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual), key=str):
            if key not in expected:
                out.append((f"{path}.{key}", "<absent>", actual[key]))
            elif key not in actual:
                out.append((f"{path}.{key}", expected[key], "<absent>"))
            else:
                _diff(expected[key], actual[key], f"{path}.{key}", out, limit)
            if len(out) >= limit:
                return
        return
    if isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            out.append((f"{path}.length", len(expected), len(actual)))
        for index in range(min(len(expected), len(actual))):
            _diff(expected[index], actual[index], f"{path}[{index}]",
                  out, limit)
            if len(out) >= limit:
                return
        return
    # Scalars (or mismatched container kinds).  Compare through the
    # canonical encoding so 1 == 1.0 and restored-from-JSON floats
    # match captured ones byte-for-byte.
    if canonical_json(expected) != canonical_json(actual):
        out.append((path, expected, actual))


def format_mismatches(mismatches: List[Tuple[str, Any, Any]]) -> str:
    """Human-readable rendering, one mismatch per line."""
    lines = []
    for path, expected, actual in mismatches:
        lines.append(f"{path}: expected {expected!r}, got {actual!r}")
    return "\n".join(lines)


# -- file format --------------------------------------------------------------


def _checksummed_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    return {key: payload[key] for key in _CHECKSUMMED_FIELDS}


def build_payload(recipe: str, args: Dict[str, Any], time_ms: float,
                  state: Dict[str, Any]) -> Dict[str, Any]:
    """Assemble a complete, checksummed checkpoint payload."""
    payload: Dict[str, Any] = {
        "format": FORMAT_NAME,
        "schema_version": SCHEMA_VERSION,
        "recipe": recipe,
        "args": args,
        "time_ms": time_ms,
        "state": state,
    }
    payload["checksum"] = tree_checksum(_checksummed_payload(payload))
    return payload


def write_checkpoint_file(path: str, payload: Dict[str, Any]) -> None:
    """Crash-consistent write: temp file, fsync, atomic rename.

    The temp file lives in the destination directory so the final
    ``os.replace`` is a same-filesystem atomic rename; a crash at any
    point leaves either the previous file or the complete new one.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    encoded = json.dumps(payload, sort_keys=True, indent=1,
                         allow_nan=False)
    fd, tmp_path = tempfile.mkstemp(prefix=".ckpt-", dir=directory)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(encoded)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def read_checkpoint_file(path: str) -> Dict[str, Any]:
    """Load and *validate* a checkpoint: format, version, checksum.

    A file that fails any check raises :class:`CheckpointError`; a
    corrupted checkpoint is never silently loaded.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"checkpoint {path!r} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(payload, dict):
        raise CheckpointError(f"checkpoint {path!r} is not a JSON object")
    if payload.get("format") != FORMAT_NAME:
        raise CheckpointError(
            f"checkpoint {path!r} has format {payload.get('format')!r}, "
            f"expected {FORMAT_NAME!r}"
        )
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise CheckpointError(
            f"checkpoint {path!r} has schema version {version!r}; this "
            f"build reads version {SCHEMA_VERSION} only"
        )
    missing = [key for key in (*_CHECKSUMMED_FIELDS, "checksum")
               if key not in payload]
    if missing:
        raise CheckpointError(
            f"checkpoint {path!r} is missing fields: {missing}"
        )
    expected = tree_checksum(_checksummed_payload(payload))
    if payload["checksum"] != expected:
        raise CheckpointError(
            f"checkpoint {path!r} failed its integrity check: stored "
            f"checksum {payload['checksum']!r} != computed {expected!r} "
            f"(file is corrupted or was edited; refusing to load)"
        )
    return payload


def checkpoint_summary(payload: Dict[str, Any]) -> str:
    """One-line description of a validated payload (CLI convenience)."""
    return (f"recipe={payload['recipe']} t={payload['time_ms']:g}ms "
            f"schema=v{payload['schema_version']} "
            f"checksum={payload['checksum'][:12]}...")


#: Re-exported for callers that format payload summaries.
__all__ += ["build_payload", "checkpoint_summary"]
