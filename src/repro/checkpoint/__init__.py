"""Crash-consistent checkpoint/restore with bit-exact replay.

The determinism contract (``docs/DETERMINISM.md``) makes every run a
pure function of its seeds.  This package turns that property into a
robustness tool:

* **capture** (:mod:`repro.checkpoint.capture`) -- walk every
  subsystem's ``snapshot_state()`` seam into a typed, JSON-serializable
  state tree; no pickling of live objects, ever;
* **persist** (:mod:`repro.checkpoint.statetree`) -- versioned,
  SHA-256-checksummed files written atomically (temp + fsync +
  rename), so a crash mid-save never leaves a torn checkpoint and a
  corrupted file is rejected at load;
* **restore** (:mod:`repro.checkpoint.restore`) -- re-execute the
  recorded recipe to the checkpoint time, prove the reconstruction by
  diffing state trees (first mismatched path = divergence), and
  re-validate scheduler invariants before resuming;
* **replay** (:mod:`repro.checkpoint.replay`) -- record dispatch
  streams as (time, thread, draw) triples and diff them event-by-event
  to the first disagreement.

See ``docs/CHECKPOINT.md`` for the file format, schema versioning
rules, and the divergence-report format.
"""

from repro.checkpoint.capture import capture_payload, capture_tree, save
from repro.checkpoint.registry import (SimHandle, build_recipe,
                                       recipe_names, register_recipe)
from repro.checkpoint.replay import (Divergence, ReplayRecorder,
                                     diff_streams, format_divergence,
                                     read_stream_file, write_stream_file)
from repro.checkpoint.restore import restore, restore_payload, verify_against
from repro.checkpoint.statetree import (SCHEMA_VERSION, canonical_json,
                                        diff_trees, read_checkpoint_file,
                                        tree_checksum, write_checkpoint_file)

__all__ = [
    "SCHEMA_VERSION",
    "SimHandle",
    "register_recipe",
    "build_recipe",
    "recipe_names",
    "capture_tree",
    "capture_payload",
    "save",
    "restore",
    "restore_payload",
    "verify_against",
    "ReplayRecorder",
    "Divergence",
    "diff_streams",
    "format_divergence",
    "write_stream_file",
    "read_stream_file",
    "canonical_json",
    "tree_checksum",
    "diff_trees",
    "read_checkpoint_file",
    "write_checkpoint_file",
]
