"""Bit-exact replay: record dispatch streams, diff them, name the split.

A :class:`ReplayRecorder` plugs into the kernel's recorder seam and
logs every dispatch as a ``(time, thread, draw)`` triple, where *draw*
is the dispatching policy's Park-Miller stream position at the moment
of the win.  Two runs of the same seeded system must produce identical
streams; :func:`diff_streams` compares them event-by-event and reports
the **first** mismatched triple -- the earliest scheduling decision
where the universes split, which is where debugging starts.

This is the payoff of checkpoint/restore: record a reference run, crash
it anywhere, restore from the last checkpoint, keep recording, and
assert the continued stream is bit-identical to the uninterrupted one
(``tests/checkpoint/test_replay.py``).  The stream file format mirrors
the checkpoint format (versioned, checksummed, atomically written).
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.checkpoint.statetree import tree_checksum
from repro.errors import CheckpointError

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.thread import Thread

__all__ = ["ReplayRecorder", "Divergence", "diff_streams",
           "format_divergence", "write_stream_file", "read_stream_file"]

#: Bump on any incompatible change to the stream-entry shape.
STREAM_VERSION = 1

FORMAT_NAME = "repro-replay-stream"


class ReplayRecorder:
    """Kernel recorder logging the dispatch stream for replay diffing.

    Implements the full recorder protocol so it can sit in the single
    recorder slot of a kernel or cluster; only dispatches enter the
    stream (they are the decisions), but block/wake/exit transitions
    are counted so two runs can also be compared coarsely.
    """

    def __init__(self) -> None:
        self.entries: List[Dict[str, Any]] = []
        self.blocks = 0
        self.wakes = 0
        self.exits = 0

    # -- kernel recorder interface ------------------------------------------

    def on_dispatch(self, thread: "Thread", time: float) -> None:
        prng = getattr(thread.kernel.policy, "prng", None)
        self.entries.append({
            "time": time,
            "tid": thread.tid,
            "name": thread.name,
            # The stream position *after* the winning draw: equal
            # positions mean the same lottery history, bit for bit.
            "draw": None if prng is None else prng.state,
        })

    def on_cpu(self, thread: "Thread", start: float, duration: float) -> None:
        pass

    def on_block(self, thread: "Thread", time: float) -> None:
        self.blocks += 1

    def on_wake(self, thread: "Thread", time: float) -> None:
        self.wakes += 1

    def on_exit(self, thread: "Thread", time: float) -> None:
        self.exits += 1

    # -- views ---------------------------------------------------------------

    def since(self, time_ms: float) -> List[Dict[str, Any]]:
        """Entries at or after ``time_ms`` (tail comparison after restore)."""
        return [e for e in self.entries if e["time"] >= time_ms]

    def snapshot_state(self) -> dict:
        """Typed state tree for checkpointing (see ``repro.checkpoint``)."""
        return {
            "entries": len(self.entries),
            "blocks": self.blocks,
            "wakes": self.wakes,
            "exits": self.exits,
            "checksum": tree_checksum(self.entries),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ReplayRecorder entries={len(self.entries)}>"


# -- stream comparison --------------------------------------------------------


@dataclass
class Divergence:
    """The first point where two dispatch streams disagree."""

    index: int
    field: str  # "time" | "tid" | "name" | "draw" | "length"
    expected: Any
    actual: Any
    expected_entry: Optional[Dict[str, Any]] = None
    actual_entry: Optional[Dict[str, Any]] = None


def diff_streams(expected: List[Dict[str, Any]],
                 actual: List[Dict[str, Any]]) -> Optional[Divergence]:
    """First mismatched (time, thread, draw) triple, or None if identical.

    Fields are checked in (time, tid, name, draw) order so the report
    names the most meaningful difference at the divergent event; a
    stream that is a strict prefix of the other diverges at its end
    with ``field="length"``.
    """
    for index, (left, right) in enumerate(zip(expected, actual)):
        for field in ("time", "tid", "name", "draw"):
            if left.get(field) != right.get(field):
                return Divergence(index, field, left.get(field),
                                  right.get(field), left, right)
    if len(expected) != len(actual):
        index = min(len(expected), len(actual))
        return Divergence(
            index, "length", len(expected), len(actual),
            expected[index] if index < len(expected) else None,
            actual[index] if index < len(actual) else None,
        )
    return None


def format_divergence(divergence: Optional[Divergence]) -> str:
    """The divergence-report format (see ``docs/CHECKPOINT.md``)."""
    if divergence is None:
        return "streams identical: zero divergence"
    lines = [
        f"divergence at event #{divergence.index} "
        f"(field: {divergence.field})",
        f"  expected: {divergence.expected!r}",
        f"  actual:   {divergence.actual!r}",
    ]
    if divergence.expected_entry is not None:
        lines.append(f"  expected entry: {divergence.expected_entry}")
    if divergence.actual_entry is not None:
        lines.append(f"  actual entry:   {divergence.actual_entry}")
    return "\n".join(lines)


# -- stream files -------------------------------------------------------------


def write_stream_file(path: str, entries: List[Dict[str, Any]]) -> None:
    """Atomically write a recorded dispatch stream (checksummed)."""
    payload = {
        "format": FORMAT_NAME,
        "stream_version": STREAM_VERSION,
        "entries": entries,
        "checksum": tree_checksum(entries),
    }
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(prefix=".stream-", dir=directory)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, allow_nan=False)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def read_stream_file(path: str) -> List[Dict[str, Any]]:
    """Load and validate a stream file; corrupted streams are rejected."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise CheckpointError(f"cannot read stream {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"stream {path!r} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(payload, dict) or payload.get("format") != FORMAT_NAME:
        raise CheckpointError(f"{path!r} is not a replay stream file")
    if payload.get("stream_version") != STREAM_VERSION:
        raise CheckpointError(
            f"stream {path!r} has version {payload.get('stream_version')!r};"
            f" this build reads version {STREAM_VERSION} only"
        )
    entries = payload.get("entries")
    if not isinstance(entries, list):
        raise CheckpointError(f"stream {path!r} has no entry list")
    if payload.get("checksum") != tree_checksum(entries):
        raise CheckpointError(
            f"stream {path!r} failed its integrity check (corrupted file;"
            f" refusing to load)"
        )
    return entries
