"""Restoring a checkpoint: re-execute, verify, sanitize, resume.

Thread bodies are generator frames and cannot be deserialized, so
restore does not patch live objects from data.  Instead it exploits the
determinism contract (``docs/DETERMINISM.md``): the checkpoint names
the recipe and arguments that built the system, restore re-executes
that recipe to the checkpoint's virtual time, and then *proves* the
reconstruction by capturing the rebuilt system's state tree and
diffing it against the saved one.  Any mismatch -- a code change since
the checkpoint was taken, a non-deterministic recipe, a corrupted
state -- surfaces as :class:`~repro.errors.DivergenceError` naming the
first divergent path, instead of a silently different simulation.

Before the handle is returned, the invariant sanitizer re-validates
ticket conservation, currency-graph acyclicity, run-queue membership,
and compensation lifetimes on every kernel: a checkpoint that decodes
and diffs clean but violates scheduler invariants is still refused.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.checkpoint.capture import capture_tree, sanitize_handle
from repro.checkpoint.registry import SimHandle, build_recipe
from repro.checkpoint.statetree import (diff_trees, format_mismatches,
                                        read_checkpoint_file)
from repro.errors import DivergenceError

__all__ = ["restore", "restore_payload", "verify_against"]


def verify_against(handle: SimHandle, payload: Dict[str, Any]) -> None:
    """Diff the handle's live state tree against a payload's saved tree."""
    live = capture_tree(handle)
    mismatches = diff_trees(payload["state"], live)
    if mismatches:
        raise DivergenceError(
            f"restored run diverged from checkpoint at "
            f"t={payload['time_ms']:g}ms "
            f"({len(mismatches)} mismatched path(s); first is the "
            f"shallowest):\n" + format_mismatches(mismatches)
        )


def restore_payload(payload: Dict[str, Any], verify: bool = True,
                    sanitize: bool = True) -> SimHandle:
    """Rebuild a live system from a validated payload."""
    handle = build_recipe(payload["recipe"], payload["args"])
    handle.advance(payload["time_ms"])
    if verify:
        verify_against(handle, payload)
    if sanitize:
        sanitize_handle(handle)
    return handle


def restore(path: str, verify: bool = True, sanitize: bool = True
            ) -> Tuple[SimHandle, Dict[str, Any]]:
    """Load, rebuild, verify, and sanitize a checkpoint file.

    Returns ``(handle, payload)``: the live system positioned at the
    checkpoint time (ready to ``advance`` further) and the validated
    payload it was restored from.
    """
    payload = read_checkpoint_file(path)
    handle = restore_payload(payload, verify=verify, sanitize=sanitize)
    _notify_telemetry("restore", handle.now, payload.get("checksum"), path)
    return handle, payload


def _notify_telemetry(kind: str, time_ms: float, checksum: Any,
                      path: str) -> None:
    """Report to telemetry hooks *only if already imported* (see
    ``capture._notify_telemetry`` for the rationale)."""
    import sys

    hooks = sys.modules.get("repro.telemetry.hooks")
    if hooks is not None:
        hooks.emit_checkpoint(kind, time_ms, checksum, path)
