"""Capturing and saving checkpoints of a live simulation.

``capture_tree`` walks a :class:`~repro.checkpoint.registry.SimHandle`'s
components and assembles the typed state tree; ``save`` wraps it in the
versioned, checksummed file format and writes it crash-consistently.

Capture refuses incoherent states rather than persisting them: the
kernel seam raises if the dispatch window is torn (a snapshot landing
mid-dispatch would otherwise bake the inconsistency into the file), and
the sanitizer families are re-run over every kernel before the tree is
accepted -- the same gate restore applies before resuming.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.checkpoint.registry import SimHandle
from repro.checkpoint.statetree import build_payload, write_checkpoint_file
from repro.errors import CheckpointError, InvariantViolation

__all__ = ["capture_tree", "capture_payload", "save", "sanitize_handle"]


def capture_tree(handle: SimHandle) -> Dict[str, Any]:
    """The full state tree: one subtree per named component."""
    state: Dict[str, Any] = {}
    for name, component in handle.components.items():
        seam = getattr(component, "snapshot_state", None)
        if seam is None:
            raise CheckpointError(
                f"component {name!r} ({type(component).__name__}) has no "
                f"snapshot_state() seam"
            )
        state[name] = seam()
    return state


def sanitize_handle(handle: SimHandle) -> None:
    """Run the invariant sanitizer over every kernel in the system.

    Used as a gate on both capture and restore: a checkpoint must
    describe a system whose ticket conservation, currency graph,
    run-queue membership, and compensation lifetimes all hold.
    """
    from repro.analysis.sanitizer import InvariantSanitizer

    checker = InvariantSanitizer(raise_on_violation=False)
    for kernel in handle.kernels():
        checker.check(kernel)
    if checker.violations:
        raise InvariantViolation(
            "refusing checkpoint of an invariant-violating system:\n  "
            + "\n  ".join(checker.violations)
        )


def capture_payload(handle: SimHandle, sanitize: bool = True
                    ) -> Dict[str, Any]:
    """Capture the handle into a complete, checksummed payload."""
    if sanitize:
        sanitize_handle(handle)
    return build_payload(handle.recipe, handle.args, handle.now,
                         capture_tree(handle))


def save(handle: SimHandle, path: str, sanitize: bool = True
         ) -> Dict[str, Any]:
    """Capture and atomically write a checkpoint file; returns the payload."""
    payload = capture_payload(handle, sanitize=sanitize)
    write_checkpoint_file(path, payload)
    _notify_telemetry("save", handle.now, payload.get("checksum"), path)
    return payload


def _notify_telemetry(kind: str, time_ms: float, checksum: Any,
                      path: str) -> None:
    """Report to telemetry hooks *only if already imported*.

    Import-gated on purpose: checkpointing must not pull in (or
    behave differently because of) the telemetry subsystem.  A run
    that never imports ``repro.telemetry`` takes the None branch and
    is bit-identical to one predating the subsystem.
    """
    import sys

    hooks = sys.modules.get("repro.telemetry.hooks")
    if hooks is not None:
        hooks.emit_checkpoint(kind, time_ms, checksum, path)
