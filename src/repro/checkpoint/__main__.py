"""Smoke CLI: ``python -m repro.checkpoint`` exercises the round trip.

Builds a recipe, runs it, saves a checkpoint, restores it (verify +
sanitize), continues both the original and the restored system, and
diffs their dispatch streams.  Exit status 0 means zero divergence.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile

from repro.checkpoint import (build_recipe, diff_streams,
                              format_divergence, recipe_names, restore, save)
from repro.checkpoint.statetree import checkpoint_summary


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.checkpoint",
        description="checkpoint/restore/replay smoke test",
    )
    parser.add_argument("--recipe", default="lottery-mix",
                        choices=recipe_names())
    parser.add_argument("--checkpoint-at", type=float, default=5_000.0,
                        metavar="MS", help="virtual time of the checkpoint")
    parser.add_argument("--run-until", type=float, default=10_000.0,
                        metavar="MS", help="virtual time both runs end at")
    parser.add_argument("--report", metavar="PATH", default=None,
                        help="also write the divergence report to this file")
    args = parser.parse_args(argv)
    if not args.checkpoint_at < args.run_until:
        parser.error("--checkpoint-at must be before --run-until")

    original = build_recipe(args.recipe, {})
    original.advance(args.checkpoint_at)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "smoke.ckpt")
        payload = save(original, path)
        print(f"saved {checkpoint_summary(payload)}")
        restored, _ = restore(path)
        print(f"restored and verified at t={restored.now:g}ms")
    original.advance(args.run_until)
    restored.advance(args.run_until)
    left = original.components["recorder"].entries
    right = restored.components["recorder"].entries
    divergence = diff_streams(left, right)
    print(f"continued both runs to t={args.run_until:g}ms "
          f"({len(left)} dispatches)")
    report = format_divergence(divergence)
    print(report)
    if args.report is not None:
        with open(args.report, "w") as out:
            out.write(f"recipe: {args.recipe}\n"
                      f"checkpoint-at: {args.checkpoint_at:g}ms  "
                      f"run-until: {args.run_until:g}ms  "
                      f"dispatches: {len(left)}\n{report}\n")
    return 0 if divergence is None else 1


if __name__ == "__main__":
    sys.exit(main())
