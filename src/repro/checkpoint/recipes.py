"""Built-in checkpoint recipes.

Importing this module registers the recipes the CLI and the test suite
use.  Each builder is deterministic (same args, same universe) and its
arguments round-trip through JSON -- both are requirements of the
restore-by-re-execution design (see :mod:`repro.checkpoint.registry`).

* ``lottery-mix`` -- one lottery kernel running heterogeneously funded
  spinners plus a sleeper; the smallest interesting system, used by the
  round-trip property tests.
* ``chaos-fairness`` -- the chaos experiment's cluster (spinners,
  pinned victim, armed fault injector); the system the acceptance
  criterion crashes, restores, and replays.
* ``shard-mix`` -- the sharded multicore engine running the kitchen-
  sink ``mix_plan`` (cross-core RPC, optional scripted migration and
  crash); checkpoints taken at epoch barriers restore bit-exact on any
  backend/shard count because the merged stream is placement-invariant
  (see ``docs/SHARDING.md``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.checkpoint.registry import SimHandle, register_recipe
from repro.checkpoint.replay import ReplayRecorder

__all__ = ["lottery_mix", "chaos_fairness", "shard_mix"]


@register_recipe("lottery-mix")
def lottery_mix(seed: int = 1, quantum: float = 100.0,
                fundings: Optional[List[float]] = None,
                use_tree: bool = False,
                sleeper: bool = True) -> SimHandle:
    """A single lottery kernel: spinners at ``fundings``, one sleeper."""
    from repro.core.prng import ParkMillerPRNG
    from repro.core.tickets import Ledger
    from repro.kernel.kernel import Kernel
    from repro.kernel.syscalls import Compute, Sleep
    from repro.schedulers.lottery_policy import LotteryPolicy
    from repro.sim.engine import Engine

    if fundings is None:
        fundings = [400.0, 200.0, 100.0]
    engine = Engine()
    ledger = Ledger()
    recorder = ReplayRecorder()
    kernel = Kernel(
        engine,
        LotteryPolicy(ledger, prng=ParkMillerPRNG(seed), use_tree=use_tree),
        ledger=ledger,
        quantum=quantum,
        recorder=recorder,
    )

    def spinner(chunk_ms: float = 20.0):
        def body(ctx):
            while True:
                yield Compute(chunk_ms)

        return body

    def sleeper_body(ctx):
        while True:
            yield Compute(5.0)
            yield Sleep(50.0)

    for index, funding in enumerate(fundings):
        kernel.spawn(spinner(), f"spin{index}", tickets=float(funding))
    if sleeper:
        kernel.spawn(sleeper_body, "sleeper", tickets=150.0)
    return SimHandle(
        recipe="lottery-mix",
        args={"seed": seed, "quantum": quantum,
              "fundings": [float(f) for f in fundings],
              "use_tree": use_tree, "sleeper": sleeper},
        engine=engine,
        components={"engine": engine, "ledger": kernel.ledger,
                    "kernel": kernel, "recorder": recorder},
    )


@register_recipe("chaos-fairness")
def chaos_fairness(seed: int = 2718, nodes: int = 3,
                   plan: Optional[Dict[str, Any]] = None) -> SimHandle:
    """The chaos experiment's cluster (see ``experiments.chaos_fairness``)."""
    from repro.experiments.chaos_fairness import build_sim

    return build_sim(seed=seed, nodes=nodes, plan=plan)


@register_recipe("shard-mix")
def shard_mix(seed: int = 11, cores: int = 4, shards: int = 2,
              backend: str = "inline", with_ops: bool = False) -> SimHandle:
    """The sharded engine on ``mix_plan`` (cross-core RPC workload).

    ``advance`` goes through :meth:`ShardedEngine.advance`, so restore
    re-executes epoch-by-epoch exactly like the original run; times
    must land on the plan's epoch grid (500 ms for ``mix_plan``).  The
    engine deliberately snapshots no shard/backend identity, so a
    checkpoint written by the mp backend at 4 shards restores (and
    diffs clean) against an inline rebuild at 1 -- that equivalence is
    the subsystem's core claim.
    """
    from repro.shard.engine import ShardedEngine
    from repro.shard.plan import mix_plan

    plan = mix_plan(seed=seed, cores=cores, with_ops=with_ops)
    engine = ShardedEngine(plan, shards=shards, backend=backend)
    return SimHandle(
        recipe="shard-mix",
        args={"seed": seed, "cores": cores, "shards": shards,
              "backend": backend, "with_ops": with_ops},
        engine=engine,
        components={"sharded": engine},
        advance=engine.advance,
    )
