"""The benchmark suite: seeded workloads over the simulator's hot loops.

Every benchmark builds a fresh, fully deterministic system from a
fixed seed and returns a closure that drives one hot loop:

=====================  ========================================================
``draw.list.N``        raw :class:`~repro.core.lottery.ListLottery` draws over
                       N statically funded clients (the prototype's structure)
``draw.tree.N``        raw :class:`~repro.core.lottery.TreeLottery` draws, the
                       paper's O(log n) partial-sum tree
``dispatch.list.N``    full kernel dispatch loop (lottery + quantum accounting
                       + compensation) over N spinner threads, list run queue
``dispatch.tree.N``    same, tree run queue -- the section 5.1 scaling claim;
                       ``dispatch.tree.10000`` is the acceptance benchmark
``currency.deep.D``    funding revaluation through a D-level currency chain
                       with repeated ticket inflation (cache invalidation path)
``ipc.pingpong``       client/server RPC round trips through a kernel port
``checkpoint.capture`` state-tree capture of a mid-flight lottery kernel
``export.chrome``      Chrome-trace export of a telemetry-instrumented run
``shard.dispatch.N``   the sharded multicore engine driving N spinner threads
                       across 4 cores to a fixed horizon; variants cover the
                       single-loop oracle, the inline backend at shards
                       1/2/4, and the multiprocessing backend at shards 4
                       (``shard.dispatch.10000`` is where mp must beat
                       inline on multi-core hosts)
=====================  ========================================================

Scales are chosen so a full run stays in tens of seconds on commodity
hardware while still separating O(n)-per-draw from O(log n)-per-draw
behaviour by well over the CI tolerance band.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

__all__ = ["benchmark_suite"]

#: A benchmark: (name, params, setup) where setup() -> (fn, ops) or
#: (fn, ops, teardown) -- see repro.perf.harness for the contract.
BenchmarkEntry = Tuple[str, Dict[str, Any],
                       Callable[[], Tuple[Callable[[], None], int]]]


def _draw_list(clients: int, draws: int):
    def setup():
        from repro.core.lottery import ListLottery
        from repro.core.prng import ParkMillerPRNG

        values = {index: float(1 + (index % 17)) for index in range(clients)}
        lottery = ListLottery(value_of=values.__getitem__, move_to_front=True)
        for index in range(clients):
            lottery.add(index)
        prng = ParkMillerPRNG(1234)

        def fn() -> None:
            for _ in range(draws):
                lottery.draw(prng)

        return fn, draws

    return setup


def _draw_tree(clients: int, draws: int):
    def setup():
        from repro.core.lottery import TreeLottery
        from repro.core.prng import ParkMillerPRNG

        lottery: TreeLottery = TreeLottery()
        for index in range(clients):
            lottery.add(index, float(1 + (index % 17)))
        prng = ParkMillerPRNG(1234)

        def fn() -> None:
            for _ in range(draws):
                lottery.draw(prng)

        return fn, draws

    return setup


def _spinner_body(chunk_ms: float):
    def body(ctx):
        from repro.kernel.syscalls import Compute

        while True:
            yield Compute(chunk_ms)

    return body


def _build_dispatch_kernel(threads: int, use_tree: bool, quantum: float):
    from repro.core.prng import ParkMillerPRNG
    from repro.core.tickets import Ledger
    from repro.kernel.kernel import Kernel
    from repro.schedulers.lottery_policy import LotteryPolicy
    from repro.sim.engine import Engine

    engine = Engine()
    ledger = Ledger()
    kernel = Kernel(
        engine,
        LotteryPolicy(ledger, prng=ParkMillerPRNG(97), use_tree=use_tree),
        ledger=ledger,
        quantum=quantum,
    )
    body = _spinner_body(quantum)
    for index in range(threads):
        kernel.spawn(body, f"spin{index}", tickets=float(1 + (index % 13)))
    return kernel


def _dispatch(threads: int, use_tree: bool, quanta: int, quantum: float = 10.0):
    def setup():
        kernel = _build_dispatch_kernel(threads, use_tree, quantum)
        horizon = quanta * quantum

        def fn() -> None:
            kernel.run_until(horizon)

        return fn, quanta

    return setup


def _currency_deep(depth: int, rounds: int):
    def setup():
        from repro.core.tickets import Ledger, TicketHolder

        ledger = Ledger()
        previous = ledger.base
        for level in range(depth):
            currency = ledger.create_currency(f"level{level}")
            ledger.create_ticket(1000.0, currency=previous, fund=currency)
            previous = currency
        holder = TicketHolder("leaf")
        leaf_ticket = ledger.create_ticket(100.0, currency=previous,
                                           fund=holder)
        sibling = TicketHolder("sibling")
        ledger.create_ticket(300.0, currency=previous, fund=sibling)
        holder.start_competing()
        sibling.start_competing()

        def fn() -> None:
            for index in range(rounds):
                # Inflate and revalue: every set_amount invalidates the
                # valuation caches down the chain, every funding() call
                # rebuilds them.
                leaf_ticket.set_amount(100.0 + (index % 7))
                holder.funding()
                sibling.funding()

        return fn, rounds

    return setup


def _ipc_pingpong(calls: int):
    def setup():
        from repro.core.prng import ParkMillerPRNG
        from repro.core.tickets import Ledger
        from repro.kernel.ipc import Port
        from repro.kernel.kernel import Kernel
        from repro.kernel.syscalls import Call, Compute, Receive, Reply
        from repro.schedulers.lottery_policy import LotteryPolicy
        from repro.sim.engine import Engine

        engine = Engine()
        ledger = Ledger()
        kernel = Kernel(
            engine,
            LotteryPolicy(ledger, prng=ParkMillerPRNG(5)),
            ledger=ledger,
            quantum=10.0,
        )
        port = Port(kernel, "bench")
        done = {"calls": 0}

        def client(ctx):
            while True:
                yield Call(port, "ping")
                done["calls"] += 1
                yield Compute(0.5)

        def server(ctx):
            while True:
                request = yield Receive(port)
                yield Compute(0.5)
                yield Reply(request, "pong")

        kernel.spawn(server, "server", tickets=100.0)
        kernel.spawn(client, "client", tickets=100.0)
        horizon = calls * 2.0  # two 0.5ms compute legs + slack per call

        def fn() -> None:
            kernel.run_until(horizon)

        return fn, calls

    return setup


def _checkpoint_capture(threads: int, captures: int):
    def setup():
        from repro.checkpoint.capture import capture_tree
        from repro.checkpoint.registry import build_recipe

        fundings = [float(10 + (index % 23)) for index in range(threads)]
        handle = build_recipe("lottery-mix",
                              {"seed": 11, "fundings": fundings})
        handle.advance(2_000.0)

        def fn() -> None:
            for _ in range(captures):
                capture_tree(handle)

        return fn, captures

    return setup


def _export_chrome(exports: int):
    def setup():
        from repro.checkpoint.registry import build_recipe
        from repro.telemetry.exporters import export_chrome
        from repro.telemetry.probe import Telemetry

        handle = build_recipe("lottery-mix", {"seed": 13})
        telemetry = Telemetry()
        telemetry.instrument_handle(handle)
        handle.advance(5_000.0)
        telemetry.finalize(handle.now)

        def fn() -> None:
            for _ in range(exports):
                export_chrome(telemetry.tracer)

        return fn, exports

    return setup


def _shard_dispatch(threads_total: int, backend: str, shards: int,
                    epochs: int, use_tree: bool, supervise: bool = False):
    """Sharded dispatch: ``threads_total`` spinners spread over 4 cores,
    advanced through ``epochs`` epoch barriers.  The engine (and, for
    the mp backend, its worker processes) is built in setup and closed
    in teardown, so only ``advance()`` is timed.  ``ops`` counts
    scheduling quanta across all cores, making ops/sec directly
    comparable between the single-loop oracle and every sharded
    variant -- the inline-vs-mp ratio at equal shards IS the wall-clock
    speedup."""
    cores = 4
    quantum = 10.0
    epoch_ms = 100.0

    def setup():
        from repro.shard.engine import ShardedEngine
        from repro.shard.plan import spin_plan

        plan = spin_plan(seed=97, cores=cores,
                         spinners=threads_total // cores,
                         quantum=quantum, epoch_ms=epoch_ms,
                         use_tree=use_tree)
        engine = ShardedEngine(plan, shards=shards, backend=backend,
                               supervise=supervise)
        horizon = epochs * epoch_ms
        ops = int(cores * horizon / quantum)

        def fn() -> None:
            engine.advance(horizon)

        return fn, ops, engine.close

    return setup


def _full_suite(quick: bool = False) -> List[BenchmarkEntry]:
    draws = 200 if quick else 2_000
    quanta = 50 if quick else 400
    rounds = 500 if quick else 5_000
    calls = 200 if quick else 2_000
    captures = 3 if quick else 20
    exports = 3 if quick else 20
    epochs = 5 if quick else 40
    return [
        ("draw.list.1000", {"clients": 1_000, "draws": draws},
         _draw_list(1_000, draws)),
        ("draw.tree.10000", {"clients": 10_000, "draws": draws * 5},
         _draw_tree(10_000, draws * 5)),
        ("dispatch.list.100", {"threads": 100, "quanta": quanta},
         _dispatch(100, False, quanta)),
        ("dispatch.list.1000", {"threads": 1_000, "quanta": quanta},
         _dispatch(1_000, False, quanta)),
        ("dispatch.tree.1000", {"threads": 1_000, "quanta": quanta},
         _dispatch(1_000, True, quanta)),
        ("dispatch.tree.10000", {"threads": 10_000, "quanta": quanta},
         _dispatch(10_000, True, quanta)),
        ("currency.deep.20", {"depth": 20, "rounds": rounds},
         _currency_deep(20, rounds)),
        ("ipc.pingpong", {"calls": calls}, _ipc_pingpong(calls)),
        ("checkpoint.capture.300", {"threads": 300, "captures": captures},
         _checkpoint_capture(300, captures)),
        ("export.chrome", {"exports": exports}, _export_chrome(exports)),
        # Sharded multicore engine: 1000 threads list-queue, 10000
        # threads tree-queue (mirroring dispatch.list/tree above).  The
        # single/inline/mp variants run the byte-identical universe, so
        # their ops/sec ratios are pure backend overhead/speedup.
        ("shard.dispatch.1000.single",
         {"threads": 1_000, "backend": "single", "shards": 1,
          "epochs": epochs},
         _shard_dispatch(1_000, "single", 1, epochs, False)),
        ("shard.dispatch.1000.inline.s1",
         {"threads": 1_000, "backend": "inline", "shards": 1,
          "epochs": epochs},
         _shard_dispatch(1_000, "inline", 1, epochs, False)),
        ("shard.dispatch.1000.inline.s2",
         {"threads": 1_000, "backend": "inline", "shards": 2,
          "epochs": epochs},
         _shard_dispatch(1_000, "inline", 2, epochs, False)),
        ("shard.dispatch.1000.inline.s4",
         {"threads": 1_000, "backend": "inline", "shards": 4,
          "epochs": epochs},
         _shard_dispatch(1_000, "inline", 4, epochs, False)),
        ("shard.dispatch.1000.mp.s4",
         {"threads": 1_000, "backend": "mp", "shards": 4,
          "epochs": epochs},
         _shard_dispatch(1_000, "mp", 4, epochs, False)),
        ("shard.dispatch.10000.single",
         {"threads": 10_000, "backend": "single", "shards": 1,
          "epochs": epochs},
         _shard_dispatch(10_000, "single", 1, epochs, True)),
        ("shard.dispatch.10000.inline.s4",
         {"threads": 10_000, "backend": "inline", "shards": 4,
          "epochs": epochs},
         _shard_dispatch(10_000, "inline", 4, epochs, True)),
        ("shard.dispatch.10000.mp.s4",
         {"threads": 10_000, "backend": "mp", "shards": 4,
          "epochs": epochs},
         _shard_dispatch(10_000, "mp", 4, epochs, True)),
        # Supervised mp with no faults firing: the gap to the bare mp
        # variant above is the pure supervision tax (framing checksums,
        # heartbeat polling, command logging) -- budgeted at <= 5%.
        ("shard.supervised.10000.mp.s4",
         {"threads": 10_000, "backend": "mp", "shards": 4,
          "epochs": epochs, "supervise": True},
         _shard_dispatch(10_000, "mp", 4, epochs, True, supervise=True)),
    ]


def benchmark_suite(quick: bool = False) -> List[BenchmarkEntry]:
    """The ordered benchmark list.

    ``quick`` shrinks inner-loop counts (CI smoke and the test suite);
    names and scales stay identical so reports remain comparable --
    only ops/sec and percentiles move.  The ``mp``-backend shard
    benchmarks are full-mode only: their fixed worker-startup and
    per-epoch pipe costs dominate a 5-epoch run, so quick-mode scores
    would compare meaninglessly against the full-mode baseline (the
    gate reports them as ``missing``, which never fails).
    """
    suite = _full_suite(quick)
    if quick:
        suite = [entry for entry in suite if ".mp." not in entry[0]]
    return suite
