"""Baselines and tolerance-band comparison for perf reports.

A committed baseline (``benchmarks/baselines/perf_baseline.json``) is
an ordinary ``BENCH_perf.json`` produced by ``--write-baseline``.
Comparison is **normalized-first**: when both reports carry a
calibration score, each benchmark's ``ops_per_sec /
calibration_ops_per_sec`` ratio is compared, so a baseline recorded on
one machine still gates a run on a faster or slower one.  Raw ops/sec
is the fallback when either side lacks calibration (hand-edited
baselines).

A benchmark *regresses* when its score falls below ``baseline * (1 -
tolerance)``; new benchmarks (absent from the baseline) and removed
ones are reported but never fail the gate -- adding coverage must not
require regenerating baselines atomically.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.perf.harness import CALIBRATION_NAME, PerfReport

__all__ = [
    "BaselineComparison",
    "BenchmarkDelta",
    "compare_reports",
    "format_comparison_table",
    "format_shard_summary",
    "load_report",
    "write_report",
]


def load_report(path: str) -> PerfReport:
    """Read a BENCH_perf.json / baseline file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise ReproError(f"cannot read perf report {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ReproError(
            f"perf report {path!r} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ReproError(f"perf report {path!r} is not a JSON object")
    return PerfReport.from_dict(data)


def write_report(path: str, report: PerfReport) -> None:
    """Atomically write a report (same discipline as checkpoint files)."""
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(prefix=".perf-", dir=directory)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True,
                      allow_nan=False)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


@dataclass
class BenchmarkDelta:
    """One benchmark's current-vs-baseline standing."""

    name: str
    #: "ok" | "regression" | "improvement" | "new" | "missing"
    status: str
    #: Score actually compared (normalized when available, else raw).
    current_score: Optional[float]
    baseline_score: Optional[float]
    #: current/baseline; >1 is faster than the baseline.
    ratio: Optional[float]
    current_ops_per_sec: Optional[float]
    baseline_ops_per_sec: Optional[float]


@dataclass
class BaselineComparison:
    """Every benchmark's delta plus the overall verdict."""

    tolerance: float
    normalized: bool
    deltas: List[BenchmarkDelta]

    @property
    def regressions(self) -> List[BenchmarkDelta]:
        return [d for d in self.deltas if d.status == "regression"]

    @property
    def passed(self) -> bool:
        return not self.regressions

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tolerance": self.tolerance,
            "normalized": self.normalized,
            "passed": self.passed,
            "deltas": [vars(delta) for delta in self.deltas],
        }


def _score(report: PerfReport, name: str, normalized: bool) -> Optional[float]:
    entry = report.result(name)
    if entry is None:
        return None
    if normalized and entry.normalized is not None:
        return entry.normalized
    return entry.ops_per_sec


def compare_reports(current: PerfReport, baseline: PerfReport,
                    tolerance: float = 0.25) -> BaselineComparison:
    """Compare a fresh report against a baseline with a tolerance band."""
    if not 0.0 <= tolerance < 1.0:
        raise ReproError(f"tolerance must be in [0, 1): {tolerance}")
    normalized = (current.calibration_ops_per_sec is not None
                  and baseline.calibration_ops_per_sec is not None)
    names: List[str] = []
    for report in (baseline, current):
        for entry in report.results:
            if entry.name != CALIBRATION_NAME and entry.name not in names:
                names.append(entry.name)
    deltas: List[BenchmarkDelta] = []
    for name in names:
        current_score = _score(current, name, normalized)
        baseline_score = _score(baseline, name, normalized)
        current_entry = current.result(name)
        baseline_entry = baseline.result(name)
        if current_score is None:
            status = "missing"
            ratio = None
        elif baseline_score is None:
            status = "new"
            ratio = None
        else:
            ratio = (current_score / baseline_score
                     if baseline_score > 0 else None)
            if ratio is not None and ratio < 1.0 - tolerance:
                status = "regression"
            elif ratio is not None and ratio > 1.0 + tolerance:
                status = "improvement"
            else:
                status = "ok"
        deltas.append(BenchmarkDelta(
            name=name,
            status=status,
            current_score=current_score,
            baseline_score=baseline_score,
            ratio=ratio,
            current_ops_per_sec=(None if current_entry is None
                                 else current_entry.ops_per_sec),
            baseline_ops_per_sec=(None if baseline_entry is None
                                  else baseline_entry.ops_per_sec),
        ))
    return BaselineComparison(tolerance=tolerance, normalized=normalized,
                              deltas=deltas)


def _fmt_ops(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:,.0f}"


def _fmt_ratio(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.2f}x"


def format_shard_summary(report: PerfReport, markdown: bool = False) -> str:
    """Single-loop vs sharded ops/s for the ``shard.dispatch.*`` and
    ``shard.supervised.*`` families.

    Groups the report's shard benchmarks by workload size and shows
    each backend/shards variant's throughput as a speedup over that
    size's ``single`` (one-event-loop oracle) variant -- the number the
    sharding work exists to move.  Supervised variants share the size
    group, so their row reads directly as the supervision tax against
    the bare mp variant.  Returns ``""`` when the report holds no shard
    benchmarks (e.g. a filtered run).
    """
    prefixes = ("shard.dispatch.", "shard.supervised.")
    groups: Dict[str, List[Any]] = {}
    for entry in report.results:
        for prefix in prefixes:
            if entry.name.startswith(prefix):
                size = entry.name[len(prefix):].split(".", 1)[0]
                groups.setdefault(size, []).append(entry)
    if not groups:
        return ""
    header = ("benchmark", "ops/s", "vs single-loop")
    rows: List[Tuple[str, str, str]] = []
    for size in sorted(groups, key=lambda text: int(text)):
        single = next((entry for entry in groups[size]
                       if entry.name.endswith(".single")), None)
        for entry in groups[size]:
            speedup = (None if single is None or single.ops_per_sec <= 0
                       else entry.ops_per_sec / single.ops_per_sec)
            rows.append((entry.name, _fmt_ops(entry.ops_per_sec),
                         _fmt_ratio(speedup)))
    if markdown:
        lines = [
            "### Sharded engine: single-loop vs sharded throughput",
            "",
            "| " + " | ".join(header) + " |",
            "|" + "|".join("---" for _ in header) + "|",
        ]
        lines.extend("| " + " | ".join(row) + " |" for row in rows)
        return "\n".join(lines)
    widths = [max(len(header[col]), *(len(row[col]) for row in rows))
              for col in range(len(header))]

    def line(cells) -> str:
        return "  ".join(cell.ljust(width)
                         for cell, width in zip(cells, widths)).rstrip()

    out = ["sharded engine: single-loop vs sharded throughput",
           line(header), line(tuple("-" * width for width in widths))]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def format_comparison_table(comparison: BaselineComparison,
                            markdown: bool = False) -> str:
    """Render the before/after table (plain text or GitHub markdown)."""
    header = ("benchmark", "baseline ops/s", "current ops/s", "ratio",
              "status")
    rows = [
        (delta.name,
         _fmt_ops(delta.baseline_ops_per_sec),
         _fmt_ops(delta.current_ops_per_sec),
         _fmt_ratio(delta.ratio),
         delta.status)
        for delta in comparison.deltas
    ]
    mode = "normalized by host calibration" if comparison.normalized \
        else "raw ops/sec"
    verdict = "PASS" if comparison.passed else \
        f"FAIL ({len(comparison.regressions)} regression(s))"
    if markdown:
        lines = [
            f"### Perf gate: {verdict}",
            f"Tolerance {comparison.tolerance:.0%}, scores {mode}.",
            "",
            "| " + " | ".join(header) + " |",
            "|" + "|".join("---" for _ in header) + "|",
        ]
        lines.extend("| " + " | ".join(row) + " |" for row in rows)
        return "\n".join(lines)
    widths = [max(len(header[col]), *(len(row[col]) for row in rows))
              if rows else len(header[col]) for col in range(len(header))]

    def line(cells) -> str:
        return "  ".join(cell.ljust(width)
                         for cell, width in zip(cells, widths)).rstrip()

    out = [f"perf gate: {verdict} (tolerance {comparison.tolerance:.0%}, "
           f"scores {mode})", line(header),
           line(tuple("-" * width for width in widths))]
    out.extend(line(row) for row in rows)
    return "\n".join(out)
