"""Microbenchmark CLI: ``python -m repro.perf``.

Runs the benchmark suite, writes a schema-versioned ``BENCH_perf.json``,
and (optionally) gates against a committed baseline:

* ``python -m repro.perf`` -- run everything, write BENCH_perf.json;
* ``python -m repro.perf --compare benchmarks/baselines/perf_baseline.json
  --tolerance 0.25`` -- the CI perf-gate invocation: non-zero exit when
  any benchmark regresses beyond the tolerance band;
* ``python -m repro.perf --write-baseline benchmarks/baselines/
  perf_baseline.json`` -- record a fresh baseline (see
  ``docs/PERFORMANCE.md`` for when that is legitimate);
* ``--github-summary`` appends the before/after table as markdown to
  ``$GITHUB_STEP_SUMMARY`` when that variable is set.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.perf.baseline import (
    compare_reports,
    format_comparison_table,
    format_shard_summary,
    load_report,
    write_report,
)
from repro.perf.benchmarks import benchmark_suite
from repro.perf.harness import run_benchmarks


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Time the simulator's hot loops; gate against a "
                    "committed baseline.",
    )
    parser.add_argument("--output", metavar="PATH", default="BENCH_perf.json",
                        help="report path (default: %(default)s)")
    parser.add_argument("--compare", metavar="BASELINE",
                        help="compare against a baseline report; exit 1 on "
                             "regression beyond the tolerance band")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional slowdown before a "
                             "regression fails the gate "
                             "(default: %(default)s)")
    parser.add_argument("--write-baseline", metavar="PATH",
                        help="also write this run as a new baseline")
    parser.add_argument("--reps", type=int, default=5,
                        help="repetitions per benchmark (default: "
                             "%(default)s; best-of is scored)")
    parser.add_argument("--filter", metavar="SUBSTRING",
                        help="only run benchmarks whose name contains this")
    parser.add_argument("--quick", action="store_true",
                        help="shrink inner loops (smoke runs, tests)")
    parser.add_argument("--github-summary", action="store_true",
                        help="append the markdown table to "
                             "$GITHUB_STEP_SUMMARY if set")
    parser.add_argument("--list", action="store_true", dest="list_only",
                        help="list benchmark names and exit")
    args = parser.parse_args(argv)

    suite = benchmark_suite(quick=args.quick)
    if args.list_only:
        for name, params, _ in suite:
            print(f"{name}  {params}")
        return 0

    report = run_benchmarks(suite, reps=args.reps, name_filter=args.filter,
                            progress=print)
    write_report(args.output, report)
    print(f"report written to {args.output}")

    if args.write_baseline:
        write_report(args.write_baseline, report)
        print(f"baseline written to {args.write_baseline}")

    shard_summary = format_shard_summary(report)
    if shard_summary:
        print(shard_summary)

    status = 0
    if args.compare:
        baseline = load_report(args.compare)
        comparison = compare_reports(report, baseline,
                                     tolerance=args.tolerance)
        print(format_comparison_table(comparison))
        if not comparison.passed:
            status = 1
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if args.github_summary and summary_path:
        with open(summary_path, "a", encoding="utf-8") as handle:
            if args.compare:
                handle.write(format_comparison_table(comparison,
                                                     markdown=True))
                handle.write("\n")
            if shard_summary:
                handle.write(format_shard_summary(report, markdown=True))
                handle.write("\n")
    return status


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
