"""Deterministic microbenchmark harness (``python -m repro.perf``).

The paper's practicality argument (section 5.1) is quantitative: a
lottery draw is O(log n) with a tree of partial sums, and total
scheduling overhead stays within a few percent of an unmodified
kernel.  This package makes the reproduction's own performance a
first-class, regression-gated artifact instead of a one-off number:

* :mod:`repro.perf.benchmarks` -- seeded microbenchmarks over the
  simulator's hot loops (lottery draws, kernel dispatch, IPC
  ping-pong, currency revaluation, checkpoint capture, trace export)
  at parameterized scales from tens to tens of thousands of threads;
* :mod:`repro.perf.harness` -- the timing machinery: per-repetition
  wall-clock samples, ops/sec, p50/p95, an environment fingerprint,
  and a host-speed **calibration loop** so scores can be compared
  across machines as ratios rather than raw numbers;
* :mod:`repro.perf.baseline` -- schema-versioned ``BENCH_perf.json``
  reports, committed baselines, and tolerance-band comparison (the CI
  ``perf-gate`` job fails when a benchmark regresses beyond the band).

The *workloads* timed here are deterministic (seeded Park-Miller
streams, virtual time); only the wall-clock duration of executing them
varies by host.  Timing itself therefore lives outside the
deterministic zones and never feeds back into simulation state.
"""

from repro.perf.baseline import (
    BaselineComparison,
    compare_reports,
    format_comparison_table,
    load_report,
    write_report,
)
from repro.perf.harness import (
    BenchmarkResult,
    PerfReport,
    environment_fingerprint,
    run_benchmarks,
)

__all__ = [
    "BenchmarkResult",
    "PerfReport",
    "BaselineComparison",
    "environment_fingerprint",
    "run_benchmarks",
    "compare_reports",
    "format_comparison_table",
    "load_report",
    "write_report",
]
