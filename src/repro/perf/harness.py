"""Timing machinery for the microbenchmark harness.

A benchmark is a named callable factory: ``setup()`` builds a fresh,
fully deterministic workload and returns ``(fn, ops)`` -- or
``(fn, ops, teardown)`` when the workload holds external resources
such as worker processes -- where calling ``fn()`` performs ``ops``
hot-loop operations.  The harness times ``fn`` over several
repetitions (a fresh setup per repetition, so no repetition warms the
next one's state; teardown runs untimed after each), and summarizes
the samples as ops/sec plus p50/p95 per-repetition latency.

Wall-clock readings happen *around* the workload, never inside it: the
workloads advance virtual time only, so two hosts run byte-identical
simulations and differ only in how fast they get through them.  The
``calibration.spin`` pseudo-benchmark measures raw host speed with a
fixed arithmetic loop; every score is also reported *normalized* by
the calibration throughput, which is what baseline comparison uses --
a committed baseline from one machine then gates another machine on
relative, not absolute, speed.
"""

from __future__ import annotations

import platform
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError

__all__ = [
    "BenchmarkResult",
    "PerfReport",
    "environment_fingerprint",
    "percentile",
    "run_benchmarks",
    "CALIBRATION_NAME",
]

#: Bump on any incompatible change to the BENCH_perf.json shape.
SCHEMA_VERSION = 1

FORMAT_NAME = "repro-perf"

#: The host-speed pseudo-benchmark every report must carry.
CALIBRATION_NAME = "calibration.spin"

#: Iterations of the calibration spin loop (fixed forever: changing it
#: silently rescales every normalized score in every baseline).
_CALIBRATION_ITERATIONS = 200_000


def environment_fingerprint() -> Dict[str, Any]:
    """Host/interpreter description embedded in every report."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "system": platform.system(),
        "machine": platform.machine(),
        "argv_safe": "repro.perf",
    }


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of a non-empty sample list."""
    if not samples:
        raise ReproError("percentile of an empty sample list")
    if not 0.0 <= fraction <= 1.0:
        raise ReproError(f"percentile fraction must be in [0, 1]: {fraction}")
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


@dataclass
class BenchmarkResult:
    """One benchmark's timing summary."""

    name: str
    params: Dict[str, Any]
    reps: int
    ops: int
    ops_per_sec: float
    #: ops/sec divided by the calibration loop's ops/sec: a host-speed-
    #: independent score (comparable across machines).
    normalized: Optional[float]
    p50_ms: float
    p95_ms: float
    samples_ms: List[float] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "params": dict(self.params),
            "reps": self.reps,
            "ops": self.ops,
            "ops_per_sec": self.ops_per_sec,
            "normalized": self.normalized,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "samples_ms": list(self.samples_ms),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BenchmarkResult":
        return cls(
            name=str(data["name"]),
            params=dict(data.get("params", {})),
            reps=int(data["reps"]),
            ops=int(data["ops"]),
            ops_per_sec=float(data["ops_per_sec"]),
            normalized=(None if data.get("normalized") is None
                        else float(data["normalized"])),
            p50_ms=float(data["p50_ms"]),
            p95_ms=float(data["p95_ms"]),
            samples_ms=[float(s) for s in data.get("samples_ms", [])],
        )


@dataclass
class PerfReport:
    """A full harness run: fingerprint + per-benchmark results."""

    fingerprint: Dict[str, Any]
    calibration_ops_per_sec: Optional[float]
    results: List[BenchmarkResult]

    def result(self, name: str) -> Optional[BenchmarkResult]:
        for entry in self.results:
            if entry.name == name:
                return entry
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": FORMAT_NAME,
            "schema_version": SCHEMA_VERSION,
            "fingerprint": dict(self.fingerprint),
            "calibration_ops_per_sec": self.calibration_ops_per_sec,
            "benchmarks": [entry.to_dict() for entry in self.results],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PerfReport":
        if data.get("format") != FORMAT_NAME:
            raise ReproError(
                f"not a {FORMAT_NAME} report (format={data.get('format')!r})")
        if data.get("schema_version") != SCHEMA_VERSION:
            raise ReproError(
                f"perf report schema {data.get('schema_version')!r} is not "
                f"readable by this build (wants {SCHEMA_VERSION})")
        calibration = data.get("calibration_ops_per_sec")
        return cls(
            fingerprint=dict(data.get("fingerprint", {})),
            calibration_ops_per_sec=(None if calibration is None
                                     else float(calibration)),
            results=[BenchmarkResult.from_dict(entry)
                     for entry in data.get("benchmarks", [])],
        )


def _calibration_spin() -> Tuple[Callable[[], None], int]:
    """Fixed arithmetic loop measuring raw host speed."""

    def spin() -> None:
        acc = 1
        for index in range(_CALIBRATION_ITERATIONS):
            acc = (acc * 16807 + index) % 2147483647

    return spin, _CALIBRATION_ITERATIONS


def _time_once(fn: Callable[[], None]) -> float:
    """Wall-clock one invocation of ``fn``, in milliseconds."""
    start = time.perf_counter()
    fn()
    return (time.perf_counter() - start) * 1000.0


def _run_one(name: str, params: Dict[str, Any],
             setup: Callable[[], Tuple[Callable[[], None], int]],
             reps: int, calibration: Optional[float]) -> BenchmarkResult:
    samples: List[float] = []
    ops = 0
    for _ in range(reps):
        built = setup()
        # setup() returns (fn, ops) or (fn, ops, teardown); teardown
        # releases untimed resources -- the shard benchmarks use it to
        # close multiprocessing workers between repetitions.
        if len(built) == 3:
            fn, ops, teardown = built
        else:
            fn, ops = built
            teardown = None
        try:
            samples.append(_time_once(fn))
        finally:
            if teardown is not None:
                teardown()
    best_ms = min(samples)
    ops_per_sec = ops / (best_ms / 1000.0) if best_ms > 0 else float(ops)
    normalized = (None if calibration is None or calibration <= 0
                  else ops_per_sec / calibration)
    return BenchmarkResult(
        name=name,
        params=params,
        reps=reps,
        ops=ops,
        ops_per_sec=ops_per_sec,
        normalized=normalized,
        p50_ms=percentile(samples, 0.50),
        p95_ms=percentile(samples, 0.95),
        samples_ms=samples,
    )


def run_benchmarks(
    benchmarks: Sequence[Tuple[str, Dict[str, Any],
                               Callable[[], Tuple[Callable[[], None], int]]]],
    reps: int = 5,
    name_filter: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> PerfReport:
    """Time every benchmark and return the full report.

    ``benchmarks`` is a sequence of ``(name, params, setup)`` entries
    (see :func:`repro.perf.benchmarks.benchmark_suite`).  ``name_filter``
    keeps only benchmarks whose name contains the substring; the
    calibration loop always runs so normalized scores stay defined.
    ``progress`` is an optional per-benchmark callback (the CLI's
    status line) -- the library itself never writes to stdout.
    """
    if reps <= 0:
        raise ReproError(f"reps must be positive: {reps}")
    calibration_result = _run_one(
        CALIBRATION_NAME, {"iterations": _CALIBRATION_ITERATIONS},
        _calibration_spin, reps, None)
    calibration = calibration_result.ops_per_sec
    if progress is not None:
        progress(f"{CALIBRATION_NAME}: "
                 f"{calibration:,.0f} ops/s (host speed reference)")
    results: List[BenchmarkResult] = [calibration_result]
    for name, params, setup in benchmarks:
        if name == CALIBRATION_NAME:
            continue
        if name_filter is not None and name_filter not in name:
            continue
        entry = _run_one(name, params, setup, reps, calibration)
        results.append(entry)
        if progress is not None:
            progress(f"{name}: {entry.ops_per_sec:,.0f} ops/s "
                     f"(p50 {entry.p50_ms:.1f}ms, p95 {entry.p95_ms:.1f}ms)")
    return PerfReport(
        fingerprint=environment_fingerprint(),
        calibration_ops_per_sec=calibration,
        results=results,
    )
