"""Core-to-shard placement.

A *shard* is an execution placement group: the set of cores that one
worker (or one inline pass) runs.  Placement is pure configuration --
it decides *where* a core's events execute, never *what* they compute
-- which is why the equivalence goldens can vary ``shards`` and the
backend freely against one pinned single-loop digest.

Default placement is the deterministic hash ``core_id % shards``;
a plan's ``placement`` map pins individual cores explicitly (e.g. to
co-locate a chatty client with its server's home core).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ShardError

__all__ = ["ShardTopology"]


class ShardTopology:
    """Deterministic mapping of ``cores`` onto ``shards``."""

    def __init__(self, cores: int, shards: int,
                 placement: Optional[Dict[int, int]] = None) -> None:
        if cores < 1:
            raise ShardError(f"need at least one core: {cores}")
        if shards < 1:
            raise ShardError(f"need at least one shard: {shards}")
        self.cores = cores
        self.shards = shards
        self._shard_of: List[int] = []
        placement = placement or {}
        for core_id in range(cores):
            shard = placement.get(core_id, core_id % shards)
            if not 0 <= shard < shards:
                raise ShardError(
                    f"core {core_id} placed on shard {shard}, but only "
                    f"{shards} shard(s) exist")
            self._shard_of.append(shard)
        self._cores_of: List[List[int]] = [[] for _ in range(shards)]
        for core_id, shard in enumerate(self._shard_of):
            self._cores_of[shard].append(core_id)

    def shard_of(self, core_id: int) -> int:
        """The shard executing ``core_id``."""
        try:
            return self._shard_of[core_id]
        except IndexError:
            raise ShardError(f"unknown core {core_id}") from None

    def cores_of(self, shard: int) -> List[int]:
        """Cores placed on ``shard``, ascending (the in-shard order)."""
        try:
            return list(self._cores_of[shard])
        except IndexError:
            raise ShardError(f"unknown shard {shard}") from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ShardTopology cores={self.cores} shards={self.shards}>"
