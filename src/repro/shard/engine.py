"""The sharded multicore engine.

:class:`ShardedEngine` drives a :class:`~repro.shard.plan.ShardPlan`
through one of three backends (see :mod:`repro.shard.backends`) with
the **epoch barrier protocol**:

1. Virtual time is cut into half-open epochs ``[kE, (k+1)E)`` on the
   ``epoch_ms`` grid.  Within an epoch every core runs only its own
   events (strictly before the barrier instant).
2. At the barrier, the union of all emitted cross-core payloads is
   sorted by the canonical ``(target core, source core, per-source
   seq)`` order, round-tripped through JSON (so the inline backends
   cannot accidentally pass object identity), and *scheduled* on each
   target core as events at the barrier instant.  Scheduling -- rather
   than applying directly -- puts payload applications after the
   core's own pre-existing events at that instant in the sequence
   order, which keeps straight runs and stop/resume runs bit-exact.
3. ``advance(until)`` horizons must lie on the epoch grid.  The stop
   point runs cores *inclusively* to ``until`` (firing barrier
   applications and any events at exactly ``until``), and payloads
   emitted by those events are held in ``pending`` -- part of the
   engine's canonical state -- to be merged into the next epoch's
   barrier, exactly where an uninterrupted run would apply them.

Because every core is a private universe (own clock, ledger, PRNG
stream, tid allocator) and payloads are totally ordered data, the
merged history is independent of shard count, placement, and backend;
``tests/perf/test_equivalence.py`` pins that with sha256 goldens.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.errors import (
    DeterminismRaceError,
    InvariantViolation,
    ShardError,
)
from repro.shard.backends import make_backend
from repro.shard.plan import ShardPlan
from repro.shard.topology import ShardTopology

__all__ = ["ShardedEngine"]

_EPS = 1e-9

#: Failures that trigger a flight-recorder dump: shard/frame faults,
#: determinism-race sanitizer traps, and invariant violations.
_FLIGHT_ERRORS = (ShardError, DeterminismRaceError, InvariantViolation)


class ShardedEngine:
    """Epoch-barrier executor over a plan's cores.

    Parameters
    ----------
    plan:
        A :class:`ShardPlan` (or its dict form).
    shards:
        Number of execution placement groups; cores map onto shards by
        ``core_id % shards`` unless the plan pins them.
    backend:
        ``"single"`` (the oracle), ``"inline"`` (default), or ``"mp"``.
    epoch_ms:
        Barrier grid; defaults to the plan's ``epoch_ms``.
    supervise:
        Run the ``mp`` backend under the fault-tolerant supervisor
        (:class:`repro.shard.supervisor.SupervisedMpBackend`):
        checksummed pipe frames, per-barrier heartbeats, and
        respawn-and-replay recovery.  Requires ``backend="mp"``.
    policy:
        A :class:`repro.shard.supervisor.SupervisorPolicy` overriding
        the default retry budget / deadlines (supervised runs only).
    host_faults:
        A :class:`repro.shard.hostfaults.HostFaultPlan` of host-level
        faults to inject deliberately (supervised runs only).
    telemetry:
        A :class:`repro.telemetry.Telemetry` hub for recovery counters
        and supervisor trace events (supervised runs only).
    """

    def __init__(self, plan: Any, shards: int = 1,
                 backend: str = "inline",
                 epoch_ms: Optional[float] = None,
                 supervise: bool = False,
                 policy: Any = None,
                 host_faults: Any = None,
                 telemetry: Any = None,
                 obs: bool = False,
                 flight_dir: Optional[str] = None) -> None:
        self.plan = (plan if isinstance(plan, ShardPlan)
                     else ShardPlan.from_dict(plan))
        self.epoch_ms = float(epoch_ms if epoch_ms is not None
                              else self.plan.epoch_ms)
        if self.epoch_ms <= 0:
            raise ShardError(f"epoch_ms must be positive: {self.epoch_ms}")
        self.topology = ShardTopology(self.plan.cores, shards,
                                      self.plan.placement)
        self.backend_name = backend
        self.supervised = bool(supervise)
        #: A flight dir implies obs: the recorder rings ride obs frames.
        self.obs_enabled = bool(obs or flight_dir)
        self.flight_dir = flight_dir
        if not supervise and (policy is not None or host_faults is not None):
            raise ShardError(
                "policy/host_faults require supervise=True: only the "
                "supervised mp backend recovers from host faults")
        if supervise:
            if backend != "mp":
                raise ShardError(
                    f"supervise=True requires backend='mp' (got "
                    f"{backend!r}): supervision recovers worker "
                    f"*processes*, which only the mp backend has")
            from repro.shard.supervisor import SupervisedMpBackend

            self._backend = SupervisedMpBackend(
                self.plan, self.topology, policy=policy,
                host_faults=host_faults, telemetry=telemetry,
                obs=self.obs_enabled)
        else:
            self._backend = make_backend(backend, self.plan, self.topology,
                                         obs=self.obs_enabled)
        if self.obs_enabled:
            from repro.telemetry.aggregate import ObsAggregator

            self._obs: Any = ObsAggregator()
        else:
            self._obs = None
        self._time = 0.0
        self._barriers = 0
        self._pending: List[Dict[str, Any]] = []
        self._tracer: Any = None
        self._closed = False

    # -- time -----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Virtual time of the last completed advance."""
        return self._time

    def _require_grid(self, until: float) -> None:
        quotient = until / self.epoch_ms
        if abs(quotient - round(quotient)) > 1e-6:
            raise ShardError(
                f"advance horizon {until} is not on the {self.epoch_ms}ms "
                f"epoch grid; stop/resume is only bit-exact at barrier "
                f"instants")

    def _canonical(self, payloads: List[Dict[str, Any]]
                   ) -> List[Dict[str, Any]]:
        payloads.sort(key=lambda p: (p["target"], p["src"], p["seq"]))
        # The JSON round trip is applied in *every* backend (not just
        # mp) so payload values are plain data everywhere and the
        # in-process backends cannot leak object identity.
        return json.loads(json.dumps(payloads))

    # -- execution -------------------------------------------------------------

    def advance(self, until: float) -> "ShardedEngine":
        """Run the universe to virtual time ``until`` (grid-aligned)."""
        if self._closed:
            raise ShardError("sharded engine is closed")
        if until < self._time - _EPS:
            raise ShardError(
                f"cannot advance backwards: now={self._time}, "
                f"asked={until}")
        self._require_grid(until)
        try:
            return self._advance(until)
        except _FLIGHT_ERRORS as exc:
            self._flight_dump(exc)
            raise

    def _advance(self, until: float) -> "ShardedEngine":
        while self._time < until - _EPS:
            end = min(self._time + self.epoch_ms, until)
            self._backend.run_epoch(end)
            payloads = self._pending + self._backend.collect()
            self._pending = []
            ordered = self._canonical(payloads)
            self._backend.barrier(end, ordered)
            self._barriers += 1
            if self._tracer is not None:
                self._trace_epoch(self._time, end, len(ordered))
            if self._obs is not None:
                self._obs.observe(end, self._backend.collect_obs(end),
                                  payloads=len(ordered), kind="epoch")
            self._time = end
        # Stop point: fire barrier applications and events at exactly
        # ``until``; hold what they emit for the next epoch's barrier.
        self._backend.run_inclusive(until)
        self._pending = self._canonical(self._pending
                                        + self._backend.collect())
        if self._obs is not None:
            self._obs.observe(until, self._backend.collect_obs(until),
                              payloads=len(self._pending), kind="stop")
        self._time = until
        return self

    run = advance

    # -- observation -----------------------------------------------------------

    def merged_stream(self) -> List[Dict[str, Any]]:
        """All cores' replay entries in canonical (time, core) order."""
        merged = [entry for stream in self._backend.streams()
                  for entry in stream]
        merged.sort(key=lambda entry: (entry["time"], entry["core"]))
        return merged

    def snapshot_state(self) -> dict:
        """Typed state tree for checkpointing (see ``repro.checkpoint``).

        Deliberately excludes ``shards`` and the backend name: the
        equivalence goldens require the canonical state to be identical
        across placements and backends.
        """
        return {
            "plan": self.plan.checksum(),
            "time": self._time,
            "epoch_ms": self.epoch_ms,
            "barriers": self._barriers,
            "pending": [dict(payload) for payload in self._pending],
            "cores": self._backend.snapshots(),
        }

    def shard_kernels(self) -> List[Any]:
        """Kernels living in this process (empty under ``mp``); the
        checkpoint registry duck-types on this for recorder fan-out."""
        return self._backend.local_kernels()

    def recovery_summary(self) -> dict:
        """Supervisor recovery counters and events (observability; not
        part of the canonical state).  Empty for unsupervised runs."""
        summary = getattr(self._backend, "recovery_summary", None)
        if summary is None:
            return {"degraded": False, "restarts": [], "retries": [],
                    "faults_armed": 0, "events": []}
        return summary()

    # -- observability plane ---------------------------------------------------

    @property
    def obs(self) -> Any:
        """The :class:`~repro.telemetry.aggregate.ObsAggregator` (None
        when the run was built without ``obs=True``)."""
        return self._obs

    def _require_obs(self) -> Any:
        if self._obs is None:
            raise ShardError(
                "observability is off for this engine; construct it "
                "with obs=True (or pass --obs on the CLI)")
        return self._obs

    def metrics_view(self) -> Any:
        """Global (cross-core merged) registry view of the latest
        barrier slice; exporter-compatible."""
        return self._require_obs().merged_metrics()

    def aggregated_metrics(self) -> Dict[str, Any]:
        """``full name -> snapshot`` of the global registry view."""
        return self.metrics_view().as_dict()

    def slo_report(self, policy: Any = None) -> Dict[str, Any]:
        """Deterministic SLO watchdog verdicts over all slices."""
        from repro.telemetry.slo import evaluate_slo

        return evaluate_slo(self._require_obs().slices, policy)

    def stitched_trace(self, include_recovery: bool = True,
                       slo_policy: Any = None) -> str:
        """One canonical Chrome trace across all cores (JSON text)."""
        from repro.telemetry.stitch import stitched_chrome

        obs = self._require_obs()
        slo = self.slo_report(slo_policy)
        recovery = (self.recovery_summary()["events"]
                    if include_recovery else [])
        return stitched_chrome(
            self._backend.obs_dumps(),
            barriers=obs.barrier_instants(),
            alerts=slo["breaches"],
            recovery=recovery,
            end_time=self._time)

    def obs_report(self, slo_policy: Any = None) -> Dict[str, Any]:
        """The run report document (canonical section + recovery annex;
        see :mod:`repro.telemetry.obsreport`)."""
        import json as _json

        from repro.telemetry.obsreport import build_report

        obs = self._require_obs()
        trace = _json.loads(self.stitched_trace(slo_policy=slo_policy))
        return build_report(
            plan_checksum=self.plan.checksum(),
            time=self._time,
            metrics=self.aggregated_metrics(),
            fairness=obs.fairness(),
            slo=self.slo_report(slo_policy),
            trace_sha256=trace["metadata"]["sha256"],
            slices=len(obs),
            barriers=self._barriers,
            recovery=self.recovery_summary(),
            context={"cores": self.plan.cores,
                     "epoch_ms": self.epoch_ms})

    def _flight_dump(self, exc: BaseException) -> None:
        """Best-effort crash bundle; never masks the original error."""
        if self._obs is None or self.flight_dir is None:
            return
        if getattr(exc, "flight_bundle", None) is not None:
            return  # an inner advance() already dumped for this error
        try:
            from repro.telemetry.flight import build_bundle, write_bundle

            metrics: Dict[str, Any] = {}
            try:
                metrics = self.aggregated_metrics()
            except Exception:  # pragma: no cover - merge died with run
                pass
            bundle = build_bundle(
                exc,
                plan_checksum=self.plan.checksum(),
                time=self._time,
                rings=self._obs.rings(),
                metrics=metrics,
                recovery=self.recovery_summary(),
                context={"backend": self.backend_name,
                         "supervised": self.supervised,
                         "shards": self.topology.shards,
                         "barriers": self._barriers})
            exc.flight_bundle = write_bundle(self.flight_dir, bundle)
        except Exception:  # pragma: no cover - recorder must not mask
            pass

    # -- telemetry --------------------------------------------------------------

    def attach_telemetry(self, tracer: Any) -> None:
        """Emit per-shard epoch spans and barrier instants into a
        :class:`repro.telemetry.spans.SpanTracer` (observation-only)."""
        self._tracer = tracer

    def _trace_epoch(self, start: float, end: float, payloads: int) -> None:
        for shard in range(self.topology.shards):
            self._tracer.complete(
                track=f"shard{shard}", name="epoch", category="shard",
                start=start, end=end,
                attrs={"cores": self.topology.cores_of(shard)})
        self._tracer.event(
            track="barrier", name="shard.barrier", category="shard",
            time=end, attrs={"payloads": payloads})

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Release backend resources (joins mp workers); idempotent."""
        if not self._closed:
            self._closed = True
            self._backend.close()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ShardedEngine backend={self.backend_name!r} "
                f"shards={self.topology.shards} cores={self.plan.cores} "
                f"now={self._time:.1f}ms>")
