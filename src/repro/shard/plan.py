"""Declarative multicore universe plans.

A :class:`ShardPlan` is the *entire* input of a sharded run: how many
cores exist, which threads start where (by registered body name, so
the plan round-trips through JSON and can be shipped to worker
processes), which cross-core channels exist and where they are homed,
and which scripted operations (migrations, core crashes) fire when.

Everything downstream -- the single-loop oracle, the inline backend,
and the multiprocessing backend -- rebuilds the identical universe
from this one JSON-serializable value.  That is the root of the
determinism argument (see ``docs/SHARDING.md``): a core's history is a
pure function of ``(plan, core_id)`` plus the barrier payloads it
receives, never of shard placement or execution backend.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional

from repro.errors import ShardError
from repro.shard.builders import BODY_REGISTRY

__all__ = ["ShardPlan", "mix_plan", "spin_plan"]

#: Offset between per-core Park-Miller streams.  101 is coprime with
#: the Lehmer modulus 2**31 - 1, so distinct cores get distinct seeds
#: for any root seed the validator accepts.
CORE_SEED_STRIDE = 101

_OP_KINDS = frozenset({"migrate", "crash"})


class ShardPlan:
    """Validated, JSON-round-trippable description of a multicore run.

    Parameters mirror the stored fields; ``threads``, ``channels`` and
    ``ops`` are lists of plain dicts (see the module docstring of
    :mod:`repro.shard.builders` for thread specs).  ``placement``
    optionally pins cores to shards (``{core_id: shard}``); unpinned
    cores use the deterministic ``core_id % shards`` hash.
    """

    def __init__(self, seed: int = 1, cores: int = 1,
                 quantum: float = 100.0, epoch_ms: float = 500.0,
                 use_tree: bool = False,
                 threads: Optional[List[Dict[str, Any]]] = None,
                 channels: Optional[List[Dict[str, Any]]] = None,
                 ops: Optional[List[Dict[str, Any]]] = None,
                 placement: Optional[Dict[int, int]] = None) -> None:
        self.seed = int(seed)
        self.cores = int(cores)
        self.quantum = float(quantum)
        self.epoch_ms = float(epoch_ms)
        self.use_tree = bool(use_tree)
        self.threads = [dict(spec) for spec in (threads or [])]
        self.channels = [dict(spec) for spec in (channels or [])]
        self.ops = [dict(op) for op in (ops or [])]
        self.placement = {int(k): int(v) for k, v in (placement or {}).items()}
        self._validate()

    # -- construction helpers ------------------------------------------------

    def add_thread(self, core: int, body: str, name: str, tickets: float,
                   **args: Any) -> "ShardPlan":
        """Append a thread spec (chainable)."""
        self.threads.append({"core": int(core), "body": body, "name": name,
                             "tickets": float(tickets), "args": dict(args)})
        self._validate()
        return self

    def add_channel(self, name: str, home: int) -> "ShardPlan":
        """Append a cross-core channel homed on ``home`` (chainable)."""
        self.channels.append({"name": name, "home": int(home)})
        self._validate()
        return self

    def migrate(self, at: float, thread: str, src: int,
                dst: int) -> "ShardPlan":
        """Script a restart-migration of ``thread`` from ``src`` to
        ``dst`` at virtual time ``at`` (chainable)."""
        self.ops.append({"op": "migrate", "at": float(at), "thread": thread,
                         "src": int(src), "dst": int(dst)})
        self._validate()
        return self

    def crash(self, at: float, core: int,
              evacuate_to: Optional[int] = None) -> "ShardPlan":
        """Script a core crash at ``at``; restartable threads are
        respawned on ``evacuate_to`` when given (chainable)."""
        self.ops.append({"op": "crash", "at": float(at), "core": int(core),
                         "evacuate_to": (None if evacuate_to is None
                                         else int(evacuate_to))})
        self._validate()
        return self

    # -- validation ----------------------------------------------------------

    def _core_ok(self, core: Any) -> bool:
        return isinstance(core, int) and 0 <= core < self.cores

    def _validate(self) -> None:
        if self.seed < 1 or self.seed > 2_000_000_000:
            raise ShardError(f"plan seed out of range: {self.seed}")
        if self.cores < 1:
            raise ShardError(f"plan needs at least one core: {self.cores}")
        if self.quantum <= 0 or self.epoch_ms <= 0:
            raise ShardError("quantum and epoch_ms must be positive")
        names = set()
        for spec in self.threads:
            if not self._core_ok(spec.get("core")):
                raise ShardError(f"thread spec on unknown core: {spec!r}")
            if spec.get("body") not in BODY_REGISTRY:
                raise ShardError(
                    f"unregistered body {spec.get('body')!r}; known: "
                    f"{sorted(BODY_REGISTRY)}")
            name = spec.get("name")
            if not name or name in names:
                raise ShardError(f"thread names must be unique: {spec!r}")
            names.add(name)
            if float(spec.get("tickets", 0.0)) <= 0.0:
                raise ShardError(f"thread needs positive tickets: {spec!r}")
        channel_names = set()
        for spec in self.channels:
            if not self._core_ok(spec.get("home")):
                raise ShardError(f"channel homed on unknown core: {spec!r}")
            if not spec.get("name") or spec["name"] in channel_names:
                raise ShardError(f"channel names must be unique: {spec!r}")
            channel_names.add(spec["name"])
        for op in self.ops:
            kind = op.get("op")
            if kind not in _OP_KINDS:
                raise ShardError(f"unknown plan op: {op!r}")
            if float(op.get("at", -1.0)) < 0.0:
                raise ShardError(f"op needs a non-negative time: {op!r}")
            if kind == "migrate":
                if (op.get("thread") not in names
                        or not self._core_ok(op.get("src"))
                        or not self._core_ok(op.get("dst"))):
                    raise ShardError(f"bad migrate op: {op!r}")
            else:
                dst = op.get("evacuate_to")
                if not self._core_ok(op.get("core")) or (
                        dst is not None and not self._core_ok(dst)):
                    raise ShardError(f"bad crash op: {op!r}")
        for core, shard in self.placement.items():
            if not self._core_ok(core) or shard < 0:
                raise ShardError(
                    f"bad placement entry: core={core} shard={shard}")

    # -- derived views -------------------------------------------------------

    def core_seed(self, core_id: int) -> int:
        """The private Park-Miller seed of ``core_id``'s PRNG stream."""
        return self.seed + CORE_SEED_STRIDE * core_id

    def threads_on(self, core_id: int) -> List[Dict[str, Any]]:
        """Thread specs placed on ``core_id``, in plan order."""
        return [spec for spec in self.threads if spec["core"] == core_id]

    def ops_on(self, core_id: int) -> List[Dict[str, Any]]:
        """Scripted ops whose *source* core is ``core_id``."""
        out = []
        for op in self.ops:
            source = op["src"] if op["op"] == "migrate" else op["core"]
            if source == core_id:
                out.append(op)
        return out

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "cores": self.cores,
            "quantum": self.quantum,
            "epoch_ms": self.epoch_ms,
            "use_tree": self.use_tree,
            "threads": [dict(spec) for spec in self.threads],
            "channels": [dict(spec) for spec in self.channels],
            "ops": [dict(op) for op in self.ops],
            "placement": {str(k): v for k, v in self.placement.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ShardPlan":
        if not isinstance(data, dict):
            raise ShardError(f"plan must be a dict: {type(data).__name__}")
        return cls(
            seed=data.get("seed", 1),
            cores=data.get("cores", 1),
            quantum=data.get("quantum", 100.0),
            epoch_ms=data.get("epoch_ms", 500.0),
            use_tree=data.get("use_tree", False),
            threads=data.get("threads"),
            channels=data.get("channels"),
            ops=data.get("ops"),
            placement={int(k): int(v)
                       for k, v in (data.get("placement") or {}).items()},
        )

    def checksum(self) -> str:
        """sha256 over the canonical JSON form (plan identity)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ShardPlan seed={self.seed} cores={self.cores} "
                f"threads={len(self.threads)} channels={len(self.channels)} "
                f"ops={len(self.ops)}>")


def spin_plan(seed: int = 97, cores: int = 4, spinners: int = 3,
              quantum: float = 10.0, epoch_ms: float = 100.0,
              use_tree: bool = False) -> ShardPlan:
    """CPU-bound plan: ``spinners`` heterogeneously funded spinners per
    core (the shard benchmark workload -- no cross-core traffic, so it
    measures pure dispatch throughput)."""
    plan = ShardPlan(seed=seed, cores=cores, quantum=quantum,
                     epoch_ms=epoch_ms, use_tree=use_tree)
    index = 0
    for core in range(cores):
        for _ in range(spinners):
            plan.add_thread(core, "spin", f"spin{index}",
                            tickets=float(1 + (index % 13)), chunk_ms=7.0)
            index += 1
    return plan


def mix_plan(seed: int = 11, cores: int = 4, quantum: float = 100.0,
             epoch_ms: float = 500.0, use_tree: bool = False,
             with_ops: bool = False) -> ShardPlan:
    """The kitchen-sink plan used by goldens and the shard-mix recipe:
    spinners and sleepers on every core, an RPC service homed on core 0
    with clients on every *other* core (cross-core IPC), and --
    optionally -- a scripted mid-run migration and a crash with
    cross-shard evacuation."""
    plan = ShardPlan(seed=seed, cores=cores, quantum=quantum,
                     epoch_ms=epoch_ms, use_tree=use_tree)
    plan.add_channel("svc", home=0)
    plan.add_thread(0, "rpc_server", "server", tickets=400.0, channel="svc",
                    work_ms=4.0)
    for core in range(cores):
        plan.add_thread(core, "spin", f"spin{core}a",
                        tickets=float(100 + 50 * core), chunk_ms=20.0)
        plan.add_thread(core, "spin", f"spin{core}b",
                        tickets=float(250 - 40 * core), chunk_ms=15.0)
        plan.add_thread(core, "sleeper", f"sleep{core}", tickets=150.0,
                        compute_ms=5.0, sleep_ms=45.0)
        if core != 0:
            plan.add_thread(core, "rpc_client", f"client{core}",
                            tickets=200.0, channel="svc", compute_ms=10.0,
                            sleep_ms=30.0)
    if with_ops and cores >= 2:
        plan.migrate(at=1250.0, thread="spin0a", src=0, dst=cores - 1)
        plan.crash(at=2750.0, core=cores - 1, evacuate_to=1 % cores)
    return plan
