"""Execution backends: single-loop oracle, inline, and multiprocessing.

All three drive the same :class:`~repro.shard.core.ShardCore` objects
through the same epoch/barrier protocol and differ *only* in where and
in what interleaving core events execute:

* ``single`` -- one loop repeatedly fires the globally earliest event
  (ties broken by core id).  This is the reference: it is
  observationally the classic single-loop engine, so proving
  ``inline == single`` and ``mp == single`` proves sharded execution
  equals the unsharded engine.
* ``inline`` -- cores run sequentially, one whole epoch per core, in
  core order.  Same process, no parallelism; the cheap default.
* ``mp`` -- one persistent worker process per shard; each worker
  rebuilds its cores from the JSON plan and exchanges only epoch
  commands and barrier payloads with the parent (never objects), for
  real wall-clock speedup on multi-core hosts.

Confluence is why the interleavings agree: cores share no state, and
every cross-core effect is a JSON payload applied at a barrier in
canonical ``(target, src, seq)`` order, so any schedule of the
*within-epoch* events produces the same per-core histories.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import traceback
from typing import Any, Dict, List, Optional

from repro.errors import ShardError
from repro.shard.core import ShardCore
from repro.shard.plan import ShardPlan
from repro.shard.router import ShardRouter
from repro.shard.topology import ShardTopology

__all__ = ["BACKENDS", "InlineBackend", "MpBackend", "SingleBackend",
           "make_backend"]

_EPS = 1e-9


class _InProcessBackend:
    """Common machinery for the ``single`` and ``inline`` backends."""

    def __init__(self, plan: ShardPlan, topology: ShardTopology,
                 obs: bool = False) -> None:
        self.plan = plan
        self.topology = topology
        self.obs = bool(obs)
        self.router = ShardRouter()
        self.router.install()
        self.cores = [ShardCore(core_id, plan, self.router, obs=self.obs)
                      for core_id in range(plan.cores)]

    def collect(self) -> List[Dict[str, Any]]:
        return self.router.drain()

    def collect_obs(self, time: float) -> List[Dict[str, Any]]:
        """Per-core obs frames for the slice ending at ``time``
        (JSON-round-tripped like barrier payloads, so in-process and
        mp runs aggregate byte-identical data)."""
        if not self.obs:
            return []
        return json.loads(json.dumps(
            [core.obs_frame(time) for core in self.cores]))

    def obs_dumps(self) -> List[Dict[str, Any]]:
        """Per-core span dumps for trace stitching."""
        if not self.obs:
            return []
        return json.loads(json.dumps(
            [core.obs_dump() for core in self.cores]))

    def barrier(self, time: float, payloads: List[Dict[str, Any]]) -> None:
        self.router.install()
        grouped: Dict[int, List[Dict[str, Any]]] = {}
        for payload in payloads:
            grouped.setdefault(payload["target"], []).append(payload)
        for core in self.cores:
            core.apply_barrier(time, grouped.get(core.core_id, []))

    def snapshots(self) -> List[dict]:
        return [core.snapshot_state() for core in self.cores]

    def streams(self) -> List[List[Dict[str, Any]]]:
        return [core.stream_entries() for core in self.cores]

    def local_kernels(self) -> List[Any]:
        return [core.kernel for core in self.cores]

    def close(self) -> None:
        self.router.uninstall()


class InlineBackend(_InProcessBackend):
    """Cores run sequentially, a whole epoch at a time, in core order."""

    name = "inline"

    def run_epoch(self, horizon: float) -> None:
        self.router.install()
        for shard in range(self.topology.shards):
            for core_id in self.topology.cores_of(shard):
                self.cores[core_id].run_epoch(horizon)

    def run_inclusive(self, until: float) -> None:
        self.router.install()
        for shard in range(self.topology.shards):
            for core_id in self.topology.cores_of(shard):
                self.cores[core_id].run_inclusive(until)


class SingleBackend(_InProcessBackend):
    """The oracle: globally time-ordered interleaving of all cores."""

    name = "single"

    def _earliest(self, limit: float, inclusive: bool) -> Optional[ShardCore]:
        best = None
        best_time = None
        for core in self.cores:
            next_time = core.loop.peek_time()
            if next_time is None:
                continue
            if inclusive:
                if next_time > limit + _EPS:
                    continue
            elif next_time >= limit - _EPS:
                continue
            if best_time is None or next_time < best_time:
                best, best_time = core, next_time
        return best

    def run_epoch(self, horizon: float) -> None:
        self.router.install()
        while True:
            core = self._earliest(horizon, inclusive=False)
            if core is None:
                break
            core.step_one()

    def run_inclusive(self, until: float) -> None:
        self.router.install()
        while True:
            core = self._earliest(until, inclusive=True)
            if core is None:
                break
            core.step_one()
        for core in self.cores:
            core.loop.advance_clock(until)


# -- multiprocessing backend --------------------------------------------------


def _reap_process(process: Any, timeout: float) -> bool:
    """Join ``process``, escalating terminate -> kill; True when dead."""
    process.join(timeout=timeout)
    if process.is_alive():
        process.terminate()
        process.join(timeout=timeout)
    if process.is_alive():
        process.kill()
        process.join(timeout=timeout)
    return not process.is_alive()


def _build_worker_cores(plan_dict: Dict[str, Any], core_ids: List[int],
                        sanitize: bool, obs: bool = False) -> tuple:
    """(Re)build a shard's universe inside a worker process."""
    if sanitize:
        os.environ["REPRO_SANITIZE"] = "1"
        from repro.analysis.sanitizer import install_autosanitize

        install_autosanitize()
    plan = ShardPlan.from_dict(plan_dict)
    router = ShardRouter()
    router.install()
    cores = {core_id: ShardCore(core_id, plan, router, obs=obs)
             for core_id in sorted(core_ids)}
    return cores, router


def _execute_command(cores: Dict[int, ShardCore], router: ShardRouter,
                     message: Dict[str, Any],
                     obs: bool = False) -> Dict[str, Any]:
    """Run one worker command against this process's cores.

    Shared by the bare and supervised worker mains so the command
    semantics -- and therefore the produced histories -- cannot drift
    between the fail-stop and the fault-tolerant protocol.  With
    ``obs``, epoch/inclusive replies piggyback per-core observability
    frames and ``collect`` replies carry full span dumps -- pure
    per-core reads, so the canonical reply content is unchanged.
    """
    command = message["cmd"]
    if command == "epoch":
        for core_id in sorted(cores):
            cores[core_id].run_epoch(message["horizon"])
        reply: Dict[str, Any] = {"payloads": router.drain()}
        if obs:
            reply["obs"] = [cores[core_id].obs_frame(message["horizon"])
                            for core_id in sorted(cores)]
        return reply
    if command == "inclusive":
        for core_id in sorted(cores):
            cores[core_id].run_inclusive(message["until"])
        reply = {"payloads": router.drain()}
        if obs:
            reply["obs"] = [cores[core_id].obs_frame(message["until"])
                            for core_id in sorted(cores)]
        return reply
    if command == "barrier":
        grouped: Dict[int, List[Dict[str, Any]]] = {}
        for payload in message["payloads"]:
            grouped.setdefault(payload["target"], []).append(payload)
        for core_id in sorted(cores):
            cores[core_id].apply_barrier(
                message["time"], grouped.get(core_id, []))
        return {"ok": True}
    if command == "collect":
        entries = []
        for core_id in sorted(cores):
            entry = {"core": core_id,
                     "snapshot": cores[core_id].snapshot_state(),
                     "stream": cores[core_id].stream_entries()}
            if obs:
                entry["obs"] = cores[core_id].obs_dump()
            entries.append(entry)
        return {"cores": entries}
    if command == "stop":
        return {"ok": True, "stop": True}
    raise ShardError(f"unknown worker command {command!r}")


def _describe_error(exc: BaseException, command: Optional[str]) -> dict:
    """Worker-side failure description shipped back over the pipe, so
    supervisor logs and ShardError messages name the real cause."""
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "traceback": traceback.format_exc(),
        "cmd": command,
    }


def _format_worker_error(shard: int, error: Any) -> str:
    """Render a worker error reply (structured dict or legacy text)."""
    if isinstance(error, dict):
        command = error.get("cmd")
        where = f" running {command!r}" if command else ""
        return (f"shard worker {shard} failed{where}: "
                f"{error.get('type', 'Exception')}: "
                f"{error.get('message', '')}\n"
                f"{error.get('traceback', '')}")
    return f"shard worker {shard} failed:\n{error}"


def _worker_main(conn: Any, plan_dict: Dict[str, Any],
                 core_ids: List[int], sanitize: bool,
                 obs: bool = False) -> None:
    """Worker entry point: rebuild this shard's cores from the plan
    and serve epoch/barrier commands until told to stop.

    Module-level (not a closure) so the function is importable under
    the ``spawn`` start method as well as ``fork``.  Workers carry
    their own router and -- when the parent runs under
    ``REPRO_SANITIZE=1`` -- their own race sanitizer, so barrier
    handoffs are sanitized inside every process.
    """
    command: Optional[str] = None
    try:
        cores, router = _build_worker_cores(plan_dict, core_ids, sanitize,
                                            obs=obs)
        while True:
            message = conn.recv()
            command = message.get("cmd")
            reply = _execute_command(cores, router, message, obs=obs)
            conn.send(reply)
            if reply.get("stop"):
                break
    except EOFError:  # parent went away: nothing left to serve
        pass
    except BaseException as exc:
        try:
            conn.send({"error": _describe_error(exc, command)})
        except (OSError, ValueError):
            pass
    finally:
        conn.close()


class MpBackend:
    """One persistent worker process per shard, payloads over pipes."""

    name = "mp"

    def __init__(self, plan: ShardPlan, topology: ShardTopology,
                 obs: bool = False) -> None:
        self.plan = plan
        self.topology = topology
        self.obs = bool(obs)
        self._collected: List[Dict[str, Any]] = []
        self._obs_frames: List[Dict[str, Any]] = []
        self._workers: List[Any] = []
        self._conns: List[Any] = []
        context = multiprocessing.get_context()
        sanitize = bool(os.environ.get("REPRO_SANITIZE"))
        plan_dict = plan.to_dict()
        for shard in range(topology.shards):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_worker_main,
                args=(child_conn, plan_dict, topology.cores_of(shard),
                      sanitize, self.obs),
                daemon=True,
                name=f"repro-shard-{shard}",
            )
            process.start()
            child_conn.close()
            self._workers.append(process)
            self._conns.append(parent_conn)

    # -- command plumbing -----------------------------------------------------

    def _broadcast(self, message: Dict[str, Any],
                   per_shard: Optional[List[Dict[str, Any]]] = None
                   ) -> List[Dict[str, Any]]:
        """Send to every worker first, then gather replies, so shards
        genuinely run concurrently."""
        for shard, conn in enumerate(self._conns):
            payload = dict(message if per_shard is None else per_shard[shard])
            conn.send(payload)
        replies = []
        for shard, conn in enumerate(self._conns):
            try:
                reply = conn.recv()
            except EOFError:
                raise ShardError(
                    f"shard worker {shard} died mid-command "
                    f"{message.get('cmd')!r}") from None
            if "error" in reply:
                raise ShardError(_format_worker_error(shard, reply["error"]))
            replies.append(reply)
        return replies

    def run_epoch(self, horizon: float) -> None:
        replies = self._broadcast({"cmd": "epoch", "horizon": horizon})
        self._obs_frames = []
        for reply in replies:
            self._collected.extend(reply["payloads"])
            self._obs_frames.extend(reply.get("obs", []))

    def run_inclusive(self, until: float) -> None:
        replies = self._broadcast({"cmd": "inclusive", "until": until})
        self._obs_frames = []
        for reply in replies:
            self._collected.extend(reply["payloads"])
            self._obs_frames.extend(reply.get("obs", []))

    def collect(self) -> List[Dict[str, Any]]:
        out, self._collected = self._collected, []
        return out

    def collect_obs(self, time: float) -> List[Dict[str, Any]]:
        """Frames piggybacked on the last slice's replies (already
        pickled over the pipe, i.e. plain data by construction)."""
        out, self._obs_frames = self._obs_frames, []
        return sorted(out, key=lambda frame: frame["core"])

    def obs_dumps(self) -> List[Dict[str, Any]]:
        if not self.obs:
            return []
        return [entry["obs"] for entry in self._collect_cores()]

    def barrier(self, time: float, payloads: List[Dict[str, Any]]) -> None:
        per_shard: List[Dict[str, Any]] = [
            {"cmd": "barrier", "time": time, "payloads": []}
            for _ in self._conns]
        for payload in payloads:
            shard = self.topology.shard_of(payload["target"])
            per_shard[shard]["payloads"].append(payload)
        self._broadcast({"cmd": "barrier"}, per_shard=per_shard)

    # -- observation ----------------------------------------------------------

    def _collect_cores(self) -> List[Dict[str, Any]]:
        replies = self._broadcast({"cmd": "collect"})
        cores = [entry for reply in replies for entry in reply["cores"]]
        cores.sort(key=lambda entry: entry["core"])
        return cores

    def snapshots(self) -> List[dict]:
        return [entry["snapshot"] for entry in self._collect_cores()]

    def streams(self) -> List[List[Dict[str, Any]]]:
        return [entry["stream"] for entry in self._collect_cores()]

    def local_kernels(self) -> List[Any]:
        """No kernels live in the parent process under ``mp``."""
        return []

    #: Host seconds granted to each shutdown stage (stop ack, join,
    #: terminate, kill); a class attribute so tests can shrink it.
    close_timeout_s = 5.0

    def close(self) -> None:
        """Stop every worker, escalating politely: ``stop`` command ->
        ``terminate`` (SIGTERM) -> ``kill`` (SIGKILL).

        Wedged workers used to hang this method at ``conn.recv()``;
        the ack wait is now bounded by ``close_timeout_s`` and pipes
        that died early (EOF/broken) are tolerated.  A worker that
        survives SIGKILL is reported by shard id instead of hanging
        the interpreter at exit.
        """
        timeout = self.close_timeout_s
        for conn in self._conns:
            try:
                conn.send({"cmd": "stop"})
                if conn.poll(timeout):
                    conn.recv()
            except (OSError, EOFError, BrokenPipeError):
                pass
            finally:
                conn.close()
        unkillable: List[int] = []
        for shard, process in enumerate(self._workers):
            if not _reap_process(process, timeout):  # pragma: no cover
                unkillable.append(shard)
        self._conns = []
        self._workers = []
        if unkillable:  # pragma: no cover - kernel-level wedge
            raise ShardError(
                f"shard worker(s) {unkillable} survived SIGKILL during "
                f"close; processes leaked")

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        if self._workers:
            try:
                self.close()
            except Exception:
                pass


BACKENDS = {
    "single": SingleBackend,
    "inline": InlineBackend,
    "mp": MpBackend,
}


def make_backend(name: str, plan: ShardPlan, topology: ShardTopology,
                 obs: bool = False) -> Any:
    try:
        factory = BACKENDS[name]
    except KeyError:
        raise ShardError(
            f"unknown shard backend {name!r}; choose from "
            f"{sorted(BACKENDS)}") from None
    return factory(plan, topology, obs=obs)
