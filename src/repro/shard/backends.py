"""Execution backends: single-loop oracle, inline, and multiprocessing.

All three drive the same :class:`~repro.shard.core.ShardCore` objects
through the same epoch/barrier protocol and differ *only* in where and
in what interleaving core events execute:

* ``single`` -- one loop repeatedly fires the globally earliest event
  (ties broken by core id).  This is the reference: it is
  observationally the classic single-loop engine, so proving
  ``inline == single`` and ``mp == single`` proves sharded execution
  equals the unsharded engine.
* ``inline`` -- cores run sequentially, one whole epoch per core, in
  core order.  Same process, no parallelism; the cheap default.
* ``mp`` -- one persistent worker process per shard; each worker
  rebuilds its cores from the JSON plan and exchanges only epoch
  commands and barrier payloads with the parent (never objects), for
  real wall-clock speedup on multi-core hosts.

Confluence is why the interleavings agree: cores share no state, and
every cross-core effect is a JSON payload applied at a barrier in
canonical ``(target, src, seq)`` order, so any schedule of the
*within-epoch* events produces the same per-core histories.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from typing import Any, Dict, List, Optional

from repro.errors import ShardError
from repro.shard.core import ShardCore
from repro.shard.plan import ShardPlan
from repro.shard.router import ShardRouter
from repro.shard.topology import ShardTopology

__all__ = ["BACKENDS", "InlineBackend", "MpBackend", "SingleBackend",
           "make_backend"]

_EPS = 1e-9


class _InProcessBackend:
    """Common machinery for the ``single`` and ``inline`` backends."""

    def __init__(self, plan: ShardPlan, topology: ShardTopology) -> None:
        self.plan = plan
        self.topology = topology
        self.router = ShardRouter()
        self.router.install()
        self.cores = [ShardCore(core_id, plan, self.router)
                      for core_id in range(plan.cores)]

    def collect(self) -> List[Dict[str, Any]]:
        return self.router.drain()

    def barrier(self, time: float, payloads: List[Dict[str, Any]]) -> None:
        self.router.install()
        grouped: Dict[int, List[Dict[str, Any]]] = {}
        for payload in payloads:
            grouped.setdefault(payload["target"], []).append(payload)
        for core in self.cores:
            core.apply_barrier(time, grouped.get(core.core_id, []))

    def snapshots(self) -> List[dict]:
        return [core.snapshot_state() for core in self.cores]

    def streams(self) -> List[List[Dict[str, Any]]]:
        return [core.stream_entries() for core in self.cores]

    def local_kernels(self) -> List[Any]:
        return [core.kernel for core in self.cores]

    def close(self) -> None:
        self.router.uninstall()


class InlineBackend(_InProcessBackend):
    """Cores run sequentially, a whole epoch at a time, in core order."""

    name = "inline"

    def run_epoch(self, horizon: float) -> None:
        self.router.install()
        for shard in range(self.topology.shards):
            for core_id in self.topology.cores_of(shard):
                self.cores[core_id].run_epoch(horizon)

    def run_inclusive(self, until: float) -> None:
        self.router.install()
        for shard in range(self.topology.shards):
            for core_id in self.topology.cores_of(shard):
                self.cores[core_id].run_inclusive(until)


class SingleBackend(_InProcessBackend):
    """The oracle: globally time-ordered interleaving of all cores."""

    name = "single"

    def _earliest(self, limit: float, inclusive: bool) -> Optional[ShardCore]:
        best = None
        best_time = None
        for core in self.cores:
            next_time = core.loop.peek_time()
            if next_time is None:
                continue
            if inclusive:
                if next_time > limit + _EPS:
                    continue
            elif next_time >= limit - _EPS:
                continue
            if best_time is None or next_time < best_time:
                best, best_time = core, next_time
        return best

    def run_epoch(self, horizon: float) -> None:
        self.router.install()
        while True:
            core = self._earliest(horizon, inclusive=False)
            if core is None:
                break
            core.step_one()

    def run_inclusive(self, until: float) -> None:
        self.router.install()
        while True:
            core = self._earliest(until, inclusive=True)
            if core is None:
                break
            core.step_one()
        for core in self.cores:
            core.loop.advance_clock(until)


# -- multiprocessing backend --------------------------------------------------


def _worker_main(conn: Any, plan_dict: Dict[str, Any],
                 core_ids: List[int], sanitize: bool) -> None:
    """Worker entry point: rebuild this shard's cores from the plan
    and serve epoch/barrier commands until told to stop.

    Module-level (not a closure) so the function is importable under
    the ``spawn`` start method as well as ``fork``.  Workers carry
    their own router and -- when the parent runs under
    ``REPRO_SANITIZE=1`` -- their own race sanitizer, so barrier
    handoffs are sanitized inside every process.
    """
    try:
        if sanitize:
            os.environ["REPRO_SANITIZE"] = "1"
            from repro.analysis.sanitizer import install_autosanitize

            install_autosanitize()
        plan = ShardPlan.from_dict(plan_dict)
        router = ShardRouter()
        router.install()
        cores = {core_id: ShardCore(core_id, plan, router)
                 for core_id in sorted(core_ids)}
        while True:
            message = conn.recv()
            command = message["cmd"]
            if command == "epoch":
                for core_id in sorted(cores):
                    cores[core_id].run_epoch(message["horizon"])
                conn.send({"payloads": router.drain()})
            elif command == "inclusive":
                for core_id in sorted(cores):
                    cores[core_id].run_inclusive(message["until"])
                conn.send({"payloads": router.drain()})
            elif command == "barrier":
                grouped: Dict[int, List[Dict[str, Any]]] = {}
                for payload in message["payloads"]:
                    grouped.setdefault(payload["target"], []).append(payload)
                for core_id in sorted(cores):
                    cores[core_id].apply_barrier(
                        message["time"], grouped.get(core_id, []))
                conn.send({"ok": True})
            elif command == "collect":
                conn.send({"cores": [
                    {"core": core_id,
                     "snapshot": cores[core_id].snapshot_state(),
                     "stream": cores[core_id].stream_entries()}
                    for core_id in sorted(cores)
                ]})
            elif command == "stop":
                conn.send({"ok": True})
                break
            else:
                raise ShardError(f"unknown worker command {command!r}")
    except EOFError:  # parent went away: nothing left to serve
        pass
    except BaseException:
        try:
            conn.send({"error": traceback.format_exc()})
        except (OSError, ValueError):
            pass
    finally:
        conn.close()


class MpBackend:
    """One persistent worker process per shard, payloads over pipes."""

    name = "mp"

    def __init__(self, plan: ShardPlan, topology: ShardTopology) -> None:
        self.plan = plan
        self.topology = topology
        self._collected: List[Dict[str, Any]] = []
        self._workers: List[Any] = []
        self._conns: List[Any] = []
        context = multiprocessing.get_context()
        sanitize = bool(os.environ.get("REPRO_SANITIZE"))
        plan_dict = plan.to_dict()
        for shard in range(topology.shards):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_worker_main,
                args=(child_conn, plan_dict, topology.cores_of(shard),
                      sanitize),
                daemon=True,
                name=f"repro-shard-{shard}",
            )
            process.start()
            child_conn.close()
            self._workers.append(process)
            self._conns.append(parent_conn)

    # -- command plumbing -----------------------------------------------------

    def _broadcast(self, message: Dict[str, Any],
                   per_shard: Optional[List[Dict[str, Any]]] = None
                   ) -> List[Dict[str, Any]]:
        """Send to every worker first, then gather replies, so shards
        genuinely run concurrently."""
        for shard, conn in enumerate(self._conns):
            payload = dict(message if per_shard is None else per_shard[shard])
            conn.send(payload)
        replies = []
        for shard, conn in enumerate(self._conns):
            try:
                reply = conn.recv()
            except EOFError:
                raise ShardError(
                    f"shard worker {shard} died mid-command "
                    f"{message.get('cmd')!r}") from None
            if "error" in reply:
                raise ShardError(
                    f"shard worker {shard} failed:\n{reply['error']}")
            replies.append(reply)
        return replies

    def run_epoch(self, horizon: float) -> None:
        replies = self._broadcast({"cmd": "epoch", "horizon": horizon})
        for reply in replies:
            self._collected.extend(reply["payloads"])

    def run_inclusive(self, until: float) -> None:
        replies = self._broadcast({"cmd": "inclusive", "until": until})
        for reply in replies:
            self._collected.extend(reply["payloads"])

    def collect(self) -> List[Dict[str, Any]]:
        out, self._collected = self._collected, []
        return out

    def barrier(self, time: float, payloads: List[Dict[str, Any]]) -> None:
        per_shard: List[Dict[str, Any]] = [
            {"cmd": "barrier", "time": time, "payloads": []}
            for _ in self._conns]
        for payload in payloads:
            shard = self.topology.shard_of(payload["target"])
            per_shard[shard]["payloads"].append(payload)
        self._broadcast({"cmd": "barrier"}, per_shard=per_shard)

    # -- observation ----------------------------------------------------------

    def _collect_cores(self) -> List[Dict[str, Any]]:
        replies = self._broadcast({"cmd": "collect"})
        cores = [entry for reply in replies for entry in reply["cores"]]
        cores.sort(key=lambda entry: entry["core"])
        return cores

    def snapshots(self) -> List[dict]:
        return [entry["snapshot"] for entry in self._collect_cores()]

    def streams(self) -> List[List[Dict[str, Any]]]:
        return [entry["stream"] for entry in self._collect_cores()]

    def local_kernels(self) -> List[Any]:
        """No kernels live in the parent process under ``mp``."""
        return []

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send({"cmd": "stop"})
                conn.recv()
            except (OSError, EOFError, BrokenPipeError):
                pass
            finally:
                conn.close()
        for process in self._workers:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - hang safety net
                process.terminate()
                process.join(timeout=5.0)
        self._conns = []
        self._workers = []

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        if self._workers:
            try:
                self.close()
            except Exception:
                pass


BACKENDS = {
    "single": SingleBackend,
    "inline": InlineBackend,
    "mp": MpBackend,
}


def make_backend(name: str, plan: ShardPlan, topology: ShardTopology) -> Any:
    try:
        factory = BACKENDS[name]
    except KeyError:
        raise ShardError(
            f"unknown shard backend {name!r}; choose from "
            f"{sorted(BACKENDS)}") from None
    return factory(plan, topology)
