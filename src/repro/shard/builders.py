"""Registered thread bodies for sharded plans.

Plans name their workloads instead of embedding code: a thread spec is
``{"core": 2, "body": "spin", "name": "spin7", "tickets": 300.0,
"args": {"chunk_ms": 20.0}}`` and the body is looked up here when the
core is built.  That indirection is what lets a plan (a) travel to a
multiprocessing worker as JSON and (b) respawn a migrated or evacuated
thread on its destination core from the recorded spec -- the sharded
engine's restart semantics (see ``docs/SHARDING.md``).

A factory receives the owning :class:`repro.shard.core.ShardCore` and
the spec's ``args`` and returns an ordinary thread body (a generator
function of ``ctx``).  Factories must derive all behaviour from their
arguments; anything else would make the universe depend on which
process built it.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.errors import ShardError

__all__ = ["BODY_REGISTRY", "register_body", "build_body"]

#: name -> factory(core, args) -> body(ctx).  Mutated only at import
#: time by ``@register_body`` (a write-once registry, like the recipe
#: and sink registries).
BODY_REGISTRY: Dict[str, Callable[..., Any]] = {}


def register_body(name: str) -> Callable[[Callable[..., Any]],
                                         Callable[..., Any]]:
    """Register a body factory under ``name`` (import-time decorator)."""
    def decorator(factory: Callable[..., Any]) -> Callable[..., Any]:
        if name in BODY_REGISTRY:
            raise ShardError(f"body {name!r} already registered")
        BODY_REGISTRY[name] = factory
        return factory
    return decorator


def build_body(core: Any, spec: Dict[str, Any]) -> Callable[..., Any]:
    """Instantiate the body of a thread spec for ``core``."""
    try:
        factory = BODY_REGISTRY[spec["body"]]
    except KeyError:
        raise ShardError(f"unregistered body {spec.get('body')!r}") from None
    return factory(core, dict(spec.get("args") or {}))


# -- built-in bodies ---------------------------------------------------------


@register_body("spin")
def _spin(core: Any, args: Dict[str, Any]) -> Callable[..., Any]:
    """CPU-bound spinner: the fairness workload of the paper's 5.2."""
    from repro.kernel.syscalls import Compute

    chunk_ms = float(args.get("chunk_ms", 20.0))

    def body(ctx):
        while True:
            yield Compute(chunk_ms)

    return body


@register_body("finite_spin")
def _finite_spin(core: Any, args: Dict[str, Any]) -> Callable[..., Any]:
    """Spinner that exits after ``chunks`` compute bursts."""
    from repro.kernel.syscalls import Compute

    chunk_ms = float(args.get("chunk_ms", 20.0))
    chunks = int(args.get("chunks", 10))

    def body(ctx):
        for _ in range(chunks):
            yield Compute(chunk_ms)

    return body


@register_body("sleeper")
def _sleeper(core: Any, args: Dict[str, Any]) -> Callable[..., Any]:
    """Interactive-style thread: short bursts between sleeps."""
    from repro.kernel.syscalls import Compute, Sleep

    compute_ms = float(args.get("compute_ms", 5.0))
    sleep_ms = float(args.get("sleep_ms", 50.0))

    def body(ctx):
        while True:
            yield Compute(compute_ms)
            yield Sleep(sleep_ms)

    return body


@register_body("rpc_server")
def _rpc_server(core: Any, args: Dict[str, Any]) -> Callable[..., Any]:
    """Service loop on a channel's home core: receive, work, reply."""
    from repro.kernel.syscalls import Compute, Receive, Reply

    channel = core.channel(args["channel"])
    work_ms = float(args.get("work_ms", 2.0))

    def body(ctx):
        while True:
            request = yield Receive(channel)
            yield Compute(work_ms)
            yield Reply(request, ["ack", request.message])

    return body


@register_body("rpc_client")
def _rpc_client(core: Any, args: Dict[str, Any]) -> Callable[..., Any]:
    """Client loop: compute, call the service (possibly cross-core),
    optionally sleep.  ``count`` bounds the number of calls (0 = run
    forever).  Calls carry no ticket transfer by default so the same
    body works across cores, where separate ledgers make transfers
    meaningless (``transfer_fraction`` re-enables them for same-core
    plans)."""
    from repro.kernel.syscalls import Call, Compute, Sleep

    channel = core.channel(args["channel"])
    compute_ms = float(args.get("compute_ms", 5.0))
    sleep_ms = float(args.get("sleep_ms", 0.0))
    count = int(args.get("count", 0))
    fraction = float(args.get("transfer_fraction", 0.0))

    def body(ctx):
        sent = 0
        while count <= 0 or sent < count:
            yield Compute(compute_ms)
            yield Call(channel, f"m{sent}", fraction)
            sent += 1
            if sleep_ms > 0:
                yield Sleep(sleep_ms)

    return body


# -- serving-arena bodies (see repro.serving.shardplan) -----------------------


@register_body("serving_pump")
def _serving_pump(core: Any, args: Dict[str, Any]) -> Callable[..., Any]:
    """Open-loop arrival pump for one service class's per-core slice."""
    from repro.serving.shardplan import build_shard_pump

    return build_shard_pump(core, args)


@register_body("serving_frontend")
def _serving_frontend(core: Any, args: Dict[str, Any]) -> Callable[..., Any]:
    """Class frontend: ingress receive, parse, backend RPC, record."""
    from repro.serving.shardplan import build_shard_frontend

    return build_shard_frontend(core, args)


@register_body("serving_backend")
def _serving_backend(core: Any, args: Dict[str, Any]) -> Callable[..., Any]:
    """Backend pool worker on the channel's home core."""
    from repro.serving.shardplan import build_shard_backend

    return build_shard_backend(core, args)


@register_body("serving_slo")
def _serving_slo(core: Any, args: Dict[str, Any]) -> Callable[..., Any]:
    """Per-core SLO controller inflating frontend funding on breach."""
    from repro.serving.shardplan import build_shard_slo

    return build_shard_slo(core, args)
