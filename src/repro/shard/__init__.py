"""Deterministic sharded multicore engine.

Partitions a simulated machine into per-core universes that execute in
parallel between epoch barriers and merge in canonical order, so the
sharded run is bit-identical to the single-loop engine for any shard
count and backend (``single`` / ``inline`` / ``mp``).  See
``docs/SHARDING.md`` for the architecture and determinism argument.

This package is the *only* deterministic-zone-adjacent code allowed to
import ``multiprocessing`` (lint rule RPR012 bans concurrency imports
everywhere else in the zones).
"""

from repro.shard.builders import BODY_REGISTRY, register_body
from repro.shard.engine import ShardedEngine
from repro.shard.hostfaults import (
    HostFault,
    HostFaultPlan,
    load_host_faults,
)
from repro.shard.plan import ShardPlan, mix_plan, spin_plan
from repro.shard.supervisor import SupervisedMpBackend, SupervisorPolicy
from repro.shard.topology import ShardTopology

__all__ = [
    "BODY_REGISTRY",
    "HostFault",
    "HostFaultPlan",
    "ShardPlan",
    "ShardTopology",
    "ShardedEngine",
    "SupervisedMpBackend",
    "SupervisorPolicy",
    "load_host_faults",
    "mix_plan",
    "register_body",
    "spin_plan",
]
