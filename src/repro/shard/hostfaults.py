"""Deterministic host-level fault plans for the supervised mp backend.

``repro.faults`` injects *simulated* faults: node crashes, clock skew
and IPC loss that exist inside the virtual universe and are part of
the deterministic history every backend reproduces.  This module is
the other side of the trust boundary: **host faults** break the real
machinery that executes the simulation -- worker processes are
SIGKILLed, wedged, slowed, and their pipe frames corrupted or dropped
-- and the supervised backend's job is to recover so that the
*simulated* history comes out bit-identical anyway.  The two layers
never mix: a host fault must not change a single byte of the merged
replay stream, while a simulated fault is *supposed* to.

A :class:`HostFaultPlan` is JSON-serializable data, like
:class:`~repro.shard.plan.ShardPlan`: it schedules faults at
``(shard, epoch index)`` coordinates, so a plan replays identically
run after run.  Fault kinds:

==========  =================================================================
``kill``    the worker SIGKILLs itself; ``point="pre"`` crashes before any
            epoch work, ``point="post"`` (default) after computing the epoch
            but before replying -- a crash mid-epoch with work lost
``wedge``   the worker stops responding forever (supervisor deadline expiry)
``corrupt`` the worker's reply frame is damaged in flight (checksum reject)
``drop``    the worker finishes the epoch but its reply frame never arrives
``slow``    the reply is delayed by ``delay_s`` host seconds (recovered
            without a retry when the delay stays under the deadline)
==========  =================================================================

Arming semantics make retries convergent: at most one fault is armed
per ``(shard, epoch)`` exchange, and each plan entry fires at most
once per epoch index.  A single entry therefore disturbs the first
attempt and lets the retry run clean; *two* identical entries encode a
double fault (the retry crashes too -- a crash during recovery).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import ShardError

__all__ = ["EVERY_EPOCH", "HOST_FAULT_KINDS", "HostFault", "HostFaultPlan",
           "HostFaultSchedule", "PRESETS", "chaos_plan", "kill_every_epoch",
           "load_host_faults"]

#: ``epoch`` value meaning "fire at every epoch index".
EVERY_EPOCH = -1

HOST_FAULT_KINDS = frozenset({"kill", "wedge", "corrupt", "drop", "slow"})

_KILL_POINTS = frozenset({"pre", "post"})


class HostFault:
    """One scheduled host fault (validated, JSON-round-trippable)."""

    __slots__ = ("kind", "shard", "epoch", "point", "delay_s")

    def __init__(self, kind: str, shard: int, epoch: int,
                 point: str = "post", delay_s: float = 0.0) -> None:
        self.kind = str(kind)
        self.shard = int(shard)
        self.epoch = int(epoch)
        self.point = str(point)
        self.delay_s = float(delay_s)
        if self.kind not in HOST_FAULT_KINDS:
            raise ShardError(
                f"unknown host fault kind {self.kind!r}; choose from "
                f"{sorted(HOST_FAULT_KINDS)}")
        if self.shard < 0:
            raise ShardError(f"host fault shard must be >= 0: {self.shard}")
        if self.epoch < EVERY_EPOCH:
            raise ShardError(
                f"host fault epoch must be an epoch index or "
                f"{EVERY_EPOCH} (every epoch): {self.epoch}")
        if self.point not in _KILL_POINTS:
            raise ShardError(
                f"host fault point must be one of {sorted(_KILL_POINTS)}: "
                f"{self.point!r}")
        if self.delay_s < 0.0:
            raise ShardError(f"host fault delay_s must be >= 0: "
                             f"{self.delay_s}")
        if self.kind == "slow" and self.delay_s == 0.0:
            raise ShardError("a 'slow' host fault needs a positive delay_s")

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "shard": self.shard, "epoch": self.epoch,
                "point": self.point, "delay_s": self.delay_s}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "HostFault":
        if not isinstance(data, dict):
            raise ShardError(
                f"host fault must be a dict: {type(data).__name__}")
        return cls(
            kind=data.get("kind", ""),
            shard=data.get("shard", -1),
            epoch=data.get("epoch", EVERY_EPOCH),
            point=data.get("point", "post"),
            delay_s=data.get("delay_s", 0.0),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = "every-epoch" if self.epoch == EVERY_EPOCH else self.epoch
        return f"<HostFault {self.kind} shard={self.shard} epoch={where}>"


class HostFaultPlan:
    """An ordered list of scheduled host faults (pure data)."""

    def __init__(self, faults: Optional[List[HostFault]] = None) -> None:
        self.faults: List[HostFault] = list(faults or [])
        for fault in self.faults:
            if not isinstance(fault, HostFault):
                raise ShardError(
                    f"HostFaultPlan wants HostFault entries, got "
                    f"{type(fault).__name__}")

    def validate_for(self, shards: int) -> None:
        """Reject faults aimed at shards the topology does not have."""
        for fault in self.faults:
            if fault.shard >= shards:
                raise ShardError(
                    f"host fault targets shard {fault.shard} but the run "
                    f"has only {shards} shard(s)")

    def to_dict(self) -> Dict[str, Any]:
        return {"faults": [fault.to_dict() for fault in self.faults]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "HostFaultPlan":
        if not isinstance(data, dict):
            raise ShardError(
                f"host fault plan must be a dict: {type(data).__name__}")
        return cls([HostFault.from_dict(entry)
                    for entry in data.get("faults", [])])

    @classmethod
    def from_file(cls, path: str) -> "HostFaultPlan":
        with open(path, "r", encoding="utf-8") as handle:
            try:
                data = json.load(handle)
            except ValueError as exc:
                raise ShardError(
                    f"host fault plan {path!r} is not JSON: {exc}") from exc
        return cls.from_dict(data)

    def __len__(self) -> int:
        return len(self.faults)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<HostFaultPlan faults={len(self.faults)}>"


class HostFaultSchedule:
    """Runtime arming state over a plan (owned by the supervisor).

    ``arm(shard, epoch)`` consumes and returns at most one not-yet-fired
    entry matching the coordinates; each entry fires once per epoch
    index, so a retried epoch only re-faults when the plan holds a
    *second* matching entry (the double-fault encoding).
    """

    def __init__(self, plan: Optional[HostFaultPlan]) -> None:
        self.plan = plan if plan is not None else HostFaultPlan()
        #: (entry index, epoch index) pairs already fired.
        self._consumed: Set[Tuple[int, int]] = set()
        self.armed = 0

    def arm(self, shard: int, epoch: int) -> List[Dict[str, Any]]:
        """Faults to inject into this ``(shard, epoch)`` exchange."""
        for index, fault in enumerate(self.plan.faults):
            if fault.shard != shard:
                continue
            if fault.epoch not in (epoch, EVERY_EPOCH):
                continue
            key = (index, epoch)
            if key in self._consumed:
                continue
            self._consumed.add(key)
            self.armed += 1
            return [fault.to_dict()]
        return []


# -- presets ------------------------------------------------------------------


def kill_every_epoch(shards: int = 1, shard: int = 0) -> HostFaultPlan:
    """Kill one worker at every epoch barrier (the acceptance plan)."""
    del shards  # same plan at any width; signature matches the presets
    return HostFaultPlan([HostFault("kill", shard=shard, epoch=EVERY_EPOCH)])


def chaos_plan(shards: int = 4) -> HostFaultPlan:
    """A mixed-kind plan touching several shards and fault classes."""
    def pick(index: int) -> int:
        return index % max(1, shards)

    return HostFaultPlan([
        HostFault("kill", shard=pick(0), epoch=0, point="pre"),
        HostFault("kill", shard=pick(1), epoch=2),
        HostFault("corrupt", shard=pick(2), epoch=3),
        HostFault("drop", shard=pick(3), epoch=4),
        HostFault("slow", shard=pick(0), epoch=5, delay_s=0.05),
        HostFault("wedge", shard=pick(1), epoch=6),
    ])


PRESETS = {
    "kill-every-epoch": kill_every_epoch,
    "chaos": chaos_plan,
}


def load_host_faults(spec: str, shards: int) -> HostFaultPlan:
    """Resolve a CLI ``--host-faults`` value: preset name or JSON path."""
    if spec in PRESETS:
        plan = PRESETS[spec](shards)
    else:
        plan = HostFaultPlan.from_file(spec)
    plan.validate_for(shards)
    return plan
