"""Cross-core IPC: shard channels and remote-caller stubs.

A *channel* is a named, port-compatible endpoint with a **home core**.
Every core holds its own :class:`ShardChannel` instance for every
channel in the plan (per-core universes share no objects); only the
home core's instance wraps a real :class:`repro.kernel.ipc.Port` on
the home kernel.  Thread bodies use the ordinary ``Send`` / ``Call`` /
``Receive`` syscalls against the channel -- the kernel never learns
the difference:

* on the home core the channel passes straight through to the port
  (full local RPC semantics, including ticket transfers);
* on any other core, ``call`` blocks the caller locally and emits a
  ``call`` barrier payload; at the next epoch barrier the home core
  materializes a real ``Request`` whose client is a
  :class:`RemoteClient` stub, delivers it through the port, and the
  eventual ``Request.reply`` is diverted by the shard router into a
  ``reply`` payload that wakes the original caller on its own core one
  barrier later.

Cross-core calls carry ``transfer_fraction=0.0``: cores own separate
ledgers, so there is no currency in which a remote transfer could be
denominated (the restart-migration analogue of the paper's ticket
transfers stays within one core).  ``Port._claim_transfer`` skips
zero-fraction requests, so stubs never reach the funding machinery.
"""

from __future__ import annotations

from typing import Any, Dict, TYPE_CHECKING

from repro.errors import ShardError
from repro.kernel.ipc import Port, Request
from repro.kernel.thread import ThreadState

if TYPE_CHECKING:  # pragma: no cover
    from repro.shard.core import ShardCore

__all__ = ["RemoteClient", "ShardChannel"]


class RemoteClient:
    """Stand-in for an RPC caller blocked on another core.

    Duck-types the slice of ``Thread`` the IPC layer touches on the
    reply path (``state``, ``tid``, ``name``); the ``shard_remote``
    marker is what :meth:`ShardRouter.intercept_wake` keys on.  The
    stub is built from the JSON payload in *every* backend, so the home
    core's state evolution is identical whether the real caller lives
    in the same process or another one.
    """

    shard_remote = True

    __slots__ = ("name", "tid", "origin_core", "channel", "call_id", "state")

    def __init__(self, name: str, tid: int, origin_core: int,
                 channel: str, call_id: str) -> None:
        self.name = name
        self.tid = tid
        self.origin_core = origin_core
        self.channel = channel
        self.call_id = call_id
        # Never EXITED: a dead caller is detected on its own core when
        # the reply payload is applied, keeping the home core's history
        # independent of remote lifecycle events mid-epoch.
        self.state = ThreadState.BLOCKED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<RemoteClient {self.name!r} tid={self.tid} "
                f"core={self.origin_core} call={self.call_id}>")


class ShardChannel:
    """One core's view of a named cross-core endpoint."""

    def __init__(self, core: "ShardCore", name: str, home_core: int) -> None:
        self.core = core
        self.name = name
        self.home_core = home_core
        #: Real port, only on the home core's instance.
        self.port = (Port(core.kernel, f"channel:{name}")
                     if home_core == core.core_id else None)
        #: call_id -> locally blocked caller (non-home instances).
        self._pending: Dict[str, Any] = {}
        # -- statistics (part of the core's canonical state) -----------
        self.remote_calls = 0
        self.remote_sends = 0
        self.calls_applied = 0
        self.sends_applied = 0
        self.replies_applied = 0
        self.dropped_replies = 0

    @property
    def is_home(self) -> bool:
        return self.port is not None

    # -- port protocol (what the Send/Call/Receive syscalls invoke) ----------

    def send(self, sender: Any, message: Any) -> None:
        """Asynchronous message; cross-core sends travel at the barrier."""
        if self.is_home:
            self.port.send(sender, message)
            return
        self.remote_sends += 1
        self.core.router.emit({
            "kind": "send",
            "target": self.home_core,
            "channel": self.name,
            "message": message,
            "sender": sender.name,
        })

    def call(self, client: Any, message: Any,
             transfer_fraction: float = 1.0) -> Any:
        """Synchronous RPC; cross-core calls block locally and travel
        at the barrier (always with a zero transfer fraction)."""
        if self.is_home:
            return self.port.call(client, message, transfer_fraction)
        from repro.kernel.kernel import BLOCK  # local import: cycle guard

        self.remote_calls += 1
        call_id = f"c{self.core.core_id}-{self.core.next_call_id()}"
        self._pending[call_id] = client
        self.core.router.emit({
            "kind": "call",
            "target": self.home_core,
            "channel": self.name,
            "call_id": call_id,
            "message": message,
            "sender": client.name,
            "sender_tid": client.tid,
        })
        return BLOCK

    def receive(self, server: Any) -> Any:
        """Servers must live on the channel's home core."""
        if not self.is_home:
            raise ShardError(
                f"receive on channel {self.name!r} from core "
                f"{self.core.core_id}, but it is homed on core "
                f"{self.home_core}")
        return self.port.receive(server)

    # -- barrier payload application -----------------------------------------

    def apply_call(self, payload: Dict[str, Any]) -> None:
        """Home core: materialize a remote call as a real request."""
        stub = RemoteClient(payload["sender"], payload["sender_tid"],
                            payload["src"], self.name, payload["call_id"])
        request = Request(self.port, payload["message"], client=stub,
                          transfer_fraction=0.0)
        self.port.calls_made += 1
        self.calls_applied += 1
        self.port._deliver_or_queue(request)

    def apply_send(self, payload: Dict[str, Any]) -> None:
        """Home core: enqueue a remote asynchronous message."""
        self.sends_applied += 1
        self.port.send(None, payload["message"])

    def apply_reply(self, payload: Dict[str, Any]) -> None:
        """Origin core: wake the blocked caller with the reply value.

        A caller that died (killed, migrated away, crashed core) while
        its call was in flight is dropped here, deterministically --
        the analogue of ``Port.dead_replies`` for the cross-core path.
        """
        client = self._pending.pop(payload["call_id"], None)
        if client is None or client.state is not ThreadState.BLOCKED:
            self.dropped_replies += 1
            return
        self.replies_applied += 1
        self.core.kernel.wake(client, payload["value"])

    # -- checkpointing --------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Typed state tree for checkpointing (see ``repro.checkpoint``)."""
        return {
            "name": self.name,
            "home_core": self.home_core,
            "pending": sorted(self._pending),
            "remote_calls": self.remote_calls,
            "remote_sends": self.remote_sends,
            "calls_applied": self.calls_applied,
            "sends_applied": self.sends_applied,
            "replies_applied": self.replies_applied,
            "dropped_replies": self.dropped_replies,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "home" if self.is_home else f"remote->{self.home_core}"
        return f"<ShardChannel {self.name!r} {role}>"
