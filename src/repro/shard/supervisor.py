"""Fault-tolerant execution of the mp backend: worker supervision.

The bare :class:`~repro.shard.backends.MpBackend` is fail-stop: a
dead, hung, or corrupting worker raises
:class:`~repro.errors.ShardError` and the whole run is lost.
:class:`SupervisedMpBackend` wraps the same one-worker-per-shard
layout in a supervisor that *recovers*:

* every pipe message travels as a sha256-checksummed frame
  (:mod:`repro.shard.frames`), so damaged payloads are detected, not
  applied;
* every exchange doubles as a per-barrier heartbeat bounded by a
  host-time deadline, so a wedged worker is detected, not waited on
  forever;
* on worker crash (SIGKILL/exit), hang (deadline exceeded), or corrupt
  frame, the shard's worker is respawned from the
  :class:`~repro.shard.plan.ShardPlan` and **replayed from the
  committed command log** -- every epoch horizon and barrier payload
  the supervisor has already acknowledged.  Because a core's history
  is a pure function of ``(plan, core_id, barrier payloads received)``
  (the sharding determinism argument, ``docs/SHARDING.md``), replay
  reconstructs the state at the last committed epoch barrier
  bit-exactly: barriers are implicit recovery points, for free;
* recovery attempts are bounded by a :class:`SupervisorPolicy` budget
  with exponential host-time backoff.  On exhaustion the run
  **degrades**: all workers are stopped, the full universe is rebuilt
  in-process from the same log, and the run completes on the inline
  path -- legal because engine snapshots deliberately exclude backend
  and shard identity, so the final checkpoint is still bit-identical.

Deterministic worker *exceptions* (a reply carrying a traceback) are
not host faults: retrying deterministic code re-raises the same
error, so they surface immediately as :class:`ShardError` naming the
real cause.

Host faults can be injected deliberately through a
:class:`~repro.shard.hostfaults.HostFaultPlan` -- armed fault
descriptors ride on the epoch command frames and the worker damages
*itself* (SIGKILLs mid-epoch, wedges, corrupts or drops its reply
frame) -- which is how the equivalence tests prove that a run with
workers killed at every barrier still produces a replay stream and
final checkpoint sha256-identical to an undisturbed single-loop run.

This module supervises real operating-system processes, so it is the
one place in the shard layer where *host* time legitimately appears:
deadlines and backoff never touch virtual time and therefore never
perturb the simulated history.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import FrameCorruptError, ShardError
from repro.shard.backends import (
    _build_worker_cores,
    _describe_error,
    _execute_command,
    _format_worker_error,
    _reap_process,
)
from repro.shard.core import ShardCore
from repro.shard.frames import (
    corrupt_frame,
    decode_frame,
    encode_frame,
    send_frame,
)
from repro.shard.hostfaults import HostFaultPlan, HostFaultSchedule
from repro.shard.plan import ShardPlan
from repro.shard.router import ShardRouter
from repro.shard.topology import ShardTopology

__all__ = ["SupervisedMpBackend", "SupervisorPolicy"]


@dataclass(frozen=True)
class SupervisorPolicy:
    """Recovery budget and heartbeat deadlines (host time, never
    virtual time -- mirrors :class:`repro.faults.retry.RetryPolicy` in
    shape, but supervises real processes instead of simulated ones).

    ``max_retries`` bounds recoveries *per command exchange*; once a
    single epoch/barrier needs more, the run degrades to the inline
    backend (``degrade=True``) or raises.  ``deadline_s`` is the
    per-exchange heartbeat deadline; a worker that does not reply in
    time is declared hung.  Failed attempt ``k`` backs off
    ``min(backoff_base_s * backoff_factor**(k-1), backoff_max_s)``
    host seconds before the respawn.
    """

    max_retries: int = 3
    deadline_s: float = 30.0
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 1.0
    degrade: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ShardError(f"max_retries must be >= 0: {self.max_retries}")
        if self.deadline_s <= 0:
            raise ShardError(f"deadline_s must be positive: {self.deadline_s}")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ShardError("backoff delays must be >= 0")
        if self.backoff_factor < 1:
            raise ShardError(
                f"backoff_factor must be >= 1: {self.backoff_factor}")

    def backoff_for(self, attempt: int) -> float:
        """Host-seconds delay before the ``attempt``-th respawn."""
        if attempt < 1:
            raise ShardError(f"attempt is 1-based: {attempt}")
        return min(self.backoff_base_s * self.backoff_factor ** (attempt - 1),
                   self.backoff_max_s)


# -- worker side --------------------------------------------------------------


def _self_destruct() -> None:  # pragma: no cover - runs in worker process
    """Die the hard way: SIGKILL leaves no chance to flush or reply."""
    sigkill = getattr(signal, "SIGKILL", None)
    if sigkill is not None:
        os.kill(os.getpid(), sigkill)
    os._exit(137)


def _wedge_forever() -> None:  # pragma: no cover - runs in worker process
    """Injected hang: stop serving until the supervisor kills us."""
    while True:
        time.sleep(3600)  # repro: noqa[RPR006] -- injected 'wedge' host fault: this worker must block on wall time forever so the supervisor's heartbeat deadline expires


def _apply_reply_faults(faults: List[Dict[str, Any]],
                        frame: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    """Damage this reply as the armed host faults demand.

    Returns the (possibly corrupted) frame to send, or None when the
    reply must never arrive (``drop``).  ``kill``/``wedge`` do not
    return.
    """
    for fault in faults:
        kind = fault.get("kind")
        if kind == "kill":
            _self_destruct()
        elif kind == "wedge":
            _wedge_forever()
        elif kind == "drop":
            frame = None
        elif kind == "corrupt" and frame is not None:
            frame = corrupt_frame(frame)
        elif kind == "slow":
            time.sleep(float(fault.get("delay_s", 0.0)))  # repro: noqa[RPR006] -- injected 'slow' host fault: delays a real worker process on wall time; virtual time is untouched
    return frame


def _supervised_worker_main(conn: Any, plan_dict: Dict[str, Any],
                            core_ids: List[int], sanitize: bool,
                            obs: bool = False) -> None:
    """Framed worker loop: like ``_worker_main`` but every message is a
    checksummed frame, and armed host-fault descriptors riding on a
    command make the worker damage itself at the scripted point."""
    command: Optional[str] = None
    try:
        cores, router = _build_worker_cores(plan_dict, core_ids, sanitize,
                                            obs=obs)
        while True:
            message = decode_frame(conn.recv_bytes())
            command = message.get("cmd")
            faults = message.get("faults") or []
            for fault in faults:
                if fault.get("kind") == "kill" and \
                        fault.get("point") == "pre":
                    _self_destruct()
            reply = _execute_command(cores, router, message, obs=obs)
            frame = _apply_reply_faults(
                [fault for fault in faults
                 if not (fault.get("kind") == "kill"
                         and fault.get("point") == "pre")],
                encode_frame(reply))
            if frame is not None:
                conn.send_bytes(frame)
            if reply.get("stop"):
                break
    except EOFError:  # supervisor went away (or respawned us): done
        pass
    except BaseException as exc:
        # Includes FrameCorruptError on a damaged *incoming* frame: the
        # command cannot be trusted, so report and stop serving -- the
        # supervisor treats the dying worker as a host fault.
        try:
            send_frame(conn, {"error": _describe_error(exc, command)})
        except (OSError, ValueError):
            pass
    finally:
        conn.close()


# -- supervisor side ----------------------------------------------------------


class _WorkerHandle:
    """One shard's live worker process + pipe."""

    __slots__ = ("shard", "process", "conn")

    def __init__(self, shard: int, process: Any, conn: Any) -> None:
        self.shard = shard
        self.process = process
        self.conn = conn


class SupervisedMpBackend:
    """The mp backend under supervision: heartbeats, checksummed
    frames, respawn-and-replay recovery, and inline degradation.

    Drop-in replacement for :class:`~repro.shard.backends.MpBackend`
    behind :class:`~repro.shard.engine.ShardedEngine` -- same
    ``run_epoch`` / ``collect`` / ``barrier`` / ``snapshots`` surface,
    same bit-exact merged history (host faults included).
    """

    name = "mp-supervised"

    #: Host seconds granted to each shutdown stage; see MpBackend.
    close_timeout_s = 5.0

    def __init__(self, plan: ShardPlan, topology: ShardTopology,
                 policy: Optional[SupervisorPolicy] = None,
                 host_faults: Optional[HostFaultPlan] = None,
                 telemetry: Any = None, obs: bool = False) -> None:
        self.plan = plan
        self.topology = topology
        self.policy = policy if policy is not None else SupervisorPolicy()
        if host_faults is not None:
            host_faults.validate_for(topology.shards)
        self.schedule = HostFaultSchedule(host_faults)
        self.telemetry = telemetry
        self.obs = bool(obs)

        self._context = multiprocessing.get_context()
        self._sanitize = bool(os.environ.get("REPRO_SANITIZE"))
        self._plan_dict = plan.to_dict()
        self._collected: List[Dict[str, Any]] = []
        self._obs_frames: List[Dict[str, Any]] = []
        #: Committed (fully acknowledged) commands, in issue order --
        #: the recovery log.  Barrier entries keep the *full* payload
        #: list so both per-shard replay and inline degradation can
        #: regroup it.
        self._log: List[Dict[str, Any]] = []
        #: Index of the epoch slice currently executing (incremented by
        #: every epoch/inclusive command; host faults are scheduled in
        #: these coordinates).
        self._epoch_index = -1
        #: Virtual time of the current command (observability only).
        self._time = 0.0

        # -- recovery bookkeeping (observability; not canonical state) --
        self.events: List[Dict[str, Any]] = []
        self.restarts = [0] * topology.shards
        self.retries = [0] * topology.shards
        self.degraded = False
        self.degrade_reason: Optional[str] = None

        self._mode = "mp"
        self._cores: Optional[List[ShardCore]] = None
        self._router: Optional[ShardRouter] = None
        self._handles: List[_WorkerHandle] = [
            self._spawn_worker(shard) for shard in range(topology.shards)]

    # -- worker lifecycle -----------------------------------------------------

    def _spawn_worker(self, shard: int) -> _WorkerHandle:
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_supervised_worker_main,
            args=(child_conn, self._plan_dict, self.topology.cores_of(shard),
                  self._sanitize, self.obs),
            daemon=True,
            name=f"repro-shard-sup-{shard}",
        )
        process.start()
        child_conn.close()
        return _WorkerHandle(shard, process, parent_conn)

    def _kill_worker(self, handle: _WorkerHandle) -> None:
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover - already torn down
            pass
        _reap_process(handle.process, self.close_timeout_s)

    def _respawn_worker(self, shard: int, attempt: int) -> None:
        self._kill_worker(self._handles[shard])
        backoff = self.policy.backoff_for(attempt)
        if backoff > 0:
            time.sleep(backoff)  # repro: noqa[RPR006] -- supervision backoff is host-level by design: it paces real process respawns and never touches virtual time, so the simulated history is unperturbed
        self._handles[shard] = self._spawn_worker(shard)
        self.restarts[shard] += 1
        self._event("worker.restart", shard=shard, attempt=attempt)

    # -- observability --------------------------------------------------------

    def _event(self, kind: str, shard: Optional[int] = None,
               **attrs: Any) -> None:
        entry: Dict[str, Any] = {
            "kind": kind, "time": self._time, "epoch": self._epoch_index,
            "shard": shard,
        }
        entry.update(attrs)
        self.events.append(entry)
        if self.telemetry is not None:
            labels = None if shard is None else {"shard": str(shard)}
            self.telemetry.registry.counter(
                f"shard.{kind}", labels,
                help="supervised shard backend recovery event").inc()
            self.telemetry.tracer.event(
                track="supervisor", name=f"shard.{kind}", category="shard",
                time=self._time,
                attrs={key: value for key, value in entry.items()
                       if key not in ("kind", "time")})

    def recovery_summary(self) -> Dict[str, Any]:
        """Recovery counters and the full event log (observability)."""
        return {
            "degraded": self.degraded,
            "degrade_reason": self.degrade_reason,
            "restarts": list(self.restarts),
            "retries": list(self.retries),
            "faults_armed": self.schedule.armed,
            "events": [dict(event) for event in self.events],
        }

    # -- framed exchanges with recovery ---------------------------------------

    def _send(self, shard: int, message: Dict[str, Any]) -> bool:
        try:
            self._handles[shard].conn.send_bytes(encode_frame(message))
            return True
        except (OSError, BrokenPipeError, ValueError):
            return False

    def _await(self, shard: int) -> Tuple[str, Any]:
        """Wait for one framed reply under the heartbeat deadline.

        Returns ``("ok", reply)`` or a failure classification:
        ``hang`` (deadline expired), ``crash`` (pipe died), or
        ``corrupt`` (frame failed its checksum).  A structured worker
        error is deterministic, not a host fault, and raises."""
        conn = self._handles[shard].conn
        deadline = self.policy.deadline_s
        try:
            if not conn.poll(deadline):
                return "hang", f"no heartbeat within {deadline:g}s"
            raw = conn.recv_bytes()
        except (EOFError, OSError):
            return "crash", "pipe closed"
        try:
            reply = decode_frame(raw)
        except FrameCorruptError as exc:
            return "corrupt", str(exc)
        if "error" in reply:
            raise ShardError(_format_worker_error(shard, reply["error"]))
        return "ok", reply

    def _budget_exhausted(self, shard: int, failures: int, status: str,
                          detail: Any) -> bool:
        """True when the caller should stop retrying because the run
        degraded; raises instead when degradation is disabled."""
        if failures <= self.policy.max_retries:
            return False
        reason = (f"shard {shard} exhausted its retry budget "
                  f"({self.policy.max_retries}) at epoch "
                  f"{self._epoch_index}; last failure {status}: {detail}")
        if self.policy.degrade:
            self._degrade(reason)
            return True
        raise ShardError(reason)

    def _replay_into_worker(self, shard: int) -> Tuple[bool, str]:
        """Re-execute the committed log in a fresh worker.

        Replies (including re-emitted barrier payloads) are discarded:
        they were already committed.  Faults are never armed during
        replay -- double faults are encoded as a second plan entry
        firing on the *retried* command instead."""
        for command in self._log:
            message = self._message_for_shard(shard, command)
            if not self._send(shard, message):
                return False, "crash: pipe closed during replay"
            status, detail = self._await(shard)
            if status != "ok":
                return False, f"{status} during replay: {detail}"
        return True, ""

    def _message_for_shard(self, shard: int,
                           command: Dict[str, Any]) -> Dict[str, Any]:
        if command["cmd"] == "barrier":
            mine = [payload for payload in command["payloads"]
                    if self.topology.shard_of(payload["target"]) == shard]
            return {"cmd": "barrier", "time": command["time"],
                    "payloads": mine, "faults": []}
        return {**command, "faults": []}

    def _finish_exchange(self, shard: int, base_message: Dict[str, Any],
                         arm: bool, in_flight: bool,
                         ) -> Optional[Dict[str, Any]]:
        """Drive one shard's exchange to a committed reply, recovering
        as needed; None means the run degraded (reply is moot)."""
        failures = 0
        need_recovery = False
        while True:
            if need_recovery:
                self._respawn_worker(shard, failures)
                ok, detail = self._replay_into_worker(shard)
                if not ok:
                    failures += 1
                    self.retries[shard] += 1
                    self._event("fault.detected", shard=shard,
                                failure="replay", detail=detail,
                                attempt=failures)
                    if self._budget_exhausted(shard, failures, "replay",
                                              detail):
                        return None
                    continue
                need_recovery = False
                self._event("epoch.retry", shard=shard,
                            cmd=base_message.get("cmd"), attempt=failures)
            if in_flight:
                in_flight = False
                status, value = self._await(shard)
            else:
                faults = (self.schedule.arm(shard, self._epoch_index)
                          if arm else [])
                if faults:
                    self._event("fault.armed", shard=shard,
                                fault=faults[0]["kind"])
                message = {**base_message, "faults": faults}
                if self._send(shard, message):
                    status, value = self._await(shard)
                else:
                    status, value = "crash", "pipe closed on send"
            if status == "ok":
                return value
            failures += 1
            self.retries[shard] += 1
            self._event("fault.detected", shard=shard, failure=status,
                        detail=str(value), attempt=failures,
                        cmd=base_message.get("cmd"))
            if self._budget_exhausted(shard, failures, status, value):
                return None
            need_recovery = True

    def _broadcast(self, message: Optional[Dict[str, Any]],
                   per_shard: Optional[List[Dict[str, Any]]] = None,
                   arm: bool = False) -> Optional[List[Dict[str, Any]]]:
        """Supervised fan-out: optimistic concurrent first attempt,
        then per-shard recovery.  None means the run degraded and the
        caller must re-run the current command on the inline path."""
        messages: List[Dict[str, Any]] = []
        in_flight: List[bool] = []
        for shard in range(self.topology.shards):
            base = dict(message if per_shard is None else per_shard[shard])
            faults = self.schedule.arm(shard, self._epoch_index) if arm else []
            if faults:
                self._event("fault.armed", shard=shard,
                            fault=faults[0]["kind"])
            base["faults"] = faults
            messages.append(base)
            # Send to every worker before gathering any reply, so the
            # shards genuinely run concurrently.
            in_flight.append(self._send(shard, base))
        replies: List[Dict[str, Any]] = []
        for shard, base in enumerate(messages):
            reply = self._finish_exchange(
                shard, {key: value for key, value in base.items()
                        if key != "faults"},
                arm=arm, in_flight=in_flight[shard])
            if reply is None:
                return None
            replies.append(reply)
        return replies

    # -- degradation ----------------------------------------------------------

    def _degrade(self, reason: str) -> None:
        """Migrate the entire run to the inline backend mid-run.

        Stops every worker, rebuilds all cores in-process, and replays
        the committed command log against them.  Legal because engine
        snapshots exclude backend/shard identity; bit-exact because
        the log *is* the universe's input history."""
        self._event("backend.degrade", detail=reason)
        self.degraded = True
        self.degrade_reason = reason
        for handle in self._handles:
            self._kill_worker(handle)
        self._handles = []
        self._router = ShardRouter()
        self._router.install()
        self._cores = [ShardCore(core_id, self.plan, self._router,
                                 obs=self.obs)
                       for core_id in range(self.plan.cores)]
        self._mode = "inline"
        for command in self._log:
            self._apply_inline(command)

    def _apply_inline(self, command: Dict[str, Any]) -> List[Dict[str, Any]]:
        """Execute one logged command on the in-process cores."""
        assert self._router is not None and self._cores is not None
        self._router.install()
        cmd = command["cmd"]
        if cmd == "epoch":
            for core in self._cores:
                core.run_epoch(command["horizon"])
            return self._router.drain()
        if cmd == "inclusive":
            for core in self._cores:
                core.run_inclusive(command["until"])
            return self._router.drain()
        if cmd == "barrier":
            grouped: Dict[int, List[Dict[str, Any]]] = {}
            for payload in command["payloads"]:
                grouped.setdefault(payload["target"], []).append(payload)
            for core in self._cores:
                core.apply_barrier(command["time"],
                                   grouped.get(core.core_id, []))
            return []
        raise ShardError(f"unknown inline command {cmd!r}")

    # -- backend interface ----------------------------------------------------

    def _inline_obs_frames(self, time: float) -> List[Dict[str, Any]]:
        """Frames from the in-process cores after a degrade (JSON
        round-tripped to match what the pipe path ships)."""
        assert self._cores is not None
        return json.loads(json.dumps(
            [core.obs_frame(time) for core in self._cores]))

    def _run_slice(self, command: Dict[str, Any]) -> None:
        """Common path for epoch/inclusive commands."""
        self._epoch_index += 1
        slice_time = command.get("horizon", command.get("until"))
        if self._mode == "inline":
            self._collected.extend(self._apply_inline(command))
            if self.obs:
                self._obs_frames = self._inline_obs_frames(slice_time)
            return
        replies = self._broadcast(command, arm=True)
        if replies is None:  # degraded mid-command; partial replies moot
            self._collected.extend(self._apply_inline(command))
            if self.obs:
                self._obs_frames = self._inline_obs_frames(slice_time)
            return
        self._obs_frames = []
        for reply in replies:
            self._collected.extend(reply["payloads"])
            self._obs_frames.extend(reply.get("obs", []))
        self._log.append(dict(command))

    def run_epoch(self, horizon: float) -> None:
        self._time = horizon
        self._run_slice({"cmd": "epoch", "horizon": horizon})

    def run_inclusive(self, until: float) -> None:
        self._time = until
        self._run_slice({"cmd": "inclusive", "until": until})

    def collect(self) -> List[Dict[str, Any]]:
        out, self._collected = self._collected, []
        return out

    def collect_obs(self, time: float) -> List[Dict[str, Any]]:
        """Frames from the last committed slice (cumulative, so a
        recovered-and-replayed worker reproduced them bit-exactly)."""
        out, self._obs_frames = self._obs_frames, []
        return sorted(out, key=lambda frame: frame["core"])

    def obs_dumps(self) -> List[Dict[str, Any]]:
        if not self.obs:
            return []
        return [entry["obs"] for entry in self._collect_cores()]

    def barrier(self, time_: float, payloads: List[Dict[str, Any]]) -> None:
        self._time = time_
        command = {"cmd": "barrier", "time": time_,
                   "payloads": [dict(payload) for payload in payloads]}
        if self._mode == "inline":
            self._apply_inline(command)
            return
        per_shard: List[Dict[str, Any]] = [
            {"cmd": "barrier", "time": time_, "payloads": []}
            for _ in range(self.topology.shards)]
        for payload in payloads:
            shard = self.topology.shard_of(payload["target"])
            per_shard[shard]["payloads"].append(payload)
        replies = self._broadcast(None, per_shard=per_shard)
        if replies is None:
            self._apply_inline(command)
            return
        self._log.append(command)

    # -- observation ----------------------------------------------------------

    def _collect_cores(self) -> List[Dict[str, Any]]:
        if self._mode == "inline":
            assert self._cores is not None
            entries = []
            for core in self._cores:
                entry = {"core": core.core_id,
                         "snapshot": core.snapshot_state(),
                         "stream": core.stream_entries()}
                if self.obs:
                    entry["obs"] = json.loads(json.dumps(core.obs_dump()))
                entries.append(entry)
            return entries
        replies = self._broadcast({"cmd": "collect"})
        if replies is None:  # degraded during collection
            return self._collect_cores()
        cores = [entry for reply in replies for entry in reply["cores"]]
        cores.sort(key=lambda entry: entry["core"])
        return cores

    def snapshots(self) -> List[dict]:
        return [entry["snapshot"] for entry in self._collect_cores()]

    def streams(self) -> List[List[Dict[str, Any]]]:
        return [entry["stream"] for entry in self._collect_cores()]

    def local_kernels(self) -> List[Any]:
        """Empty like the bare mp backend, and kept empty after a
        degrade so recorder fan-out does not depend on backend fate."""
        return []

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        if self._mode == "inline":
            if self._router is not None:
                self._router.uninstall()
            self._cores = None
            self._router = None
            return
        timeout = self.close_timeout_s
        unkillable: List[int] = []
        for shard, handle in enumerate(self._handles):
            try:
                send_frame(handle.conn, {"cmd": "stop", "faults": []})
                if handle.conn.poll(timeout):
                    handle.conn.recv_bytes()
            except (OSError, EOFError, BrokenPipeError):
                pass
            finally:
                try:
                    handle.conn.close()
                except OSError:  # pragma: no cover - already torn down
                    pass
            if not _reap_process(handle.process, timeout):  # pragma: no cover
                unkillable.append(shard)
        self._handles = []
        if unkillable:  # pragma: no cover - kernel-level wedge
            raise ShardError(
                f"supervised shard worker(s) {unkillable} survived SIGKILL "
                f"during close; processes leaked")

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        if getattr(self, "_handles", None):
            try:
                self.close()
            except Exception:
                pass
