"""Sharded-engine CLI: ``python -m repro.shard``.

* ``run`` -- execute a built-in plan on one backend and print the
  stream/state checksums; ``--supervise`` runs the mp backend under
  the fault-tolerant supervisor, optionally injecting a deliberate
  ``--host-faults`` plan (preset name or JSON file).  ``--obs`` turns
  on the cross-shard observability plane; ``--trace-out`` writes the
  stitched Chrome trace, ``--report-out``/``--report-md`` the
  observability report (JSON / markdown), ``--prom-out`` the
  aggregated metrics in Prometheus text format, and ``--flight-dir``
  arms the crash flight recorder.  All observability outputs are
  byte-deterministic: same plan/seed on any backend produces
  sha256-identical canonical artifacts;
* ``verify`` -- the CI equivalence gate: run the single-loop oracle,
  then every requested ``(backend, shards)`` combination, and compare
  replay-stream and state-tree sha256s bit-for-bit.  With
  ``--supervise`` two extra combinations join the matrix: a supervised
  mp run, and a supervised mp run with a worker killed at **every
  epoch barrier** -- both must still be bit-identical to the oracle.
  On divergence, writes a report (first differing entry,
  per-combination checksums) suitable for upload as a CI artifact.

Examples::

    python -m repro.shard run --plan mix --cores 4 --backend mp \
        --shards 4 --until 5000 --supervise --host-faults chaos
    python -m repro.shard verify --plan mix --cores 4 --until 5000 \
        --backends inline,mp --shards 1,2,4 --supervise \
        --report divergence.txt
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Tuple

from repro.checkpoint.statetree import tree_checksum
from repro.errors import ShardError
from repro.shard.engine import ShardedEngine
from repro.shard.hostfaults import (
    HostFaultPlan,
    kill_every_epoch,
    load_host_faults,
)
from repro.shard.plan import ShardPlan, mix_plan, spin_plan
from repro.shard.supervisor import SupervisorPolicy

def _serving(args):
    # Imported lazily: repro.serving pulls in the arena stack, which
    # plain mix/spin runs never need.
    from repro.serving.shardplan import serving_plan

    return serving_plan(seed=args.seed, cores=args.cores)


PLANS = {
    "mix": lambda args: mix_plan(seed=args.seed, cores=args.cores),
    "mix-ops": lambda args: mix_plan(seed=args.seed, cores=args.cores,
                                     with_ops=True),
    "spin": lambda args: spin_plan(seed=args.seed, cores=args.cores),
    "serving": _serving,
}


def _run_combo(plan: ShardPlan, backend: str, shards: int, until: float,
               supervise: bool = False,
               policy: Optional[SupervisorPolicy] = None,
               host_faults: Optional[HostFaultPlan] = None,
               obs: bool = False, flight_dir: Optional[str] = None,
               ) -> Tuple[str, str, List[Dict[str, Any]], dict,
                          Optional[Dict[str, Any]]]:
    with ShardedEngine(plan, shards=shards, backend=backend,
                       supervise=supervise, policy=policy,
                       host_faults=host_faults, obs=obs,
                       flight_dir=flight_dir) as engine:
        engine.advance(until)
        stream = engine.merged_stream()
        obs_out: Optional[Dict[str, Any]] = None
        if obs:
            obs_out = {
                "trace": engine.stitched_trace(),
                "report": engine.obs_report(),
                "view": engine.metrics_view(),
            }
        return (tree_checksum(stream), tree_checksum(engine.snapshot_state()),
                stream, engine.recovery_summary(), obs_out)


def _write_obs_outputs(args: argparse.Namespace,
                       obs_out: Dict[str, Any]) -> None:
    from repro.telemetry.exporters import export_prometheus, write_checksummed
    from repro.telemetry.obsreport import render_markdown

    trace = obs_out["trace"]
    report = obs_out["report"]
    slo = report["canonical"]["slo"]
    print(f"obs     slices={report['canonical']['slices']} "
          f"slo={'PASS' if slo['ok'] else 'FAIL'} "
          f"breaches={len(slo['breaches'])}")
    print(f"trace   {json.loads(trace)['metadata']['sha256']}")
    print(f"reportc {report['canonical_sha256']}")
    if args.trace_out:
        write_checksummed(args.trace_out, trace)
        print(f"stitched trace written to {args.trace_out}")
    if args.report_out:
        write_checksummed(args.report_out,
                          json.dumps(report, sort_keys=True,
                                     separators=(",", ":")) + "\n")
        print(f"obs report written to {args.report_out}")
    if args.report_md:
        write_checksummed(args.report_md, render_markdown(report))
        print(f"obs report (markdown) written to {args.report_md}")
    if args.prom_out:
        write_checksummed(args.prom_out,
                          export_prometheus(obs_out["view"]))
        print(f"prometheus metrics written to {args.prom_out}")


def _first_divergence(reference: List[Dict[str, Any]],
                      stream: List[Dict[str, Any]]) -> str:
    for index, (left, right) in enumerate(zip(reference, stream)):
        if left != right:
            return (f"first divergent entry at index {index}:\n"
                    f"  single: {left!r}\n  other:  {right!r}")
    if len(reference) != len(stream):
        return (f"streams diverge in length: single={len(reference)} "
                f"other={len(stream)}")
    return "streams identical (state trees diverge)"


def _recovery_line(summary: dict) -> str:
    return (f"recovery: restarts={sum(summary['restarts'])} "
            f"retries={sum(summary['retries'])} "
            f"faults_armed={summary['faults_armed']} "
            f"degraded={summary['degraded']}")


def _policy_from_args(args: argparse.Namespace) -> SupervisorPolicy:
    return SupervisorPolicy(max_retries=args.max_retries,
                            deadline_s=args.deadline)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.shard",
        description="Run or verify the deterministic sharded engine.")
    parser.add_argument("command", choices=("run", "verify"))
    parser.add_argument("--plan", choices=sorted(PLANS), default="mix")
    parser.add_argument("--cores", type=int, default=4)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--until", type=float, default=5000.0)
    parser.add_argument("--backend", default="inline",
                        help="backend for 'run' (single/inline/mp)")
    parser.add_argument("--backends", default="inline,mp",
                        help="comma list for 'verify'")
    parser.add_argument("--shards", default="1,2,4",
                        help="shard counts: one int for 'run', comma "
                             "list for 'verify'")
    parser.add_argument("--supervise", action="store_true",
                        help="run mp workers under the fault-tolerant "
                             "supervisor (run: requires --backend mp; "
                             "verify: adds supervised and "
                             "killed-every-barrier combinations)")
    parser.add_argument("--max-retries", type=int, default=3,
                        help="supervisor retry budget per exchange")
    parser.add_argument("--deadline", type=float, default=30.0,
                        help="supervisor heartbeat deadline (host "
                             "seconds) per exchange")
    parser.add_argument("--host-faults", metavar="PLAN",
                        help="host-fault plan to inject: preset name "
                             "('kill-every-epoch', 'chaos') or JSON "
                             "file path (requires --supervise)")
    parser.add_argument("--report", metavar="PATH",
                        help="divergence report path for 'verify'")
    parser.add_argument("--obs", action="store_true",
                        help="run with the cross-shard observability "
                             "plane: barrier-mediated metric frames, "
                             "stitched trace, SLO watchdogs")
    parser.add_argument("--trace-out", metavar="PATH",
                        help="write the stitched Chrome trace here "
                             "(implies --obs)")
    parser.add_argument("--report-out", metavar="PATH",
                        help="write the observability report JSON here "
                             "(implies --obs)")
    parser.add_argument("--report-md", metavar="PATH",
                        help="write the observability report as "
                             "markdown here (implies --obs)")
    parser.add_argument("--prom-out", metavar="PATH",
                        help="write the aggregated metrics in "
                             "Prometheus text format here (implies "
                             "--obs)")
    parser.add_argument("--flight-dir", metavar="DIR",
                        help="flight-recorder bundle directory: on a "
                             "shard fault / sanitizer trap the engine "
                             "dumps a checksummed debug bundle here "
                             "(implies --obs)")
    args = parser.parse_args(argv)

    plan = PLANS[args.plan](args)

    if args.host_faults and not args.supervise:
        parser.error("--host-faults requires --supervise: only the "
                     "supervised backend recovers from host faults")
    obs = bool(args.obs or args.trace_out or args.report_out
               or args.report_md or args.prom_out or args.flight_dir)
    if obs and args.command != "run":
        parser.error("--obs and its output flags apply to 'run' only")

    if args.command == "run":
        shards = int(args.shards.split(",")[0])
        policy = _policy_from_args(args) if args.supervise else None
        host_faults = (load_host_faults(args.host_faults, shards)
                       if args.host_faults else None)
        stream_sha, state_sha, stream, recovery, obs_out = _run_combo(
            plan, args.backend, shards, args.until,
            supervise=args.supervise, policy=policy,
            host_faults=host_faults, obs=obs,
            flight_dir=args.flight_dir)
        mode = " supervised" if args.supervise else ""
        print(f"plan={args.plan} cores={args.cores} backend={args.backend}"
              f"{mode} shards={shards} until={args.until:g}")
        print(f"entries {len(stream)}")
        print(f"stream  {stream_sha}")
        print(f"state   {state_sha}")
        if args.supervise:
            print(_recovery_line(recovery))
        if obs:
            _write_obs_outputs(args, obs_out)
        return 0

    # verify: single-loop oracle first, then every combination.
    ref_stream_sha, ref_state_sha, ref_stream, _, _ = _run_combo(
        plan, "single", 1, args.until)
    print(f"single-loop oracle: stream {ref_stream_sha[:16]} "
          f"state {ref_state_sha[:16]} ({len(ref_stream)} entries)")
    failures: List[str] = []
    lines: List[str] = [
        f"shard equivalence report: plan={args.plan} cores={args.cores} "
        f"seed={args.seed} until={args.until:g}",
        f"single-loop oracle: stream={ref_stream_sha} "
        f"state={ref_state_sha}",
    ]

    combos: List[Dict[str, Any]] = []
    for backend in args.backends.split(","):
        for shard_text in args.shards.split(","):
            combos.append({"label": f"{backend.strip()}/s{shard_text}",
                           "backend": backend.strip(),
                           "shards": int(shard_text)})
    if args.supervise:
        shards = max(int(text) for text in args.shards.split(","))
        policy = _policy_from_args(args)
        combos.append({"label": f"mp+supervise/s{shards}", "backend": "mp",
                       "shards": shards, "supervise": True,
                       "policy": policy})
        faults = (load_host_faults(args.host_faults, shards)
                  if args.host_faults else kill_every_epoch(shards))
        combos.append({"label": f"mp+supervise+faults/s{shards}",
                       "backend": "mp", "shards": shards,
                       "supervise": True, "policy": policy,
                       "host_faults": faults})

    for combo in combos:
        label = combo["label"]
        try:  # repro: noqa[RPR006] -- not a retry: each combination runs exactly once; a failing combo is recorded in the divergence report and fails the exit code
            stream_sha, state_sha, stream, recovery, _ = _run_combo(
                plan, combo["backend"], combo["shards"], args.until,
                supervise=combo.get("supervise", False),
                policy=combo.get("policy"),
                host_faults=combo.get("host_faults"))
        except ShardError as exc:
            failures.append(f"{label}: {exc}")
            lines.append(f"{label}: ERROR {exc}")
            continue
        ok = (stream_sha == ref_stream_sha
              and state_sha == ref_state_sha)
        verdict = "OK" if ok else "DIVERGED"
        print(f"{label:>24}: stream {stream_sha[:16]} "
              f"state {state_sha[:16]} {verdict}")
        lines.append(f"{label}: stream={stream_sha} "
                     f"state={state_sha} {verdict}")
        if combo.get("supervise"):
            print(f"{'':>24}  {_recovery_line(recovery)}")
            lines.append(f"{label}: {_recovery_line(recovery)}")
        if not ok:
            failures.append(label)
            lines.append(_first_divergence(ref_stream, stream))
    if args.report and failures:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        print(f"divergence report written to {args.report}")
    if failures:
        print(f"FAIL: {len(failures)} combination(s) diverged: "
              f"{', '.join(failures)}")
        return 1
    print("PASS: all combinations bit-identical to the single-loop oracle")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
