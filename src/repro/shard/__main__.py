"""Sharded-engine CLI: ``python -m repro.shard``.

* ``run`` -- execute a built-in plan on one backend and print the
  stream/state checksums;
* ``verify`` -- the CI equivalence gate: run the single-loop oracle,
  then every requested ``(backend, shards)`` combination, and compare
  replay-stream and state-tree sha256s bit-for-bit.  On divergence,
  writes a report (first differing entry, per-combination checksums)
  suitable for upload as a CI artifact.

Examples::

    python -m repro.shard run --plan mix --cores 4 --backend mp \
        --shards 4 --until 5000
    python -m repro.shard verify --plan mix --cores 4 --until 5000 \
        --backends inline,mp --shards 1,2,4 --report divergence.txt
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional, Tuple

from repro.checkpoint.statetree import tree_checksum
from repro.errors import ShardError
from repro.shard.engine import ShardedEngine
from repro.shard.plan import ShardPlan, mix_plan, spin_plan

PLANS = {
    "mix": lambda args: mix_plan(seed=args.seed, cores=args.cores),
    "mix-ops": lambda args: mix_plan(seed=args.seed, cores=args.cores,
                                     with_ops=True),
    "spin": lambda args: spin_plan(seed=args.seed, cores=args.cores),
}


def _run_combo(plan: ShardPlan, backend: str, shards: int,
               until: float) -> Tuple[str, str, List[Dict[str, Any]]]:
    with ShardedEngine(plan, shards=shards, backend=backend) as engine:
        engine.advance(until)
        stream = engine.merged_stream()
        return (tree_checksum(stream), tree_checksum(engine.snapshot_state()),
                stream)


def _first_divergence(reference: List[Dict[str, Any]],
                      stream: List[Dict[str, Any]]) -> str:
    for index, (left, right) in enumerate(zip(reference, stream)):
        if left != right:
            return (f"first divergent entry at index {index}:\n"
                    f"  single: {left!r}\n  other:  {right!r}")
    if len(reference) != len(stream):
        return (f"streams diverge in length: single={len(reference)} "
                f"other={len(stream)}")
    return "streams identical (state trees diverge)"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.shard",
        description="Run or verify the deterministic sharded engine.")
    parser.add_argument("command", choices=("run", "verify"))
    parser.add_argument("--plan", choices=sorted(PLANS), default="mix")
    parser.add_argument("--cores", type=int, default=4)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--until", type=float, default=5000.0)
    parser.add_argument("--backend", default="inline",
                        help="backend for 'run' (single/inline/mp)")
    parser.add_argument("--backends", default="inline,mp",
                        help="comma list for 'verify'")
    parser.add_argument("--shards", default="1,2,4",
                        help="shard counts: one int for 'run', comma "
                             "list for 'verify'")
    parser.add_argument("--report", metavar="PATH",
                        help="divergence report path for 'verify'")
    args = parser.parse_args(argv)

    plan = PLANS[args.plan](args)

    if args.command == "run":
        shards = int(args.shards.split(",")[0])
        stream_sha, state_sha, stream = _run_combo(
            plan, args.backend, shards, args.until)
        print(f"plan={args.plan} cores={args.cores} backend={args.backend} "
              f"shards={shards} until={args.until:g}")
        print(f"entries {len(stream)}")
        print(f"stream  {stream_sha}")
        print(f"state   {state_sha}")
        return 0

    # verify: single-loop oracle first, then every combination.
    ref_stream_sha, ref_state_sha, ref_stream = _run_combo(
        plan, "single", 1, args.until)
    print(f"single-loop oracle: stream {ref_stream_sha[:16]} "
          f"state {ref_state_sha[:16]} ({len(ref_stream)} entries)")
    failures: List[str] = []
    lines: List[str] = [
        f"shard equivalence report: plan={args.plan} cores={args.cores} "
        f"seed={args.seed} until={args.until:g}",
        f"single-loop oracle: stream={ref_stream_sha} "
        f"state={ref_state_sha}",
    ]
    for backend in args.backends.split(","):
        for shard_text in args.shards.split(","):
            shards = int(shard_text)
            try:  # repro: noqa[RPR006] -- not a retry: each combination runs exactly once; a failing combo is recorded in the divergence report and fails the exit code
                stream_sha, state_sha, stream = _run_combo(
                    plan, backend.strip(), shards, args.until)
            except ShardError as exc:
                failures.append(f"{backend}/s{shards}: {exc}")
                lines.append(f"{backend}/s{shards}: ERROR {exc}")
                continue
            ok = (stream_sha == ref_stream_sha
                  and state_sha == ref_state_sha)
            verdict = "OK" if ok else "DIVERGED"
            print(f"{backend:>7}/s{shards}: stream {stream_sha[:16]} "
                  f"state {state_sha[:16]} {verdict}")
            lines.append(f"{backend}/s{shards}: stream={stream_sha} "
                         f"state={state_sha} {verdict}")
            if not ok:
                failures.append(f"{backend}/s{shards}")
                lines.append(_first_divergence(ref_stream, stream))
    if args.report and failures:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        print(f"divergence report written to {args.report}")
    if failures:
        print(f"FAIL: {len(failures)} combination(s) diverged: "
              f"{', '.join(failures)}")
        return 1
    print("PASS: all combinations bit-identical to the single-loop oracle")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
