"""Checksummed pipe frames for the supervised mp backend.

The bare ``mp`` backend trusts its pipes: whatever ``Connection.recv``
returns is applied verbatim.  The supervised backend assumes pipes can
*lie* -- a worker may be killed mid-write, wedge forever, or hand back
bytes that were damaged in flight -- so every message crossing a
supervised pipe travels as a **frame**: raw bytes

``b"RF1\\n" + sha256(body) + body``

where the body is the canonical JSON text of the message (sorted keys,
no whitespace) in UTF-8 and the 32-byte digest is sha256 over exactly
those bytes.  The receiver recomputes the digest before parsing; any
mismatch -- or any frame that is not shaped like a frame -- raises
:class:`~repro.errors.FrameCorruptError`, which the supervisor treats
exactly like a worker crash: respawn and replay from the last
committed barrier.

Frames are sent with ``send_bytes``/``recv_bytes`` rather than
``send``/``recv``: supervision sits on the latency path of every epoch
exchange, and skipping the pickle wrapper keeps the no-fault
supervision tax inside its <=5%% budget (``shard.supervised.10000``
vs ``shard.dispatch.10000.mp``).

Framing doubles as a protocol-level determinism check: the body bytes
of a frame are a pure function of the message, so a replayed command
produces a byte-identical frame.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict

from repro.errors import FrameCorruptError

__all__ = ["FRAME_MAGIC", "FRAME_VERSION", "corrupt_frame", "decode_frame",
           "encode_frame", "recv_frame", "send_frame"]

FRAME_VERSION = 1

#: Leads every frame; bumping :data:`FRAME_VERSION` changes it, so a
#: version skew between supervisor and worker reads as corruption.
FRAME_MAGIC = b"RF%d\n" % FRAME_VERSION

_DIGEST_SIZE = hashlib.sha256().digest_size
_HEADER_SIZE = len(FRAME_MAGIC) + _DIGEST_SIZE


def encode_frame(message: Dict[str, Any]) -> bytes:
    """Frame ``message`` (must be JSON data) as checksummed bytes."""
    body = json.dumps(message, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    return FRAME_MAGIC + hashlib.sha256(body).digest() + body


def decode_frame(frame: Any) -> Dict[str, Any]:
    """Validate a frame and return its message; raise on any damage."""
    if not isinstance(frame, (bytes, bytearray, memoryview)):
        raise FrameCorruptError(
            f"pipe frame is not bytes: {type(frame).__name__}")
    frame = bytes(frame)
    if len(frame) < _HEADER_SIZE or not frame.startswith(FRAME_MAGIC):
        raise FrameCorruptError("pipe frame has no recognizable framing")
    digest = frame[len(FRAME_MAGIC):_HEADER_SIZE]
    body = frame[_HEADER_SIZE:]
    actual = hashlib.sha256(body).digest()
    if actual != digest:
        raise FrameCorruptError(
            f"pipe frame checksum mismatch: header {digest.hex()[:16]}... "
            f"body {actual.hex()[:16]}...")
    try:
        message = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise FrameCorruptError(
            f"pipe frame body is not JSON despite a valid checksum: "
            f"{exc}") from exc
    if not isinstance(message, dict):
        raise FrameCorruptError(
            f"pipe frame body must decode to a dict, got "
            f"{type(message).__name__}")
    return message


def corrupt_frame(frame: bytes) -> bytes:
    """Deterministically damage a frame's body (checksum kept).

    Used by the ``corrupt`` host fault: the receiver's digest check
    must reject the result.  Flipping one bit of the last body byte
    keeps the frame well-shaped, so only the checksum layer can catch
    it.
    """
    damaged = bytearray(frame)
    damaged[-1] ^= 0x01
    return bytes(damaged)


def send_frame(conn: Any, message: Dict[str, Any]) -> None:
    """Encode and send one framed message over a Connection."""
    conn.send_bytes(encode_frame(message))


def recv_frame(conn: Any) -> Dict[str, Any]:
    """Receive and validate one framed message (blocking)."""
    return decode_frame(conn.recv_bytes())
