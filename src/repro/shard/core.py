"""One core of a sharded universe.

A :class:`ShardCore` is a complete, self-contained machine slice: its
own :class:`~repro.sim.engine.LoopCore` (clock, agenda, tid allocator),
its own :class:`~repro.core.tickets.Ledger`, a
:class:`~repro.schedulers.lottery_policy.LotteryPolicy` drawing from a
private Park-Miller stream (``plan.seed + 101 * core_id``), a
:class:`~repro.kernel.kernel.Kernel`, a replay recorder, and the
core's view of every plan channel.  Nothing is shared between cores --
not even allocation counters -- so a core's history is a pure function
of ``(plan, core_id, barrier payloads received)``, which is what makes
the single-loop, inline, and multiprocessing backends bit-identical.

Scripted plan operations run as ordinary local events on their source
core and emit ``spawn`` payloads:

* **migrate** -- restart semantics: the thread is killed on the source
  core (tickets reclaimed into the source ledger) and respawned from
  its recorded spec on the destination core at the next barrier, with
  a fresh tid from the destination's allocator.  CPU-time progress is
  intentionally lost; what is preserved is the plan-declared identity
  (body, args, name, ticket funding).
* **crash** -- the core kills every thread; restartable specs are
  re-emitted toward ``evacuate_to`` (possibly on another shard), the
  rest are casualties.  Replies racing toward callers that died this
  way are dropped deterministically on the caller's core.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.checkpoint.replay import ReplayRecorder
from repro.core.prng import ParkMillerPRNG
from repro.core.tickets import Ledger
from repro.errors import ShardError
from repro.kernel.kernel import Kernel
from repro.schedulers.lottery_policy import LotteryPolicy
from repro.shard.builders import build_body
from repro.shard.channels import ShardChannel
from repro.shard.plan import ShardPlan
from repro.shard.router import ShardRouter, race_seam
from repro.sim.engine import LoopCore

__all__ = ["ShardCore"]


class ShardCore:
    """A core's full private universe plus its barrier plumbing."""

    def __init__(self, core_id: int, plan: ShardPlan,
                 router: ShardRouter, obs: bool = False) -> None:
        self.core_id = core_id
        self.plan = plan
        self.router = router
        self.loop = LoopCore(core_id=core_id)
        self.ledger = Ledger()
        self.policy = LotteryPolicy(
            self.ledger, prng=ParkMillerPRNG(plan.core_seed(core_id)),
            use_tree=plan.use_tree)
        self.recorder = ReplayRecorder()
        self.kernel = Kernel(self.loop, self.policy, ledger=self.ledger,
                             quantum=plan.quantum, recorder=self.recorder)
        #: Per-core observability hub (None when obs is off).  The obs
        #: flag rides the constructor -- never the plan -- because plan
        #: checksums are part of the pinned canonical state, and
        #: observation must not change identity.  Instrumented before
        #: any thread exists, so probe counters are complete.
        self.obs = bool(obs)
        self.telemetry = None
        if self.obs:
            from repro.telemetry.probe import Telemetry

            self.telemetry = Telemetry()
            self.telemetry.instrument_kernel(self.kernel,
                                             track=f"core{core_id}")
        router.register(self)

        #: Per-source emission counter (stamped into payload ``seq`` by
        #: the router; third key of the canonical merge order).
        self.emit_seq = 0
        self._call_seq = 0
        self.payloads_applied = 0
        self.crashed = False
        self.migrations_out = 0
        self.evacuations = 0
        self.casualties = 0
        self.ops_skipped = 0

        #: name -> respawnable spec (restart-migration source of truth).
        self._specs: Dict[str, Dict[str, Any]] = {}
        self.channels: Dict[str, ShardChannel] = {}

        # Channels first (bodies resolve them at build time), then
        # threads in plan order, then scripted ops -- all core-local,
        # all deterministic in (plan, core_id).
        for spec in plan.channels:
            self.channels[spec["name"]] = ShardChannel(
                self, spec["name"], spec["home"])
        for spec in plan.threads_on(core_id):
            self.spawn_spec(spec)
        for op in plan.ops_on(core_id):
            handler = (self._op_migrate if op["op"] == "migrate"
                       else self._op_crash)
            self.loop.call_at(op["at"], handler, label=f"shard-{op['op']}",
                              args=(op,))

    # -- plan plumbing -------------------------------------------------------

    def channel(self, name: str) -> ShardChannel:
        """This core's view of a plan channel."""
        try:
            return self.channels[name]
        except KeyError:
            raise ShardError(f"unknown channel {name!r} on core "
                             f"{self.core_id}") from None

    def next_call_id(self) -> int:
        self._call_seq += 1
        return self._call_seq

    def spawn_spec(self, spec: Dict[str, Any]) -> Any:
        """Spawn a thread from its JSON spec and record it for restarts."""
        body = build_body(self, spec)
        thread = self.kernel.spawn(body, spec["name"],
                                   tickets=float(spec["tickets"]))
        self._specs[spec["name"]] = {
            "body": spec["body"],
            "args": dict(spec.get("args") or {}),
            "name": spec["name"],
            "tickets": float(spec["tickets"]),
        }
        return thread

    def _find_alive(self, name: str) -> Optional[Any]:
        for thread in self.kernel.threads:
            if thread.name == name and thread.alive:
                return thread
        return None

    # -- scripted operations ---------------------------------------------------

    def _op_migrate(self, op: Dict[str, Any]) -> None:
        with race_seam("shard.migrate"):
            thread = self._find_alive(op["thread"])
            spec = self._specs.pop(op["thread"], None)
            if thread is None or spec is None:
                # Already exited/evacuated: skipping is itself part of
                # the deterministic history.
                self.ops_skipped += 1
                return
            self.kernel.kill(thread)
            self.migrations_out += 1
            self.router.emit({
                "kind": "spawn",
                "target": op["dst"],
                "body": spec["body"],
                "args": spec["args"],
                "name": spec["name"],
                "tickets": spec["tickets"],
                "reason": "migrate",
            })

    def _op_crash(self, op: Dict[str, Any]) -> None:
        with race_seam("shard.crash"):
            self.crashed = True
            destination = op.get("evacuate_to")
            for thread in list(self.kernel.threads):
                if not thread.alive:
                    continue
                spec = self._specs.pop(thread.name, None)
                self.kernel.kill(thread)
                if destination is not None and spec is not None:
                    self.evacuations += 1
                    self.router.emit({
                        "kind": "spawn",
                        "target": destination,
                        "body": spec["body"],
                        "args": spec["args"],
                        "name": spec["name"],
                        "tickets": spec["tickets"],
                        "reason": "evacuate",
                    })
                else:
                    self.casualties += 1

    # -- epoch execution -------------------------------------------------------

    def run_epoch(self, horizon: float) -> int:
        """Run this core's events strictly before ``horizon``."""
        self.router.begin(self.core_id)
        try:
            return self.loop.run_before(horizon)
        finally:
            self.router.end()

    def run_inclusive(self, until: float) -> None:
        """Stop-point run: include events at exactly ``until`` and
        advance the clock there (see the barrier protocol in
        ``docs/SHARDING.md``)."""
        self.router.begin(self.core_id)
        try:
            self.loop.run(until=until)
        finally:
            self.router.end()

    def step_one(self) -> bool:
        """Fire one event under this core's execution context (the
        single-loop oracle's interleaving primitive)."""
        self.router.begin(self.core_id)
        try:
            return self.loop.step()
        finally:
            self.router.end()

    def apply_barrier(self, time: float, payloads: List[Dict[str, Any]]) -> None:
        """Advance to the barrier instant and schedule payload
        application *as events* at that instant.

        Scheduling (rather than calling) keeps event sequence numbers
        identical between straight runs and stop/resume runs: payload
        applications always sort after the core's own pre-existing
        events at the barrier time.
        """
        self.loop.advance_clock(time)
        for payload in payloads:
            self.loop.call_at(time, self._apply_payload,
                              label="shard-barrier", args=(payload,))

    def _apply_payload(self, payload: Dict[str, Any]) -> None:
        with race_seam("shard.barrier"):
            kind = payload["kind"]
            if kind == "call":
                self.channel(payload["channel"]).apply_call(payload)
            elif kind == "send":
                self.channel(payload["channel"]).apply_send(payload)
            elif kind == "reply":
                self.channel(payload["channel"]).apply_reply(payload)
            elif kind == "spawn":
                with race_seam("shard.migrate"):
                    self.spawn_spec(payload)
            else:
                raise ShardError(f"unknown barrier payload kind {kind!r}")
            self.payloads_applied += 1
            if self.telemetry is not None:
                self.telemetry.tracer.event(
                    f"core{self.core_id}", f"shard.rx.{kind}", "shard",
                    self.loop.now,
                    {"src": payload["src"], "seq": payload["seq"],
                     "target": self.core_id})

    # -- observation -----------------------------------------------------------

    def obs_emit(self, payload: Dict[str, Any]) -> None:
        """Trace a just-stamped outgoing payload (the tx half of the
        stitched flow edge; called by the router after ``src``/``seq``
        are assigned).  Observation-only by construction."""
        if self.telemetry is not None:
            self.telemetry.tracer.event(
                f"core{self.core_id}", f"shard.tx.{payload['kind']}",
                "shard", self.loop.now,
                {"src": payload["src"], "seq": payload["seq"],
                 "target": payload["target"]})

    def obs_frame(self, time: float) -> Dict[str, Any]:
        """Cumulative observability frame at a barrier instant.

        Plain JSON data only (it rides the worker pipes next to barrier
        payloads).  Cumulative -- a pure function of this core's
        history -- so supervisor replay and inline degradation
        reproduce it bit-exactly and re-observation is idempotent.
        """
        from repro.telemetry.aggregate import (
            FRAME_FORMAT,
            FRAME_VERSION,
            RING_ENTRIES,
            RING_SPANS,
        )

        threads = []
        for thread in self.kernel.threads:
            threads.append({
                "name": thread.name,
                "tid": thread.tid,
                "alive": bool(thread.alive),
                "state": thread.state.value,
                "runnable": thread.state.value == "runnable",
                "tickets": float(thread.nominal_funding()),
                "cpu_ms": float(thread.cpu_time),
                "dispatches": int(thread.dispatches),
            })
        metrics = (self.telemetry.registry.as_dict()
                   if self.telemetry is not None else {})
        spans = (self.telemetry.tracer.spans
                 if self.telemetry is not None else [])
        return {
            "format": FRAME_FORMAT,
            "version": FRAME_VERSION,
            "core": self.core_id,
            "time": float(time),
            "metrics": metrics,
            "threads": threads,
            "shard": {
                "payloads_applied": self.payloads_applied,
                "migrations_out": self.migrations_out,
                "evacuations": self.evacuations,
                "casualties": self.casualties,
                "ops_skipped": self.ops_skipped,
                "crashed": self.crashed,
            },
            "ring": {
                "entries": [dict(entry) for entry in
                            self.recorder.entries[-RING_ENTRIES:]],
                "spans": [span.to_dict()
                          for span in spans[-RING_SPANS:]],
            },
        }

    def obs_dump(self) -> Dict[str, Any]:
        """Full span dump for trace stitching (a pure read: the tracer
        is never finalized here, open spans ship with ``end=None``)."""
        if self.telemetry is None:
            return {"core": self.core_id, "spans": [], "open_spans": [],
                    "frame": self.obs_frame(self.loop.now)}
        tracer = self.telemetry.tracer
        return {
            "core": self.core_id,
            "spans": [span.to_dict() for span in tracer.spans],
            "open_spans": [span.to_dict() for span in tracer.open_spans()],
            "frame": self.obs_frame(self.loop.now),
        }

    def stream_entries(self) -> List[Dict[str, Any]]:
        """This core's replay entries, stamped with the core id (the
        second key of the canonical merge order)."""
        return [{**entry, "core": self.core_id}
                for entry in self.recorder.entries]

    def snapshot_state(self) -> dict:
        """Typed state tree for checkpointing (see ``repro.checkpoint``)."""
        return {
            "core": self.core_id,
            "engine": self.loop.snapshot_state(),
            "kernel": self.kernel.snapshot_state(),
            "ledger": self.ledger.snapshot_state(),
            "recorder": self.recorder.snapshot_state(),
            "channels": {name: channel.snapshot_state()
                         for name, channel in sorted(self.channels.items())},
            "shard": {
                "emit_seq": self.emit_seq,
                "call_seq": self._call_seq,
                "payloads_applied": self.payloads_applied,
                "crashed": self.crashed,
                "migrations_out": self.migrations_out,
                "evacuations": self.evacuations,
                "casualties": self.casualties,
                "ops_skipped": self.ops_skipped,
                "specs": sorted(self._specs),
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ShardCore {self.core_id} now={self.loop.now:.1f}ms "
                f"threads={len(self.kernel.threads)}>")
