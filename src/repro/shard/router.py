"""Cross-core payload routing and the barrier outbox.

One :class:`ShardRouter` exists per executing *process* (the main
process for the ``single``/``inline`` backends, each worker for the
``mp`` backend).  It knows which :class:`~repro.shard.core.ShardCore`
is currently executing (``begin``/``end`` bracket every event), owns
the outbox of emitted barrier payloads, and is the injection point the
deterministic zones consult: ``repro.kernel.ipc`` and
``repro.kernel.kernel`` each hold a ``_shard_router`` module global
(mirroring the race-sanitizer's ``_race_tracker``) that
:meth:`ShardRouter.install` assigns, so the kernel never imports
``repro.shard``.

Payload discipline: a payload is a JSON-serializable dict with at
least ``kind``, ``target`` (destination core), ``src`` (emitting
core), and ``seq`` (per-source emission counter).  The sharded engine
sorts the union of all outboxes by ``(target, src, seq)`` and
round-trips it through JSON before application -- the canonical merge
order that makes every backend produce bit-identical universes.
"""

from __future__ import annotations

import json
from contextlib import nullcontext
from typing import Any, Dict, List, Optional

from repro.errors import ShardError

__all__ = ["ShardRouter", "race_seam"]

#: Injection point for the determinism-race sanitizer (see
#: :mod:`repro.analysis.races`); assigned by ``tracker.activate()``
#: under ``REPRO_SANITIZE=1``.
_race_tracker = None


def race_seam(name: str):
    """Declared barrier-seam context for the shard layer's legal
    cross-owner effects (no-op when the sanitizer is inactive)."""
    if _race_tracker is not None and _race_tracker.active:
        return _race_tracker.seam(name)
    return nullcontext()


class ShardRouter:
    """Per-process execution context and outbox for barrier payloads."""

    def __init__(self) -> None:
        #: core_id -> ShardCore living in this process.
        self.cores: Dict[int, Any] = {}
        self._stack: List[int] = []
        self._outbox: List[Dict[str, Any]] = []
        # -- statistics (per-process; not part of the canonical state) --
        self.emitted = 0
        self.applied = 0

    # -- wiring ---------------------------------------------------------------

    def install(self) -> None:
        """Expose this router to the deterministic zones.

        Idempotent and last-writer-wins: every epoch re-installs, so
        two engines alternating in one process each see their own
        router while *their* events execute.
        """
        from repro.kernel import ipc as ipc_module
        from repro.kernel import kernel as kernel_module

        ipc_module._shard_router = self
        kernel_module._shard_router = self

    def uninstall(self) -> None:
        """Withdraw from the deterministic zones (if still installed)."""
        from repro.kernel import ipc as ipc_module
        from repro.kernel import kernel as kernel_module

        if ipc_module._shard_router is self:
            ipc_module._shard_router = None
        if kernel_module._shard_router is self:
            kernel_module._shard_router = None

    def register(self, core: Any) -> None:
        """Adopt a core built in this process."""
        self.cores[core.core_id] = core

    def owns_engine(self, engine: Any) -> bool:
        """True when ``engine`` is the loop of an adopted core (used by
        ``Kernel.run_until`` to refuse barrier-bypassing advances)."""
        return any(core.loop is engine for core in self.cores.values())

    # -- execution context ----------------------------------------------------

    def begin(self, core_id: int) -> None:
        self._stack.append(core_id)

    def end(self) -> None:
        self._stack.pop()

    @property
    def current(self) -> Optional[int]:
        """The core whose events are executing right now."""
        return self._stack[-1] if self._stack else None

    # -- payload emission ------------------------------------------------------

    def emit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Queue a barrier payload from the currently executing core.

        Stamps ``src`` and the per-source ``seq`` (the third key of the
        canonical merge order) and validates JSON-serializability up
        front, where the failure still names the emitting core.
        """
        src = self.current
        if src is None:
            raise ShardError(
                "cross-core payload emitted outside sharded execution: "
                f"{payload.get('kind')!r}")
        core = self.cores[src]
        core.emit_seq += 1
        payload["src"] = src
        payload["seq"] = core.emit_seq
        try:
            json.dumps(payload)
        except (TypeError, ValueError) as exc:
            raise ShardError(
                f"barrier payload from core {src} is not "
                f"JSON-serializable: {exc}") from exc
        self._outbox.append(payload)
        self.emitted += 1
        # tx half of the stitched cross-core flow edge (no-op unless
        # the core carries an observability hub).
        core.obs_emit(payload)
        return payload

    def drain(self) -> List[Dict[str, Any]]:
        """Hand the accumulated payloads to the barrier and reset."""
        out, self._outbox = self._outbox, []
        return out

    # -- hooks consulted by the deterministic zones ---------------------------

    def intercept_wake(self, thread: Any, value: Any) -> bool:
        """Divert a reply aimed at a remote caller into the outbox.

        Consulted by ``Request.reply`` (and defensively by
        ``Kernel.wake``) before touching ``thread.kernel``: a
        :class:`~repro.shard.channels.RemoteClient` stub stands in for
        a caller blocked on another core, and its wake must travel as a
        barrier payload instead.  Real threads are never diverted --
        an undeclared cross-core wake stays a sanitizer trap, not
        something the router silently legalizes.
        """
        if not getattr(thread, "shard_remote", False):
            return False
        self.emit({
            "kind": "reply",
            "target": thread.origin_core,
            "channel": thread.channel,
            "call_id": thread.call_id,
            "value": value,
        })
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ShardRouter cores={sorted(self.cores)} "
                f"current={self.current} outbox={len(self._outbox)}>")
