"""Ownership spec for the shard-safety analyzer (``shardmap.toml``).

The spec is the committed source of truth for *who owns what*: every
module-level global and every class in the deterministic zones is
declared either ``shard-local`` (lives entirely inside one future
engine shard) or ``barrier-shared`` (touched by more than one shard,
so any mutation must happen at a declared epoch-barrier seam).  The
analyzer (:mod:`repro.analysis.shardmap`) cross-checks the declarations
against the import/attribute graph it derives from the sources and
fails on anything undeclared (``SH005``), stale (``SH006``), or
misclassified (``SH007``).

File format is a small TOML subset so the spec stays hand-editable and
diff-reviewable::

    version = 1

    [meta]
    zones = ["sim", "kernel", "core", "schedulers", "distributed"]
    shard_roots = ["repro.kernel.kernel.Kernel", ...]
    seams_must_match_runtime = true

    [globals."repro.kernel.kernel._construction_hooks"]
    classification = "barrier-shared"
    reason = "process-wide sanitizer hook registry"

    [classes."repro.kernel.kernel.Kernel"]
    classification = "shard-local"
    reason = "one kernel per shard by construction"

    [[seams]]
    name = "ipc.reply"
    location = "repro.kernel.ipc"
    reason = "cross-kernel wake when a server answers a remote client"

    [[allow]]
    id = "SH004"
    location = "repro.distributed.cluster.Cluster.total_funding"
    reason = "cluster-wide measurement; runs only at epoch barriers"

Python >= 3.11 parses with :mod:`tomllib`; under 3.10 (still in the CI
matrix) a minimal fallback parser covering exactly the subset above is
used, so the analyzer needs no third-party dependency anywhere.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

__all__ = [
    "MARKER_RE",
    "SHARD_LOCAL",
    "BARRIER_SHARED",
    "UNKNOWN",
    "CLASSIFICATIONS",
    "AllowEntry",
    "SeamEntry",
    "ShardSpec",
    "SpecEntry",
    "SpecError",
    "default_spec_path",
    "load_spec",
    "parse_spec",
]

#: The ownership taxonomy.  ``UNKNOWN`` never appears in a committed
#: spec -- it is what the analyzer reports for undeclared locations.
SHARD_LOCAL = "shard-local"
BARRIER_SHARED = "barrier-shared"
UNKNOWN = "UNKNOWN"
CLASSIFICATIONS = (SHARD_LOCAL, BARRIER_SHARED)

#: Inline ownership marker, the in-source alternative to a spec entry:
#: ``# shard: shard-local -- constant rule table``.  The justification
#: after ``--`` is mandatory (same policy as lint noqa comments); a
#: marker without one is ignored by the analyzer and flagged by RPR011.
MARKER_RE = re.compile(
    r"#\s*shard:\s*(shard-local|barrier-shared)\s*(?:--\s*(\S.*))?")


class SpecError(Exception):
    """The shardmap spec is malformed or violates the schema."""


@dataclass(frozen=True)
class SpecEntry:
    """One declared location (module global, class, or attribute)."""

    location: str          # dotted path, e.g. repro.kernel.kernel.Kernel
    classification: str    # shard-local | barrier-shared
    reason: str


@dataclass(frozen=True)
class SeamEntry:
    """One declared barrier seam (a place cross-shard mutation is legal)."""

    name: str              # e.g. "ipc.reply"
    location: str          # dotted module or qualname hosting the seam
    reason: str


@dataclass(frozen=True)
class AllowEntry:
    """A justified waiver for one hazard finding at one location."""

    id: str                # e.g. "SH004"
    location: str          # dotted path the finding anchors to
    reason: str


@dataclass
class ShardSpec:
    """Parsed ``shardmap.toml``."""

    version: int = 1
    zones: List[str] = field(default_factory=list)
    shard_roots: List[str] = field(default_factory=list)
    seams_must_match_runtime: bool = False
    globals: Dict[str, SpecEntry] = field(default_factory=dict)
    classes: Dict[str, SpecEntry] = field(default_factory=dict)
    attrs: Dict[str, SpecEntry] = field(default_factory=dict)
    seams: List[SeamEntry] = field(default_factory=list)
    allows: List[AllowEntry] = field(default_factory=list)
    path: Optional[Path] = None

    def classification_of(self, location: str) -> Optional[str]:
        """Declared classification for a dotted location, if any."""
        for table in (self.attrs, self.classes, self.globals):
            entry = table.get(location)
            if entry is not None:
                return entry.classification
        return None

    def is_allowed(self, rule_id: str, location: str) -> bool:
        """True when an ``[[allow]]`` entry waives ``rule_id`` there."""
        return any(a.id == rule_id and a.location == location
                   for a in self.allows)

    def seam_names(self) -> List[str]:
        return [seam.name for seam in self.seams]


def default_spec_path() -> Path:
    """The committed spec that ships next to the analyzer."""
    return Path(__file__).resolve().parent / "shardmap.toml"


# -- TOML loading ------------------------------------------------------------


def _load_toml_text(text: str) -> dict:
    try:
        import tomllib  # Python >= 3.11
    except ImportError:  # pragma: no cover - exercised on the 3.10 CI leg
        return _parse_toml_subset(text)
    return tomllib.loads(text)


def _parse_toml_subset(text: str) -> dict:
    """Parse the TOML subset the spec uses (3.10 fallback, no deps).

    Supports: comments, ``[table]`` / ``[table."quoted.key"]`` headers,
    ``[[array-of-tables]]`` headers, and ``key = value`` where value is
    a double-quoted string, integer, boolean, or an array of those
    (single-line or wrapped across lines).  Everything else raises
    :class:`SpecError` rather than mis-parsing silently.
    """
    root: dict = {}
    current: dict = root
    raw_lines = text.splitlines()
    index = 0
    while index < len(raw_lines):
        lineno = index + 1
        line = raw_lines[index].strip()
        index += 1
        if not line or line.startswith("#"):
            continue
        # Join a multi-line array value until its brackets balance.
        while _open_brackets(line) > 0 and index < len(raw_lines):
            continuation = raw_lines[index].strip()
            index += 1
            if continuation.startswith("#"):
                continue
            line += " " + continuation
        if line.startswith("[[") and line.endswith("]]"):
            keys = _split_table_key(line[2:-2].strip(), lineno)
            parent = _descend(root, keys[:-1], lineno)
            array = parent.setdefault(keys[-1], [])
            if not isinstance(array, list):
                raise SpecError(f"line {lineno}: {keys[-1]!r} is not an array")
            current = {}
            array.append(current)
        elif line.startswith("[") and line.endswith("]"):
            keys = _split_table_key(line[1:-1].strip(), lineno)
            current = _descend(root, keys, lineno)
        else:
            if "=" not in line:
                raise SpecError(f"line {lineno}: expected 'key = value'")
            key, _, value = line.partition("=")
            current[_unquote(key.strip(), lineno)] = \
                _parse_value(value.strip(), lineno)
    return root


def _open_brackets(line: str) -> int:
    """Unclosed ``[`` count outside strings (0 for balanced lines)."""
    depth = 0
    in_string = False
    for char in line:
        if char == '"':
            in_string = not in_string
        elif not in_string:
            if char == "[":
                depth += 1
            elif char == "]":
                depth -= 1
    return depth


def _split_table_key(header: str, lineno: int) -> List[str]:
    """Split ``globals."repro.kernel.kernel._hooks"`` into its parts."""
    keys: List[str] = []
    i = 0
    buf = ""
    while i < len(header):
        char = header[i]
        if char == '"':
            end = header.find('"', i + 1)
            if end < 0:
                raise SpecError(f"line {lineno}: unterminated quoted key")
            buf += header[i + 1:end]
            i = end + 1
        elif char == ".":
            keys.append(buf)
            buf = ""
            i += 1
        else:
            buf += char
            i += 1
    keys.append(buf)
    if any(not key for key in keys):
        raise SpecError(f"line {lineno}: empty key component in table header")
    return keys


def _descend(root: dict, keys: List[str], lineno: int) -> dict:
    node = root
    for key in keys:
        node = node.setdefault(key, {})
        if not isinstance(node, dict):
            raise SpecError(f"line {lineno}: {key!r} is not a table")
    return node


def _unquote(token: str, lineno: int) -> str:
    if token.startswith('"'):
        if not token.endswith('"') or len(token) < 2:
            raise SpecError(f"line {lineno}: unterminated string")
        return token[1:-1]
    return token


def _parse_value(token: str, lineno: int):
    if token.startswith('"'):
        if not token.endswith('"') or len(token) < 2:
            raise SpecError(f"line {lineno}: unterminated string")
        return token[1:-1]
    if token.startswith("[") and token.endswith("]"):
        inner = token[1:-1].strip()
        if not inner:
            return []
        return [_parse_value(part.strip(), lineno)
                for part in _split_array(inner, lineno)
                if part.strip()]  # tolerate a trailing comma
    if token == "true":
        return True
    if token == "false":
        return False
    try:
        return int(token)
    except ValueError:
        raise SpecError(f"line {lineno}: unsupported value {token!r}") from None


def _split_array(inner: str, lineno: int) -> List[str]:
    parts: List[str] = []
    buf = ""
    in_string = False
    for char in inner:
        if char == '"':
            in_string = not in_string
            buf += char
        elif char == "," and not in_string:
            parts.append(buf)
            buf = ""
        else:
            buf += char
    if in_string:
        raise SpecError(f"line {lineno}: unterminated string in array")
    parts.append(buf)
    return parts


# -- schema validation -------------------------------------------------------


def _entry_table(data: dict, table: str) -> Dict[str, SpecEntry]:
    entries: Dict[str, SpecEntry] = {}
    for location, body in data.get(table, {}).items():
        if not isinstance(body, dict):
            raise SpecError(f"[{table}.{location!r}] must be a table")
        classification = body.get("classification")
        reason = body.get("reason", "")
        if classification not in CLASSIFICATIONS:
            raise SpecError(
                f"[{table}.{location!r}]: classification must be one of "
                f"{CLASSIFICATIONS}, got {classification!r}")
        if not isinstance(reason, str) or not reason.strip():
            raise SpecError(
                f"[{table}.{location!r}]: a non-empty reason is required")
        entries[location] = SpecEntry(location, classification, reason)
    return entries


def parse_spec(text: str, path: Optional[Path] = None) -> ShardSpec:
    """Parse and schema-check spec text."""
    try:
        data = _load_toml_text(text)
    except SpecError:
        raise
    except Exception as exc:  # tomllib.TOMLDecodeError and friends
        raise SpecError(f"invalid TOML in {path or '<spec>'}: {exc}") from exc

    version = data.get("version")
    if version != 1:
        raise SpecError(f"unsupported spec version {version!r} (expected 1)")
    meta = data.get("meta", {})
    if not isinstance(meta, dict):
        raise SpecError("[meta] must be a table")

    spec = ShardSpec(
        version=1,
        zones=list(meta.get("zones", [])),
        shard_roots=list(meta.get("shard_roots", [])),
        seams_must_match_runtime=bool(
            meta.get("seams_must_match_runtime", False)),
        globals=_entry_table(data, "globals"),
        classes=_entry_table(data, "classes"),
        attrs=_entry_table(data, "attrs"),
        path=path,
    )
    for body in data.get("seams", []):
        name, location = body.get("name"), body.get("location")
        reason = body.get("reason", "")
        if not name or not location or not str(reason).strip():
            raise SpecError(
                "[[seams]] entries need name, location, and reason")
        spec.seams.append(SeamEntry(str(name), str(location), str(reason)))
    for body in data.get("allow", []):
        rule_id, location = body.get("id"), body.get("location")
        reason = body.get("reason", "")
        if not rule_id or not location or not str(reason).strip():
            raise SpecError("[[allow]] entries need id, location, and reason")
        spec.allows.append(AllowEntry(str(rule_id), str(location),
                                      str(reason)))
    seen_seams = set()
    for seam in spec.seams:
        if seam.name in seen_seams:
            raise SpecError(f"duplicate seam name {seam.name!r}")
        seen_seams.add(seam.name)
    return spec


def load_spec(path: Optional[Path] = None) -> ShardSpec:
    """Load and validate the spec at ``path`` (default: committed spec)."""
    spec_path = Path(path) if path is not None else default_spec_path()
    try:
        text = spec_path.read_text(encoding="utf-8")
    except OSError as exc:
        raise SpecError(f"cannot read shardmap spec {spec_path}: {exc}") \
            from exc
    return parse_spec(text, path=spec_path)
