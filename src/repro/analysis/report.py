"""Shared report formats for the static-analysis tools.

Both analyzers (:mod:`repro.analysis.lint` and
:mod:`repro.analysis.shardmap`) emit findings with the same shape --
``path``, ``line``, ``col``, ``rule_id``, ``message`` -- so the output
layer lives here once:

* ``json``  -- a stable machine-readable envelope for scripting.
* ``sarif`` -- SARIF 2.1.0, the interchange format code-scanning UIs
  ingest (the CI ``shard-safety`` job uploads it as an artifact).
* baselines -- a committed set of finding fingerprints; with
  ``--baseline`` the CLIs report (and fail on) only findings *not* in
  the baseline, so a tool can be adopted on a codebase with existing
  debt without letting new debt in.

Fingerprints hash ``path|rule_id|message`` rather than line numbers, so
unrelated edits that shift a finding up or down do not churn baselines.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

__all__ = [
    "fingerprint",
    "render_json",
    "render_sarif",
    "load_baseline",
    "write_baseline",
    "filter_new",
]

#: SARIF schema pinned so consumers can validate.
_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                 "master/Schemata/sarif-schema-2.1.0.json")


def fingerprint(finding) -> str:
    """Stable identity of a finding across unrelated line shifts."""
    payload = f"{finding.path}|{finding.rule_id}|{finding.message}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _finding_dict(finding) -> dict:
    entry = {
        "path": finding.path,
        "line": finding.line,
        "col": getattr(finding, "col", 0),
        "rule_id": finding.rule_id,
        "message": finding.message,
        "fingerprint": fingerprint(finding),
    }
    location = getattr(finding, "location", None)
    if location:
        entry["location"] = location
    return entry


def render_json(findings: Sequence, tool: str) -> str:
    """Findings as a JSON document (one envelope, stable key order)."""
    document = {
        "tool": tool,
        "finding_count": len(findings),
        "findings": [_finding_dict(f) for f in findings],
    }
    return json.dumps(document, indent=2, sort_keys=False) + "\n"


def render_sarif(findings: Sequence, tool: str,
                 rule_meta: Optional[Dict[str, Tuple[str, str]]] = None) \
        -> str:
    """Findings as a SARIF 2.1.0 log.

    ``rule_meta`` maps rule id -> ``(slug, summary)`` and populates the
    driver's rule table; rules referenced by findings but absent from
    the table are still valid SARIF (the ``ruleId`` stands alone).
    """
    rules = []
    for rule_id in sorted(rule_meta or {}):
        slug, summary = (rule_meta or {})[rule_id]
        rules.append({
            "id": rule_id,
            "name": slug,
            "shortDescription": {"text": summary},
        })
    results = []
    for finding in findings:
        results.append({
            "ruleId": finding.rule_id,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": getattr(finding, "col", 0) + 1,
                    },
                },
            }],
            "partialFingerprints": {"reproAnalysis/v1": fingerprint(finding)},
        })
    log = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": tool,
                "rules": rules,
            }},
            "results": results,
        }],
    }
    return json.dumps(log, indent=2) + "\n"


# -- baselines ---------------------------------------------------------------


def write_baseline(findings: Sequence, path: Union[str, Path],
                   tool: str) -> int:
    """Write the fingerprints of ``findings`` as a baseline file."""
    prints = sorted({fingerprint(f) for f in findings})
    document = {"tool": tool, "fingerprints": prints}
    Path(path).write_text(json.dumps(document, indent=2) + "\n",
                          encoding="utf-8")
    return len(prints)


def load_baseline(path: Union[str, Path]) -> frozenset:
    """Read a baseline file back as a fingerprint set."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    prints = document.get("fingerprints", [])
    if not isinstance(prints, list):
        raise ValueError(f"malformed baseline {path}: 'fingerprints' "
                         f"must be a list")
    return frozenset(str(p) for p in prints)


def filter_new(findings: Iterable, baseline: frozenset) -> List:
    """Findings whose fingerprint is not in the baseline."""
    return [f for f in findings if fingerprint(f) not in baseline]
