"""Runtime determinism-race sanitizer (the dynamic half of shardmap).

The static analyzer (:mod:`repro.analysis.shardmap`) proves where
cross-shard mutation *could* happen; this module traps where it
*actually* happens.  Under ``REPRO_SANITIZE=1`` every
:class:`~repro.kernel.thread.Thread` is tagged with an **owner token**
(its kernel) at attach time, the kernel dispatch loop pushes its owner
token for the duration of each scheduling quantum, and every lifecycle
mutation of a thread checks that the mutating context matches the
owner.  A mismatch outside a **declared barrier seam** raises
:class:`~repro.errors.DeterminismRaceError` at the exact mutation
site -- the dynamic analogue of a data-race report.

Barrier seams are the places cross-owner mutation is *by design*
(today they synchronize through the shared engine; after the shard
refactor they become epoch-barrier operations):

* ``ipc.reply`` -- a server completing an RPC wakes the blocked client,
  which may live on another kernel;
* ``ipc.deliver`` -- message delivery wakes a receiver that may have
  been re-placed on another kernel while blocked;
* ``cluster.migrate`` / ``cluster.evacuate`` -- the rebalancer moves a
  thread between nodes (the thread is re-tagged to its new owner);
* ``cluster.crash`` -- node failure kills or re-places every thread of
  the dead node.

The seam list is cross-checked against the committed spec's
``[[seams]]`` table by the static analyzer (``SH008``), so neither
side can drift without failing CI.

The tracker is deliberately injection-based: activating it assigns the
singleton into ``_race_tracker`` module globals inside the kernel,
thread, IPC, and cluster modules, so the deterministic zones never
import :mod:`repro.analysis` (no import cycles, and the inactive
per-dispatch cost is one ``is None`` test).
"""

from __future__ import annotations

import weakref
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from repro.errors import DeterminismRaceError

__all__ = ["DECLARED_SEAMS", "OwnerToken", "RaceTracker", "tracker"]

#: Every legal cross-owner mutation seam.  Must match the committed
#: spec's ``[[seams]]`` table (checked statically via SH008) and the
#: ``_race_seam(...)`` call sites in the kernel/distributed zones.
DECLARED_SEAMS = frozenset({
    "ipc.reply",
    "ipc.deliver",
    "cluster.migrate",
    "cluster.evacuate",
    "cluster.crash",
    # Sharded multicore engine (repro.shard): barrier payload
    # application on the target core, and the restart-migration /
    # crash-evacuation operations that kill on one core and respawn
    # on another via ``spawn`` payloads.
    "shard.barrier",
    "shard.migrate",
    "shard.crash",
})


class OwnerToken:
    """Identity of one owning execution context (one kernel)."""

    __slots__ = ("label",)

    def __init__(self, label: str) -> None:
        self.label = label

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<owner {self.label}>"


class RaceTracker:
    """Owner-token bookkeeping and the cross-owner mutation trap.

    One process-wide instance (:data:`tracker`) exists; it is inert
    until :meth:`activate` (normally via
    :func:`repro.analysis.sanitizer.install_autosanitize`).
    """

    def __init__(self) -> None:
        self.active = False
        #: Owner contexts currently executing (innermost last).
        self._stack: List[OwnerToken] = []
        #: Nesting depth of declared barrier seams.
        self._seam_depth = 0
        #: id(object) -> owner token.  Keyed by id because kernel
        #: objects use ``__slots__`` without ``__weakref__``; safe
        #: because every Thread is (re)tagged at construction, so a
        #: recycled id is overwritten before it can be checked.
        self._owners: Dict[int, OwnerToken] = {}
        #: kernel -> token (weak: a tracker must not keep kernels alive).
        self._tokens: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        self._token_seq = 0
        # -- accounting ----------------------------------------------------
        self.checks = 0
        self.violations = 0

    # -- lifecycle ---------------------------------------------------------

    def activate(self) -> None:
        """Arm the tracker and inject it into the deterministic zones."""
        from repro.distributed import cluster as cluster_module
        from repro.kernel import ipc as ipc_module
        from repro.kernel import kernel as kernel_module
        from repro.kernel import thread as thread_module
        from repro.shard import router as shard_router_module

        for module in (kernel_module, thread_module, ipc_module,
                       cluster_module, shard_router_module):
            module._race_tracker = self
        self.active = True

    def deactivate(self) -> None:
        """Disarm and drop all tokens/contexts."""
        self.active = False
        self.reset()

    def reset(self) -> None:
        self._stack.clear()
        self._seam_depth = 0
        self._owners.clear()
        self._tokens = weakref.WeakKeyDictionary()

    # -- tokens ------------------------------------------------------------

    def token_for(self, kernel: object) -> OwnerToken:
        token = self._tokens.get(kernel)
        if token is None:
            self._token_seq += 1
            token = OwnerToken(f"kernel#{self._token_seq}")
            self._tokens[kernel] = token
        return token

    def tag(self, obj: object, kernel: object) -> None:
        """Record ``kernel`` as the owner of ``obj`` (attach time)."""
        self._owners[id(obj)] = self.token_for(kernel)

    def retag(self, obj: object, kernel: object) -> None:
        """Transfer ownership (migration/evacuation seams)."""
        self._owners[id(obj)] = self.token_for(kernel)

    def owner_of(self, obj: object) -> Optional[OwnerToken]:
        return self._owners.get(id(obj))

    # -- contexts and seams ------------------------------------------------

    def push(self, kernel: object) -> None:
        """Enter ``kernel``'s execution context (dispatch loop entry)."""
        self._stack.append(self.token_for(kernel))

    def pop(self) -> None:
        self._stack.pop()

    @contextmanager
    def context(self, kernel: object) -> Iterator[None]:
        self.push(kernel)
        try:
            yield
        finally:
            self.pop()

    @contextmanager
    def seam(self, name: str) -> Iterator[None]:
        """Enter a declared barrier seam; undeclared names are an error."""
        if name not in DECLARED_SEAMS:
            raise DeterminismRaceError(
                f"undeclared barrier seam {name!r}; declare it in "
                f"repro.analysis.races.DECLARED_SEAMS and in the "
                f"[[seams]] table of shardmap.toml")
        self._seam_depth += 1
        try:
            yield
        finally:
            self._seam_depth -= 1

    # -- the trap ----------------------------------------------------------

    def check(self, obj: object, action: str = "mutate") -> None:
        """Trap a cross-owner mutation of ``obj`` outside any seam.

        No-op when the tracker is inactive, when no owner context is
        executing (external/test code driving the system directly is
        not a shard), when inside a declared seam, or when ``obj`` was
        never tagged (constructed before activation).
        """
        if not self.active or not self._stack or self._seam_depth:
            return
        owner = self._owners.get(id(obj))
        if owner is None:
            return
        self.checks += 1
        current = self._stack[-1]
        if owner is not current:
            self.violations += 1
            raise DeterminismRaceError(
                f"cross-owner {action} of {obj!r}: owned by {owner.label} "
                f"but mutated from {current.label}'s context outside a "
                f"declared barrier seam; after the shard refactor this "
                f"ordering is not deterministic")


#: The process-wide tracker instance.
tracker = RaceTracker()
