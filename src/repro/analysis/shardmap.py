"""Whole-program shard-safety analysis (``repro.analysis.shardmap``).

The per-file lint (:mod:`repro.analysis.lint`) checks syntactic
determinism hazards; this module answers the *cross-module* question
that gates the multicore shard refactor: for every piece of mutable
state in the deterministic zones (``sim``, ``kernel``, ``core``,
``schedulers``, ``distributed``), who owns it, and is the declared
ownership consistent with how the code actually uses it?

The analysis proceeds in three layers:

1. **Program model.**  Parse every zone module once and build the
   import graph, the class inventory (with ``__slots__`` /
   ``self.x = ...`` attribute sets, cross-checked against the
   checkpoint ``SNAPSHOT_COVERAGE`` registry), the module-global
   inventory, and the *holder graph*: which class stores instances of
   which other class (``self.x = ClassName(...)`` and annotated
   ``__init__`` parameters).

2. **Ownership classification.**  Every mutable location (module
   global or class) is classified ``shard-local`` / ``barrier-shared``
   from the committed spec (``shardmap.toml``), from an inline
   ``# shard: <classification> -- reason`` marker, or -- for
   module-level containers that are provably never mutated after
   import -- auto-classified as a constant.  Anything left is
   ``UNKNOWN`` and reported (``SH005``).  Stale spec entries
   (``SH006``) and misclassifications (``SH007``: a runtime-mutated
   global declared shard-local, or a class reachable from more than
   one shard root declared shard-local) fail the build.

3. **Hazard patterns.**  Flow-insensitive per-function checks for the
   shapes that silently break bit-exactness once the engine shards:
   escaped aliases of per-shard state into module globals (``SH001``),
   runtime mutation of shared module registries (``SH002``), global
   counters that would collide across shards (``SH003``), and
   order-sensitive float accumulation over cross-shard collections
   (``SH004``).  Hazards can only be waived by a justified
   ``[[allow]]`` entry in the spec.

Shard-root reachability: the spec's ``meta.shard_roots`` name the
classes that *define* a shard (by default ``Engine``, ``Kernel``,
``Cluster``, with ``ClusterNode`` collapsing into ``Cluster``).  A
class is *multi-root* when holder-graph traversal starting from two
different roots reaches it, where traversal never expands *through*
another root (a cluster holding per-shard kernels is the containment
relation itself, not sharing).  Multi-root classes must be declared
``barrier-shared``.

Entry point: ``python -m repro.analysis shardmap`` (text, ``--format
json|sarif``, ``--write-doc docs/SHARDMAP.md``, ``--emit-spec`` to
bootstrap the TOML).  The committed spec plus this analyzer are the
acceptance gate for the PR-7 multicore refactor: the refactor may not
land while the analyzer reports a single ``UNKNOWN`` or unwaived
hazard.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.shardspec import (
    BARRIER_SHARED,
    MARKER_RE,
    SHARD_LOCAL,
    UNKNOWN,
    ShardSpec,
    load_spec,
)
from repro.analysis.lint import module_of, zone_of

__all__ = [
    "SHARD_RULES",
    "ShardFinding",
    "ShardLocation",
    "ShardMap",
    "analyze_tree",
    "render_doc",
    "render_spec_skeleton",
    "render_text",
]

#: Zones analyzed when the spec does not narrow them.
DEFAULT_ZONES = ("sim", "kernel", "core", "schedulers", "distributed")

#: Default shard roots (overridable via spec ``meta.shard_roots``).
DEFAULT_SHARD_ROOTS = (
    "repro.sim.engine.Engine",
    "repro.kernel.kernel.Kernel",
    "repro.distributed.cluster.Cluster",
    "repro.distributed.cluster.ClusterNode",
)

#: Roots that collapse into another root for multi-root counting: a
#: ClusterNode is the per-node face of its Cluster, not a second shard.
ROOT_COLLAPSE = {
    "repro.distributed.cluster.ClusterNode": "repro.distributed.cluster.Cluster",
}

SHARD_RULES: Dict[str, Tuple[str, str]] = {
    "SH001": ("escaped-alias",
              "a per-shard object (parameter or self-reachable state) is "
              "aliased into a module-level global at runtime"),
    "SH002": ("shared-registry-mutation",
              "a module-level container is mutated from runtime code "
              "without being declared barrier-shared"),
    "SH003": ("global-counter",
              "a module-level counter is incremented at runtime; shards "
              "would allocate colliding values"),
    "SH004": ("float-order",
              "order-sensitive float accumulation over a cross-shard "
              "collection; per-shard partial sums would diverge"),
    "SH005": ("unknown-location",
              "a mutable location has no ownership classification "
              "(spec entry, inline marker, or constant auto-class)"),
    "SH006": ("stale-spec-entry",
              "a spec entry names a location that no longer exists"),
    "SH007": ("misclassified",
              "the declared classification contradicts the derived "
              "ownership (mutated global or multi-root class declared "
              "shard-local)"),
    "SH008": ("seam-mismatch",
              "the spec's barrier seams disagree with the runtime "
              "sanitizer's declared seams"),
}

#: Attribute/name stems that identify a *cross-shard* collection when
#: they appear as the iteration source of an accumulation.  ``threads``
#: is deliberately absent: iterating one kernel's threads is the
#: per-shard case the refactor keeps.
CROSS_SHARD_STEMS = frozenset(
    {"nodes", "alive_nodes", "kernels", "cluster", "clusters", "shards"})

#: Stems that mark the accumulated quantity as real-valued.
FLOAT_VALUE_STEMS = (
    "funding", "value", "amount", "cpu", "time", "usage", "credit")

_CONTAINER_CALLS = frozenset(
    {"dict", "list", "set", "defaultdict", "OrderedDict", "deque",
     "Counter", "bytearray"})

_CONTAINER_NODES = (ast.Dict, ast.List, ast.Set, ast.DictComp,
                    ast.ListComp, ast.SetComp)

_MUTATING_METHODS = frozenset(
    {"append", "add", "update", "setdefault", "pop", "popitem", "remove",
     "discard", "extend", "insert", "clear", "appendleft"})


@dataclass(frozen=True)
class ShardFinding:
    """One shard-safety finding (same shape as a lint ``Finding``)."""

    path: str
    line: int
    col: int
    rule_id: str
    location: str
    message: str

    def format(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule_id} [{self.location}] {self.message}")


@dataclass
class ShardLocation:
    """One classified mutable location in the deterministic zones."""

    kind: str            # "global" | "class"
    location: str        # dotted path
    path: str
    line: int
    zone: str
    classification: str  # shard-local | barrier-shared | UNKNOWN
    origin: str          # "spec" | "marker" | "constant" | "unclassified"
    reason: str = ""
    mutated: bool = False       # globals: rebound/mutated at runtime
    multi_root: bool = False    # classes: reachable from >= 2 roots
    holders: Tuple[str, ...] = ()
    attrs: Tuple[str, ...] = ()
    snapshot_covered: Optional[bool] = None


@dataclass
class ShardMap:
    """Analysis result: the classified map plus any findings."""

    locations: List[ShardLocation]
    findings: List[ShardFinding]
    zones: Tuple[str, ...]
    modules: int

    @property
    def unknown(self) -> List[ShardLocation]:
        return [loc for loc in self.locations
                if loc.classification == UNKNOWN]

    def counts(self) -> Dict[str, int]:
        counts = {SHARD_LOCAL: 0, BARRIER_SHARED: 0, UNKNOWN: 0}
        for loc in self.locations:
            counts[loc.classification] = counts.get(loc.classification, 0) + 1
        return counts


# -- program model -----------------------------------------------------------


@dataclass
class _GlobalInfo:
    name: str
    line: int
    col: int
    container: bool
    marker: Optional[Tuple[str, str]]  # (classification, reason)
    rebound: bool = False              # ``global X; X = ...`` somewhere
    mutated: bool = False              # container mutated at runtime


@dataclass
class _ClassInfo:
    name: str
    module: str
    line: int
    col: int
    attrs: Tuple[str, ...]
    methods: Set[str]
    holds: Set[str] = field(default_factory=set)  # dotted classes held

    @property
    def dotted(self) -> str:
        return f"{self.module}.{self.name}"


@dataclass
class _ModuleInfo:
    module: str
    zone: str
    path: Path
    tree: ast.Module
    lines: List[str]
    globals: Dict[str, _GlobalInfo] = field(default_factory=dict)
    classes: Dict[str, _ClassInfo] = field(default_factory=dict)
    functions: Set[str] = field(default_factory=set)
    bindings: Dict[str, str] = field(default_factory=dict)  # name -> dotted


def _module_name(path: Path) -> Optional[str]:
    dotted = module_of(path)
    if dotted is None:
        return None
    if dotted.endswith(".__init__"):
        dotted = dotted[: -len(".__init__")]
    return dotted


def _marker_for_line(lines: Sequence[str], lineno: int) \
        -> Optional[Tuple[str, str]]:
    """A valid inline ownership marker on a physical line, if any."""
    if not 1 <= lineno <= len(lines):
        return None
    match = MARKER_RE.search(lines[lineno - 1])
    if match is None or not match.group(2):
        return None
    return match.group(1), match.group(2).strip()


def _is_container_expr(node: ast.AST) -> bool:
    if isinstance(node, _CONTAINER_NODES):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        return name in _CONTAINER_CALLS
    return False


def _collect_module(path: Path, module: str, zone: str) \
        -> Optional[_ModuleInfo]:
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError):
        return None
    info = _ModuleInfo(module=module, zone=zone, path=path, tree=tree,
                       lines=source.splitlines())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                local = alias.asname or alias.name
                info.bindings[local] = f"{node.module}.{alias.name}"
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if target.id.startswith("__") and target.id.endswith("__"):
                continue  # __all__ and friends are interface, not state
            info.globals[target.id] = _GlobalInfo(
                name=target.id, line=node.lineno, col=node.col_offset,
                container=_is_container_expr(value),
                marker=_marker_for_line(info.lines, node.lineno))
        if isinstance(node, ast.FunctionDef):
            info.functions.add(node.name)
        if isinstance(node, ast.ClassDef):
            info.classes[node.name] = _class_info(node, module)
            info.bindings[node.name] = f"{module}.{node.name}"
    return info


def _class_info(node: ast.ClassDef, module: str) -> _ClassInfo:
    attrs: List[str] = []
    methods: Set[str] = set()
    slots = None
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    slots = stmt.value
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods.add(stmt.name)
    if slots is not None and isinstance(slots, (ast.Tuple, ast.List)):
        for element in slots.elts:
            if isinstance(element, ast.Constant) \
                    and isinstance(element.value, str):
                attrs.append(element.value)
    else:
        for stmt in node.body:
            if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__":
                for sub in ast.walk(stmt):
                    target = None
                    if isinstance(sub, ast.Assign):
                        for tgt in sub.targets:
                            target = tgt
                    elif isinstance(sub, ast.AnnAssign):
                        target = sub.target
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                            and target.attr not in attrs):
                        attrs.append(target.attr)
    return _ClassInfo(name=node.name, module=module, line=node.lineno,
                      col=node.col_offset, attrs=tuple(attrs),
                      methods=methods)


def _annotation_names(annotation: ast.AST) -> List[str]:
    """Class names referenced by a parameter annotation (incl. strings)."""
    names: List[str] = []
    for sub in ast.walk(annotation):
        if isinstance(sub, ast.Name):
            names.append(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.append(sub.attr)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            # "Thread" / "Optional[Thread]" forward references
            names.extend(re.findall(r"[A-Za-z_][A-Za-z0-9_]*", sub.value))
    return names


def _resolve_class(name: str, info: _ModuleInfo,
                   class_index: Dict[str, _ClassInfo]) -> Optional[str]:
    dotted = info.bindings.get(name)
    if dotted is not None and dotted in class_index:
        return dotted
    local = f"{info.module}.{name}"
    if local in class_index:
        return local
    return None


def _collect_holder_edges(info: _ModuleInfo,
                          class_index: Dict[str, _ClassInfo]) -> None:
    """Populate ``holds`` edges for every class in the module."""
    for node in info.tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        cls = info.classes[node.name]
        for stmt in node.body:
            if not isinstance(stmt, ast.FunctionDef):
                continue
            if stmt.name == "__init__":
                for arg in list(stmt.args.args) + list(stmt.args.kwonlyargs):
                    if arg.annotation is None:
                        continue
                    for ref in _annotation_names(arg.annotation):
                        dotted = _resolve_class(ref, info, class_index)
                        if dotted is not None:
                            cls.holds.add(dotted)
            for sub in ast.walk(stmt):
                target = None
                value: Optional[ast.expr] = None
                if isinstance(sub, ast.Assign):
                    value = sub.value
                    for tgt in sub.targets:
                        target = tgt
                elif isinstance(sub, ast.AnnAssign):
                    target, value = sub.target, sub.value
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    continue
                if isinstance(value, ast.Call) \
                        and isinstance(value.func, ast.Name):
                    dotted = _resolve_class(value.func.id, info, class_index)
                    if dotted is not None:
                        cls.holds.add(dotted)


# -- hazard detection --------------------------------------------------------


class _FunctionHazards(ast.NodeVisitor):
    """Per-function hazard scan (SH001/SH002/SH003/SH004)."""

    def __init__(self, info: _ModuleInfo, func: ast.FunctionDef,
                 owner: Optional[str], findings: List[ShardFinding]) -> None:
        self.info = info
        self.func = func
        #: Dotted anchor: module.func or module.Class.method.
        self.anchor = (f"{info.module}.{owner}.{func.name}" if owner
                       else f"{info.module}.{func.name}")
        self.findings = findings
        self.global_names: Set[str] = set()
        self.params = {arg.arg for arg in
                       list(func.args.args) + list(func.args.kwonlyargs)
                       + list(func.args.posonlyargs)}
        if func.args.vararg:
            self.params.add(func.args.vararg.arg)
        if func.args.kwarg:
            self.params.add(func.args.kwarg.arg)
        #: Locals holding cross-shard collections (taint set).
        self.tainted: Set[str] = set()

    # -- helpers ----------------------------------------------------------

    def _report(self, rule_id: str, node: ast.AST, location: str,
                message: str) -> None:
        self.findings.append(ShardFinding(
            path=str(self.info.path), line=node.lineno,
            col=node.col_offset + 1, rule_id=rule_id, location=location,
            message=message))

    def _global_anchor(self, name: str) -> str:
        return f"{self.info.module}.{name}"

    def _mark_global(self, name: str, *, rebound: bool = False,
                     mutated: bool = False) -> None:
        glob = self.info.globals.get(name)
        if glob is None:
            return
        glob.rebound = glob.rebound or rebound
        glob.mutated = glob.mutated or mutated

    def _is_alias_expr(self, node: ast.AST) -> bool:
        """Does this expression alias a parameter or self-owned state?"""
        while isinstance(node, ast.Attribute):
            node = node.value
        return isinstance(node, ast.Name) and (
            node.id in self.params or node.id == "self")

    def _stem(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Call):
            return self._stem(node.func)
        return None

    def _is_cross_shard_iterable(self, node: ast.AST) -> bool:
        stem = self._stem(node)
        if stem in CROSS_SHARD_STEMS:
            return True
        if isinstance(node, ast.Name) and node.id in self.tainted:
            return True
        if isinstance(node, ast.Call):
            # list(live) / sorted(self.nodes): wrappers preserve origin.
            return any(self._is_cross_shard_iterable(arg)
                       for arg in node.args)
        return False

    def _mentions_float_stem(self, node: ast.AST) -> bool:
        for sub in ast.walk(node):
            name = None
            if isinstance(sub, ast.Attribute):
                name = sub.attr
            elif isinstance(sub, ast.Name):
                name = sub.id
            if name is not None and any(stem in name.lower()
                                        for stem in FLOAT_VALUE_STEMS):
                return True
        return False

    def _comprehension_sources(self, node: ast.AST) -> List[ast.expr]:
        sources: List[ast.expr] = []
        for sub in ast.walk(node):
            if isinstance(sub, ast.comprehension):
                sources.append(sub.iter)
        return sources

    # -- SH001 / SH003: global rebinds ------------------------------------

    def visit_Global(self, node: ast.Global) -> None:
        self.global_names.update(node.names)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name) \
                    and target.id in self.global_names:
                self._check_rebind(target.id, node, node.value)
        self._propagate_taint(node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if (isinstance(node.target, ast.Name)
                and node.target.id in self.global_names
                and node.value is not None):
            self._check_rebind(node.target.id, node, node.value)
        self.generic_visit(node)

    def _check_rebind(self, name: str, node: ast.AST,
                      value: ast.expr) -> None:
        self._mark_global(name, rebound=True)
        anchor = self._global_anchor(name)
        if self._is_alias_expr(value):
            self._report(
                "SH001", node, anchor,
                f"module global '{name}' aliases per-shard state "
                f"({ast.unparse(value)}) escaping from {self.anchor}(); "
                f"shards would observe each other's objects")
        elif isinstance(value, ast.BinOp) and any(
                isinstance(operand, ast.Name) and operand.id == name
                for operand in (value.left, value.right)):
            self._report(
                "SH003", node, anchor,
                f"module global '{name}' is advanced "
                f"('{name} = {ast.unparse(value)}') in {self.anchor}(); "
                f"per-shard increments would collide")

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Name) \
                and node.target.id in self.global_names:
            self._mark_global(node.target.id, rebound=True)
            self._report(
                "SH003", node, self._global_anchor(node.target.id),
                f"module global '{node.target.id}' is incremented in "
                f"{self.anchor}(); per-shard increments would collide")
        self._check_float_accumulation(node)
        self.generic_visit(node)

    # -- SH002: registry mutation -----------------------------------------

    def _module_container(self, node: ast.AST) -> Optional[str]:
        """Name of the module-level container this expression roots at."""
        if isinstance(node, ast.Name):
            glob = self.info.globals.get(node.id)
            if glob is not None and glob.container \
                    and node.id not in self._local_names:
                return node.id
        return None

    @property
    def _local_names(self) -> Set[str]:
        cached = getattr(self, "_locals_cache", None)
        if cached is None:
            cached = set(self.params)
            for sub in ast.walk(self.func):
                if isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        if isinstance(target, ast.Name) \
                                and target.id not in self.global_names:
                            cached.add(target.id)
                elif isinstance(sub, ast.comprehension):
                    for tgt in ast.walk(sub.target):
                        if isinstance(tgt, ast.Name):
                            cached.add(tgt.id)
                elif isinstance(sub, ast.For):
                    for tgt in ast.walk(sub.target):
                        if isinstance(tgt, ast.Name):
                            cached.add(tgt.id)
            self._locals_cache = cached
        return cached

    def _report_registry(self, name: str, node: ast.AST, verb: str) -> None:
        self._mark_global(name, mutated=True)
        self._report(
            "SH002", node, self._global_anchor(name),
            f"module-level container '{name}' is {verb} in "
            f"{self.anchor}(); a process-wide registry shared by every "
            f"shard must be declared barrier-shared")

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            name = self._module_container(node.value)
            if name is not None:
                self._report_registry(
                    name, node,
                    "item-assigned" if isinstance(node.ctx, ast.Store)
                    else "item-deleted")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in _MUTATING_METHODS:
            name = self._module_container(node.func.value)
            if name is not None:
                self._report_registry(
                    name, node, f"mutated via .{node.func.attr}()")
        self._check_sum_call(node)
        self.generic_visit(node)

    # -- SH004: float accumulation order ----------------------------------

    def _propagate_taint(self, node: ast.Assign) -> None:
        sources = self._comprehension_sources(node.value)
        if not sources and isinstance(node.value, (ast.Name, ast.Call)):
            sources = [node.value]
        if any(self._is_cross_shard_iterable(src) for src in sources):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.tainted.add(target.id)

    def _check_sum_call(self, node: ast.Call) -> None:
        if not (isinstance(node.func, ast.Name) and node.func.id == "sum"
                and node.args):
            return
        argument = node.args[0]
        sources = self._comprehension_sources(argument)
        if isinstance(argument, ast.Name):
            sources.append(argument)
        if not any(self._is_cross_shard_iterable(src) for src in sources):
            return
        if not self._mentions_float_stem(argument):
            return
        self._report(
            "SH004", node, self.anchor,
            f"{self.anchor}() sums a real-valued quantity across a "
            f"cross-shard collection; float addition is order-sensitive, "
            f"so per-shard partial sums diverge from the global order "
            f"(reduce at a barrier instead)")

    def _check_float_accumulation(self, node: ast.AugAssign) -> None:
        if not isinstance(node.op, ast.Add):
            return
        if not self._mentions_float_stem(node.value):
            return
        loop = self._enclosing_cross_shard_loop(node)
        if loop is None:
            return
        self._report(
            "SH004", node, self.anchor,
            f"{self.anchor}() accumulates a real-valued quantity in a "
            f"loop over a cross-shard collection; float addition is "
            f"order-sensitive across shards (reduce at a barrier instead)")

    def _enclosing_cross_shard_loop(self, node: ast.AST) \
            -> Optional[ast.For]:
        for sub in ast.walk(self.func):
            if isinstance(sub, ast.For) \
                    and self._is_cross_shard_iterable(sub.iter):
                for inner in ast.walk(sub):
                    if inner is node:
                        return sub
        return None


def _scan_hazards(info: _ModuleInfo, findings: List[ShardFinding]) -> None:
    def scan(func: ast.FunctionDef, owner: Optional[str]) -> None:
        # The visitor traverses nested functions itself, so only the
        # top-level defs are seeded (seeding nested defs separately
        # would double-report their findings).
        _FunctionHazards(info, func, owner, findings).visit(func)

    for node in info.tree.body:
        if isinstance(node, ast.FunctionDef):
            scan(node, None)
        elif isinstance(node, ast.ClassDef):
            for stmt in node.body:
                if isinstance(stmt, ast.FunctionDef):
                    scan(stmt, node.name)


# -- reachability ------------------------------------------------------------


def _multi_root_classes(class_index: Dict[str, _ClassInfo],
                        shard_roots: Sequence[str]) -> Dict[str, Set[str]]:
    """Dotted class -> set of collapsed roots that reach it.

    Traversal from a root follows holder edges but never expands
    *through* a different root class: a Cluster holding per-shard
    Kernels is shard containment, not cross-shard sharing.
    """
    roots = [root for root in shard_roots if root in class_index]
    collapsed = {root: ROOT_COLLAPSE.get(root, root) for root in roots}
    reached_by: Dict[str, Set[str]] = {}
    for root in roots:
        label = collapsed[root]
        stack = [root]
        seen = {root}
        while stack:
            current = stack.pop()
            for held in class_index[current].holds:
                if held not in class_index or held in seen:
                    continue
                seen.add(held)
                reached_by.setdefault(held, set()).add(label)
                if held in collapsed and collapsed[held] != label:
                    continue  # do not expand through a different root
                stack.append(held)
    return reached_by


# -- the analysis ------------------------------------------------------------


def _snapshot_covered_classes() -> Set[str]:
    try:
        from repro.checkpoint.registry import SNAPSHOT_COVERAGE
    except Exception:  # pragma: no cover - registry is part of the repo
        return set()
    return set(SNAPSHOT_COVERAGE)


def _resolve_location(location: str, modules: Dict[str, _ModuleInfo]) -> bool:
    """Does a dotted spec location exist in the analyzed tree?"""
    parts = location.split(".")
    for split in range(len(parts), 0, -1):
        module = ".".join(parts[:split])
        info = modules.get(module)
        if info is None:
            continue
        rest = parts[split:]
        if not rest:
            return True
        head = rest[0]
        if head in info.globals or head in info.functions:
            return len(rest) == 1
        cls = info.classes.get(head)
        if cls is None:
            return False
        if len(rest) == 1:
            return True
        member = rest[1]
        return len(rest) == 2 and (member in cls.methods
                                   or member in cls.attrs)
    return False


def analyze_tree(root: Union[str, Path],
                 spec: Optional[ShardSpec] = None,
                 spec_path: Optional[Path] = None) -> ShardMap:
    """Analyze the package tree rooted at ``root`` against a spec.

    ``root`` is a directory containing (or inside) a ``repro`` package
    -- normally ``src/repro``.  The spec defaults to the committed
    ``shardmap.toml`` next to this module.
    """
    if spec is None:
        spec = load_spec(spec_path)
    zones = tuple(spec.zones) or DEFAULT_ZONES
    shard_roots = tuple(spec.shard_roots) or DEFAULT_SHARD_ROOTS

    root_path = Path(root)
    files = sorted(root_path.rglob("*.py")) if root_path.is_dir() \
        else [root_path]
    modules: Dict[str, _ModuleInfo] = {}
    for path in files:
        zone = zone_of(path)
        if zone not in zones:
            continue
        module = _module_name(path)
        if module is None:
            continue
        info = _collect_module(path, module, zone)
        if info is not None:
            modules[module] = info

    class_index: Dict[str, _ClassInfo] = {}
    for info in modules.values():
        for cls in info.classes.values():
            class_index[cls.dotted] = cls
    for info in modules.values():
        _collect_holder_edges(info, class_index)
    reached_by = _multi_root_classes(class_index, shard_roots)
    covered = _snapshot_covered_classes()

    findings: List[ShardFinding] = []
    for info in modules.values():
        _scan_hazards(info, findings)

    # Hazards anchored at a location suppress the redundant SH005 for
    # the same location, and [[allow]] entries waive them entirely.
    hazard_anchors = {f.location for f in findings
                      if f.rule_id in ("SH001", "SH002", "SH003")}
    findings = [
        f for f in findings
        if not spec.is_allowed(f.rule_id, f.location)
        and not (f.rule_id == "SH002"
                 and spec.classification_of(f.location) == BARRIER_SHARED)
    ]

    locations: List[ShardLocation] = []
    for info in sorted(modules.values(), key=lambda m: m.module):
        for glob in sorted(info.globals.values(), key=lambda g: g.line):
            dotted = f"{info.module}.{glob.name}"
            mutated = glob.rebound or glob.mutated
            entry = spec.globals.get(dotted)
            if entry is not None:
                classification, origin, reason = \
                    entry.classification, "spec", entry.reason
            elif glob.marker is not None:
                classification, origin = glob.marker[0], "marker"
                reason = glob.marker[1]
            elif not mutated and not glob.container:
                continue  # plain module constant; not a mutable location
            elif not mutated:
                classification, origin = UNKNOWN, "unclassified"
                reason = ""
            else:
                classification, origin = UNKNOWN, "unclassified"
                reason = ""
            location = ShardLocation(
                kind="global", location=dotted, path=str(info.path),
                line=glob.line, zone=info.zone,
                classification=classification, origin=origin,
                reason=reason, mutated=mutated)
            locations.append(location)
            if classification == UNKNOWN \
                    and dotted not in hazard_anchors \
                    and not spec.is_allowed("SH005", dotted):
                findings.append(ShardFinding(
                    path=str(info.path), line=glob.line, col=glob.col + 1,
                    rule_id="SH005", location=dotted,
                    message=f"module-level {'container' if glob.container else 'global'} "
                            f"'{glob.name}' has no ownership classification; "
                            f"declare it in shardmap.toml or add an inline "
                            f"'# shard: ... -- reason' marker"))
            elif classification == SHARD_LOCAL and mutated:
                findings.append(ShardFinding(
                    path=str(info.path), line=glob.line, col=glob.col + 1,
                    rule_id="SH007", location=dotted,
                    message=f"module global '{glob.name}' is mutated at "
                            f"runtime but declared shard-local; module "
                            f"state is process-wide, so runtime mutation "
                            f"requires barrier-shared"))
        for cls in sorted(info.classes.values(), key=lambda c: c.line):
            dotted = cls.dotted
            roots = reached_by.get(dotted, set())
            is_root = dotted in shard_roots
            multi_root = len(roots) >= 2 and not is_root
            entry = spec.classes.get(dotted)
            if entry is not None:
                classification, origin, reason = \
                    entry.classification, "spec", entry.reason
            else:
                marker = _marker_for_line(info.lines, cls.line)
                if marker is not None:
                    classification, origin = marker[0], "marker"
                    reason = marker[1]
                else:
                    classification, origin, reason = \
                        UNKNOWN, "unclassified", ""
            location = ShardLocation(
                kind="class", location=dotted, path=str(info.path),
                line=cls.line, zone=info.zone,
                classification=classification, origin=origin, reason=reason,
                multi_root=multi_root, holders=tuple(sorted(roots)),
                attrs=cls.attrs,
                snapshot_covered=(dotted in covered) if covered else None)
            locations.append(location)
            if classification == UNKNOWN \
                    and not spec.is_allowed("SH005", dotted):
                findings.append(ShardFinding(
                    path=str(info.path), line=cls.line, col=cls.col + 1,
                    rule_id="SH005", location=dotted,
                    message=f"class '{cls.name}' has no ownership "
                            f"classification; declare it in shardmap.toml"))
            elif classification == SHARD_LOCAL and multi_root \
                    and not spec.is_allowed("SH007", dotted):
                findings.append(ShardFinding(
                    path=str(info.path), line=cls.line, col=cls.col + 1,
                    rule_id="SH007", location=dotted,
                    message=f"class '{cls.name}' is reachable from "
                            f"multiple shard roots ({', '.join(sorted(roots))}) "
                            f"but declared shard-local; objects shared "
                            f"between shards must be barrier-shared"))

    # SH006: stale spec entries.
    spec_file = str(spec.path) if spec.path else "shardmap.toml"
    for table in (spec.globals, spec.classes, spec.attrs):
        for dotted in table:
            if not _resolve_location(dotted, modules):
                findings.append(ShardFinding(
                    path=spec_file, line=1, col=1, rule_id="SH006",
                    location=dotted,
                    message=f"spec entry '{dotted}' names a location that "
                            f"does not exist in the analyzed tree"))
    for allow in spec.allows:
        if not _resolve_location(allow.location, modules):
            findings.append(ShardFinding(
                path=spec_file, line=1, col=1, rule_id="SH006",
                location=allow.location,
                message=f"[[allow]] entry for {allow.id} names a location "
                        f"that does not exist: '{allow.location}'"))

    # SH008: spec seams must match the runtime sanitizer's seams.
    if spec.seams_must_match_runtime:
        from repro.analysis.races import DECLARED_SEAMS
        spec_names = set(spec.seam_names())
        runtime = set(DECLARED_SEAMS)
        for missing in sorted(runtime - spec_names):
            findings.append(ShardFinding(
                path=spec_file, line=1, col=1, rule_id="SH008",
                location=missing,
                message=f"runtime barrier seam '{missing}' is not declared "
                        f"in the spec's [[seams]]"))
        for extra in sorted(spec_names - runtime):
            findings.append(ShardFinding(
                path=spec_file, line=1, col=1, rule_id="SH008",
                location=extra,
                message=f"spec declares barrier seam '{extra}' but the "
                        f"runtime sanitizer does not implement it"))

    findings.sort(key=lambda f: (f.path, f.line, f.rule_id))
    return ShardMap(locations=locations, findings=findings, zones=zones,
                    modules=len(modules))


# -- renderers ---------------------------------------------------------------


def render_text(shard_map: ShardMap) -> str:
    counts = shard_map.counts()
    lines = [
        f"shardmap: {len(shard_map.locations)} mutable locations across "
        f"{shard_map.modules} modules in zones "
        f"({', '.join(shard_map.zones)})",
        f"  shard-local: {counts[SHARD_LOCAL]}   "
        f"barrier-shared: {counts[BARRIER_SHARED]}   "
        f"UNKNOWN: {counts[UNKNOWN]}",
    ]
    for finding in shard_map.findings:
        lines.append(finding.format())
    if shard_map.findings:
        lines.append(f"{len(shard_map.findings)} shard-safety finding(s)")
    else:
        lines.append("shardmap: clean (no UNKNOWN locations, no hazards)")
    return "\n".join(lines)


def render_doc(shard_map: ShardMap) -> str:
    """Generated ``docs/SHARDMAP.md`` content."""
    counts = shard_map.counts()
    out = [
        "# Shard ownership map",
        "",
        "<!-- Generated by `python -m repro.analysis shardmap --write-doc`;"
        " do not edit by hand. -->",
        "",
        "Classification of every mutable location in the deterministic",
        "zones, derived from `src/repro/analysis/shardmap.toml` and inline",
        "`# shard:` markers.  This map is the work-list and acceptance",
        "gate for the multicore shard refactor (see `docs/ANALYSIS.md`).",
        "",
        f"- **shard-local**: {counts[SHARD_LOCAL]}",
        f"- **barrier-shared**: {counts[BARRIER_SHARED]}",
        f"- **UNKNOWN**: {counts[UNKNOWN]}",
        "",
    ]
    by_zone: Dict[str, List[ShardLocation]] = {}
    for loc in shard_map.locations:
        by_zone.setdefault(loc.zone, []).append(loc)
    for zone in sorted(by_zone):
        out.append(f"## zone `{zone}`")
        out.append("")
        out.append("| location | kind | classification | via | notes |")
        out.append("|---|---|---|---|---|")
        for loc in sorted(by_zone[zone], key=lambda l: l.location):
            notes = []
            if loc.kind == "class":
                if loc.multi_root:
                    notes.append(
                        "multi-root: " + ", ".join(
                            root.rsplit(".", 1)[-1] for root in loc.holders))
                if loc.snapshot_covered:
                    notes.append("snapshot-covered")
                if loc.attrs:
                    notes.append(f"{len(loc.attrs)} attrs")
            elif loc.mutated:
                notes.append("runtime-mutated")
            reason = loc.reason.replace("|", "\\|")
            if reason:
                notes.append(reason)
            out.append(
                f"| `{loc.location}` | {loc.kind} | {loc.classification} "
                f"| {loc.origin} | {'; '.join(notes)} |")
        out.append("")
    return "\n".join(out)


def render_spec_skeleton(shard_map: ShardMap) -> str:
    """Bootstrap TOML covering every currently-unclassified location."""
    out = [
        "version = 1",
        "",
        "[meta]",
        'zones = [' + ", ".join(f'"{zone}"' for zone in shard_map.zones)
        + ']',
        'shard_roots = ['
        + ", ".join(f'"{root}"' for root in DEFAULT_SHARD_ROOTS) + ']',
        "seams_must_match_runtime = true",
        "",
    ]
    for loc in shard_map.locations:
        if loc.classification != UNKNOWN:
            continue
        table = "globals" if loc.kind == "global" else "classes"
        guess = BARRIER_SHARED if (loc.multi_root or loc.mutated) \
            else SHARD_LOCAL
        out.append(f'[{table}."{loc.location}"]')
        out.append(f'classification = "{guess}"')
        out.append('reason = "TODO"')
        out.append("")
    return "\n".join(out)
