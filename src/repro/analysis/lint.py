"""Determinism lint: repo-specific AST rules for the reproduction.

Every claim this reproduction makes -- bit-for-bit Park-Miller streams,
exact proportional-share ratios, ticket conservation across currencies
-- depends on the simulation staying deterministic.  This module walks
Python sources under ``src/repro`` and flags constructs that threaten
that property:

========  ==============================================================
Rule      Hazard
========  ==============================================================
RPR001    ``random``/``secrets`` imported instead of ``repro.core.prng``
RPR002    wall-clock reads (``time.time``, ``datetime.now``, ...) inside
          the deterministic zones (``sim``, ``kernel``, ``schedulers``,
          ``core``)
RPR003    iteration over unordered collections (``set`` literals,
          ``set()``/``frozenset()`` results, dict views) in scheduling
          decision paths
RPR004    float hazards on ticket quantities (``float()`` casts and
          ``==``/``!=`` comparisons on amount/ticket/funding values)
RPR005    mutable default arguments in kernel/scheduler/core/sim APIs
RPR006    ``time.sleep`` calls or hand-rolled retry loops (a ``while``
          whose ``try`` handler ``continue``s) instead of the bounded,
          virtual-time ``repro.faults.retry`` primitives
RPR007    checkpoint bypass: ``pickle``/``marshal``/``shelve``/``dill``
          imports or ``copy.deepcopy`` calls on kernel objects (live
          objects must go through the typed ``snapshot_state()`` seams,
          see :mod:`repro.checkpoint`); also audits every class in the
          snapshot-coverage registry -- a ``self.x`` assignment naming
          an attribute that is neither covered by the class's seam nor
          declared transient means mutable state was added without a
          checkpointing decision
RPR008    bare ``print()`` outside the presentation layers (``cli``,
          ``experiments``, ``__main__`` entry points) -- library code
          must report through return values, recorders, or
          :mod:`repro.telemetry`, not stdout
RPR009    a class registered as a recorder sink
          (``repro.metrics.recorder.RECORDER_SINKS``) does not itself
          define the full kernel event surface -- a sink silently deaf
          to an event kind
RPR010    per-draw linear revaluation: a loop (or comprehension) inside
          a scheduler ``select()`` calls a ticket valuation
          (``funding()``/``base_value()``/``nominal_funding()``),
          making every dispatch O(n) in runnable threads; valuations
          belong in the funding cache, invalidated on mutation
RPR011    module-level mutable state (dict/list/set/deque assigned at
          module scope) in a deterministic zone without an ownership
          declaration -- neither an inline ``# shard: <classification>
          -- reason`` marker nor a ``[globals]`` entry in the shardmap
          spec (``src/repro/analysis/shardmap.toml``); undeclared
          module state is exactly what the multicore shard refactor
          cannot partition (see :mod:`repro.analysis.shardmap`)
RPR012    host-concurrency imports (``multiprocessing``,
          ``concurrent.futures``, ``threading``, ``_thread``) inside a
          deterministic zone -- OS-scheduled concurrency is
          nondeterministic by construction; the one sanctioned home
          for worker processes is :mod:`repro.shard`, whose epoch
          barriers re-serialize every cross-core effect
RPR013    cross-owner telemetry mutation: a mutator method (``inc``,
          ``set``, ``record``, ``begin``, ``event``, ...) called
          through another object's ``.telemetry`` hub (receiver chain
          contains ``.telemetry`` but is not rooted at ``self``/
          ``cls``) outside a ``with race_seam("shard.barrier")``
          block -- every core's :class:`~repro.telemetry.registry.
          MetricRegistry`/:class:`~repro.telemetry.spans.SpanTracer`
          is that core's private history; writing into a foreign hub
          bypasses the barrier-mediated aggregation protocol and makes
          the "merged metrics are a pure function of per-core
          histories" claim false
========  ==============================================================

A finding on a line can be suppressed with an inline comment::

    import random  # repro: noqa[RPR001] -- justification goes here

Several IDs may be listed (``# repro: noqa[RPR001,RPR003]``); a bare
``# repro: noqa`` suppresses every rule on the line.  Suppressions
MUST carry a justification after the bracket: a noqa without one is
itself reported as RPR000 (and that report cannot be suppressed).
``python -m repro.analysis lint --list-suppressions`` inventories every
active suppression with its file:line and justification.

The linter is purely syntactic (no type inference): rules are scoped to
the subpackages ("zones") where the hazard matters, and RPR003 exempts
iteration feeding order-insensitive reductions (``sum``, ``min``,
``max``, ``any``, ``all``, ``sorted``, ``set``, ``frozenset``, ``len``).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

__all__ = ["Rule", "RULES", "Finding", "Suppression", "lint_source",
           "lint_file", "lint_paths", "iter_suppressions",
           "collect_suppressions", "zone_of", "module_of"]


@dataclass(frozen=True)
class Rule:
    """A lint rule: identifier, human summary, and fix-it guidance."""

    id: str
    slug: str
    summary: str
    fixit: str
    #: Subpackages of ``repro`` the rule applies to; None means everywhere.
    zones: Optional[Tuple[str, ...]]


RULES: Dict[str, Rule] = {
    rule.id: rule
    for rule in (
        Rule(
            "RPR000",
            "unparseable-source",
            "file could not be read or parsed, or a noqa suppression "
            "carries no justification",
            "fix the syntax error (or path) so the file can be linted; "
            "for suppressions, append ' -- why' after the noqa bracket",
            None,
        ),
        Rule(
            "RPR001",
            "nondeterministic-rng",
            "stdlib 'random'/'secrets' used instead of repro.core.prng",
            "draw from repro.core.prng.ParkMillerPRNG (seeded) so streams "
            "replay bit-for-bit",
            None,
        ),
        Rule(
            "RPR002",
            "wall-clock-read",
            "wall-clock read inside a deterministic zone",
            "use the simulated clock (engine.now / kernel.now); wall time "
            "differs across runs and hosts",
            ("sim", "kernel", "schedulers", "core"),
        ),
        Rule(
            "RPR003",
            "unordered-iteration",
            "iteration over an unordered collection in a scheduling "
            "decision path",
            "iterate a list/deque or wrap in sorted(); set/dict-view order "
            "may vary across runs and interpreters",
            ("sim", "kernel", "schedulers", "core"),
        ),
        Rule(
            "RPR004",
            "float-ticket-arithmetic",
            "float hazard on a ticket quantity",
            "keep ticket amounts integral (or tolerance-compare); exact "
            "float equality and lossy casts skew proportional shares",
            ("kernel", "schedulers", "core"),
        ),
        Rule(
            "RPR005",
            "mutable-default-argument",
            "mutable default argument in a kernel/scheduler API",
            "default to None and create the container in the body; shared "
            "defaults leak state between simulations",
            ("sim", "kernel", "schedulers", "core"),
        ),
        Rule(
            "RPR006",
            "ad-hoc-retry",
            "blocking sleep or hand-rolled retry loop",
            "use repro.faults.retry (RetryPolicy/execute_with_retry): "
            "virtual-time backoff replays deterministically, wall-clock "
            "sleeps and unbounded except-continue loops do not",
            None,
        ),
        Rule(
            "RPR007",
            "checkpoint-bypass",
            "serialization of live objects bypassing the snapshot seams",
            "checkpoint through snapshot_state() and repro.checkpoint: "
            "pickled/deep-copied kernel objects drag generator frames and "
            "identity-keyed state along and cannot be verified or "
            "versioned",
            None,
        ),
        Rule(
            "RPR008",
            "print-in-library",
            "bare print() outside the presentation layers",
            "return strings (cli commands), use an ExperimentResult "
            "report, or record through repro.telemetry; stdout writes "
            "from library code are invisible to tools and untestable",
            None,
        ),
        Rule(
            "RPR009",
            "incomplete-recorder-sink",
            "registered recorder sink missing part of the event surface",
            "define every method in repro.metrics.recorder."
            "RECORDER_EVENT_SURFACE on the sink class itself (explicit "
            "no-ops included) so protocol extensions cannot leave a "
            "sink silently deaf",
            None,
        ),
        Rule(
            "RPR010",
            "per-draw-linear-revaluation",
            "ticket valuation called inside a loop in a scheduler "
            "select()",
            "read cached holder.funding() outside the loop, or track "
            "dirty members and revalue only those (see the funding "
            "cache in repro.core.tickets); a full rescan per draw "
            "makes every dispatch O(n) in runnable threads",
            ("schedulers",),
        ),
        Rule(
            "RPR011",
            "undeclared-module-state",
            "module-level mutable container without an ownership "
            "declaration in a deterministic zone",
            "add '# shard: shard-local|barrier-shared -- reason' on the "
            "assignment line, or declare the dotted name under [globals] "
            "in src/repro/analysis/shardmap.toml; the shard refactor "
            "cannot partition undeclared module state",
            ("sim", "kernel", "schedulers", "core", "distributed"),
        ),
        Rule(
            "RPR012",
            "host-concurrency-import",
            "host concurrency primitive imported in a deterministic "
            "zone",
            "OS-scheduled threads/processes interleave "
            "nondeterministically; drive parallelism through "
            "repro.shard (ShardedEngine's mp backend), whose epoch "
            "barriers re-serialize every cross-core effect into a "
            "canonical order",
            ("sim", "kernel", "schedulers", "core", "distributed"),
        ),
        Rule(
            "RPR013",
            "cross-owner-telemetry-mutation",
            "telemetry mutator called through another object's "
            ".telemetry hub outside the shard.barrier seam",
            "per-core MetricRegistry/SpanTracer hubs are owner-private; "
            "record through the owner's own methods (obs_emit / "
            "obs_frame), or, for legal barrier-time effects, wrap the "
            "write in `with race_seam(\"shard.barrier\")` -- the "
            "declared seam the aggregation protocol already audits",
            ("shard", "telemetry"),
        ),
    )
}

#: Imports of these modules trigger RPR007 (a): object serialization
#: that would bypass the typed snapshot seams.
_FORBIDDEN_SERIALIZERS = frozenset({"pickle", "cPickle", "dill", "marshal",
                                    "shelve"})

#: Canonical dotted names whose *call* constitutes a wall-clock read.
_WALL_CLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

#: Imports of these top-level modules trigger RPR001.
_FORBIDDEN_RNG_MODULES = frozenset({"random", "secrets"})

#: Imports of these top-level modules trigger RPR012: OS-scheduled
#: concurrency in a deterministic zone.  ``concurrent`` covers
#: ``concurrent.futures`` (root-module matching, like the other sets).
#: ``repro/shard/`` is exempt by zone -- it is the sanctioned owner of
#: worker processes.
_FORBIDDEN_CONCURRENCY_MODULES = frozenset(
    {"multiprocessing", "concurrent", "threading", "_thread"})

#: Calls whose result is order-insensitive, exempting inner iteration.
_ORDER_INSENSITIVE_REDUCERS = frozenset({
    "sum", "min", "max", "any", "all", "len", "sorted", "set", "frozenset",
})

#: Identifier stems that mark an expression as a ticket quantity.
_AMOUNT_STEMS = ("amount", "ticket", "funding", "bonus")

#: Method names whose call constitutes a ticket valuation (RPR010).
_VALUATION_METHODS = frozenset({"funding", "base_value", "nominal_funding"})

#: Method names that mutate a telemetry hub (RPR013): registry
#: instrument writes and tracer lifecycle calls.
_TELEMETRY_MUTATORS = frozenset({
    "inc", "add", "set", "record", "begin", "end", "event", "complete",
    "finalize",
})

#: The one seam where cross-owner telemetry effects are legal (the
#: barrier applies payloads into the target core's universe).
_TELEMETRY_SEAM = "shard.barrier"

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([^\]]*)\])?")

#: The same comment with its (mandatory) justification captured; used
#: by the RPR000 hygiene check and ``--list-suppressions``.
_NOQA_FULL_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[([^\]]*)\])?\s*(?:--\s*(\S.*))?")

#: Module-scope container constructors that make a global mutable state
#: for RPR011 purposes.
_MUTABLE_CONTAINER_CALLS = frozenset(
    {"dict", "list", "set", "defaultdict", "OrderedDict", "deque",
     "Counter", "bytearray"})

_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


@dataclass(frozen=True)
class Finding:
    """One lint hit, pointing at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def format(self) -> str:
        rule = RULES[self.rule_id]
        return (f"{self.path}:{self.line}:{self.col}: {self.rule_id} "
                f"{self.message} (fix: {rule.fixit})")


def _snapshot_coverage() -> Dict[str, Dict[str, Iterable[str]]]:
    """The checkpoint package's coverage registry (empty if unavailable).

    Imported lazily so the linter stays usable as a standalone tool on
    arbitrary files even when ``repro.checkpoint`` cannot be imported.
    """
    try:
        from repro.checkpoint.registry import SNAPSHOT_COVERAGE
    except Exception:  # pragma: no cover - standalone lint usage
        return {}
    return SNAPSHOT_COVERAGE


def _recorder_surface() -> Tuple[frozenset, Tuple[str, ...]]:
    """The metrics package's sink registry (empty if unavailable).

    Lazy for the same reason as :func:`_snapshot_coverage`: the linter
    must keep working standalone when ``repro.metrics`` is absent.
    """
    try:
        from repro.metrics.recorder import (RECORDER_EVENT_SURFACE,
                                            RECORDER_SINKS)
    except Exception:  # pragma: no cover - standalone lint usage
        return frozenset(), ()
    return RECORDER_SINKS, RECORDER_EVENT_SURFACE


def _shardmap_globals() -> frozenset:
    """Dotted names declared under ``[globals]`` in the shardmap spec.

    Lazy (and failure-tolerant) like :func:`_snapshot_coverage`: the
    linter keeps working on arbitrary files when the committed spec is
    absent or malformed -- RPR011 then simply requires inline markers.
    """
    try:
        from repro.analysis.shardspec import load_spec
        return frozenset(load_spec().globals)
    except Exception:
        return frozenset()


#: Zones exempt from RPR008: the presentation layers, where printing to
#: stdout is the whole point.
_PRINT_ZONES = frozenset({"cli", "experiments"})


def module_of(path: Union[str, Path]) -> Optional[str]:
    """Dotted module path of a source file (None outside ``repro``).

    ``src/repro/kernel/kernel.py`` -> ``"repro.kernel.kernel"``; used to
    match class definitions against the snapshot-coverage registry.
    """
    parts = Path(path).parts
    for index, part in enumerate(parts):
        if part == "repro" and index + 1 < len(parts):
            tail = list(parts[index:])
            if tail[-1].endswith(".py"):
                tail[-1] = tail[-1][:-3]
            return ".".join(tail)
    return None


def _self_assignments(node: ast.ClassDef) -> Dict[str, ast.AST]:
    """Instance attributes a class assigns (``self.x = ...``), by name."""
    assigned: Dict[str, ast.AST] = {}
    for method in node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for sub in ast.walk(method):
            targets: List[ast.expr] = []
            if isinstance(sub, ast.Assign):
                targets = list(sub.targets)
            elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
                targets = [sub.target]
            for target in targets:
                if isinstance(target, ast.Attribute) and \
                        isinstance(target.value, ast.Name) and \
                        target.value.id == "self":
                    assigned.setdefault(target.attr, target)
    return assigned


def zone_of(path: Union[str, Path]) -> Optional[str]:
    """The ``repro`` subpackage a path belongs to (None if outside).

    ``src/repro/kernel/kernel.py`` -> ``"kernel"``; a module directly
    under ``repro/`` maps to ``""`` (the package root).  Works on any
    path containing a ``repro`` directory segment, so test fixtures can
    fabricate paths like ``repro/schedulers/fixture.py``.
    """
    parts = Path(path).parts
    for index, part in enumerate(parts[:-1]):
        if part == "repro":
            nxt = parts[index + 1]
            return "" if nxt.endswith(".py") else nxt
    return None


def _suppressed(lines: Sequence[str], finding: Finding) -> bool:
    """True when the finding's physical line carries a matching noqa."""
    if not 1 <= finding.line <= len(lines):
        return False
    match = _NOQA_RE.search(lines[finding.line - 1])
    if match is None:
        return False
    codes = match.group(1)
    if codes is None:
        return True
    wanted = {code.strip().upper() for code in codes.split(",")}
    return finding.rule_id in wanted


def _mentions_amount(node: ast.AST) -> Optional[str]:
    """The first identifier in ``node`` naming a ticket quantity.

    A ``Name`` that only serves as the object of an attribute access
    (the ``ticket`` in ``ticket.tag``) does not itself denote a
    quantity and is skipped; the accessed attribute still counts.
    """
    attribute_bases = {
        id(sub.value) for sub in ast.walk(node)
        if isinstance(sub, ast.Attribute) and isinstance(sub.value, ast.Name)
    }
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            if id(sub) in attribute_bases:
                continue
            ident = sub.id
        elif isinstance(sub, ast.Attribute):
            ident = sub.attr
        else:
            continue
        lowered = ident.lower()
        if any(stem in lowered for stem in _AMOUNT_STEMS):
            return ident
    return None


def _continues_loop(statements: Sequence[ast.stmt]) -> bool:
    """True when the statements ``continue`` the *enclosing* loop.

    ``continue`` inside a nested loop (or function) retries that inner
    construct, not the loop under inspection, so those subtrees are not
    descended into.
    """
    for statement in statements:
        if isinstance(statement, ast.Continue):
            return True
        if isinstance(statement, (ast.For, ast.While, ast.AsyncFor,
                                  ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for child in ast.iter_child_nodes(statement):
            if isinstance(child, ast.stmt) and _continues_loop([child]):
                return True
    return False


class _Visitor(ast.NodeVisitor):
    """Single-pass rule engine over one module's AST."""

    def __init__(self, path: str, zone: Optional[str]) -> None:
        self.path = path
        self.zone = zone
        self.findings: List[Finding] = []
        #: local alias -> imported module ("t" -> "time").
        self._module_aliases: Dict[str, str] = {}
        #: local name -> fully qualified origin ("datetime" ->
        #: "datetime.datetime" after ``from datetime import datetime``).
        self._name_origins: Dict[str, str] = {}
        #: id() of comprehension nodes feeding order-insensitive reducers.
        self._exempt_comprehensions: set = set()
        #: Loop nesting depth (for the RPR006 retry-loop pattern).
        self._loop_depth = 0
        #: Nesting depth of ``select`` method definitions (RPR010).
        self._select_depth = 0
        #: Nesting depth of ``with race_seam("shard.barrier")`` blocks
        #: (RPR013's declared exemption).
        self._seam_depth = 0

    # -- plumbing ----------------------------------------------------------

    def _applies(self, rule_id: str) -> bool:
        zones = RULES[rule_id].zones
        return zones is None or (self.zone is not None and self.zone in zones)

    def _report(self, rule_id: str, node: ast.AST, message: str) -> None:
        if self._applies(rule_id):
            self.findings.append(Finding(
                self.path, getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0), rule_id, message,
            ))

    def _qualified(self, node: ast.AST) -> Optional[str]:
        """Dotted origin of an expression, through import aliases."""
        if isinstance(node, ast.Name):
            if node.id in self._name_origins:
                return self._name_origins[node.id]
            if node.id in self._module_aliases:
                return self._module_aliases[node.id]
            return node.id
        if isinstance(node, ast.Attribute):
            base = self._qualified(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None

    # -- RPR001: nondeterministic RNG --------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            self._module_aliases[alias.asname or alias.name.split(".")[0]] = \
                alias.name
            if root in _FORBIDDEN_RNG_MODULES:
                self._report(
                    "RPR001", node,
                    f"import of nondeterministic module {alias.name!r}",
                )
            if root in _FORBIDDEN_SERIALIZERS:
                self._report(
                    "RPR007", node,
                    f"import of object serializer {alias.name!r}",
                )
            if root in _FORBIDDEN_CONCURRENCY_MODULES:
                self._report(
                    "RPR012", node,
                    f"import of host concurrency module {alias.name!r} "
                    f"in deterministic zone {self.zone!r}",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is not None and node.level == 0:
            root = node.module.split(".")[0]
            if root in _FORBIDDEN_RNG_MODULES:
                self._report(
                    "RPR001", node,
                    f"import from nondeterministic module {node.module!r}",
                )
            if root in _FORBIDDEN_SERIALIZERS:
                self._report(
                    "RPR007", node,
                    f"import from object serializer {node.module!r}",
                )
            if root in _FORBIDDEN_CONCURRENCY_MODULES:
                self._report(
                    "RPR012", node,
                    f"import from host concurrency module "
                    f"{node.module!r} in deterministic zone {self.zone!r}",
                )
            for alias in node.names:
                self._name_origins[alias.asname or alias.name] = \
                    f"{node.module}.{alias.name}"
        self.generic_visit(node)

    # -- RPR002 / RPR004 call sites ----------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        qualified = self._qualified(node.func)
        if qualified in _WALL_CLOCK_CALLS:
            self._report(
                "RPR002", node,
                f"wall-clock call {qualified}() in zone "
                f"{self.zone or 'repro'!r}",
            )
        if qualified == "time.sleep":
            self._report(
                "RPR006", node,
                "time.sleep() blocks on wall time instead of virtual-time "
                "backoff",
            )
        if qualified in ("copy.deepcopy", "copy.copy"):
            self._report(
                "RPR007", node,
                f"{qualified}() duplicates live objects instead of going "
                f"through snapshot_state()",
            )
        if isinstance(node.func, ast.Name) and node.func.id == "float" \
                and node.args:
            ident = _mentions_amount(node.args[0])
            if ident is not None:
                self._report(
                    "RPR004", node,
                    f"float() cast on ticket quantity {ident!r}",
                )
        if isinstance(node.func, ast.Name) and node.func.id == "print" \
                and not self._print_allowed():
            self._report(
                "RPR008", node,
                f"bare print() in library zone {self.zone or 'repro'!r}",
            )
        if qualified is not None:
            tail = qualified.rsplit(".", 1)[-1]
            if tail in _ORDER_INSENSITIVE_REDUCERS and node.args and \
                    isinstance(node.args[0], _COMPREHENSIONS):
                self._exempt_comprehensions.add(id(node.args[0]))
        self._check_cross_owner_telemetry(node)
        self.generic_visit(node)

    # -- RPR013: cross-owner telemetry mutation ----------------------------

    @staticmethod
    def _is_barrier_seam(item: ast.withitem) -> bool:
        call = item.context_expr
        if not isinstance(call, ast.Call) or not call.args:
            return False
        func = call.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        first = call.args[0]
        return (name == "race_seam" and isinstance(first, ast.Constant)
                and first.value == _TELEMETRY_SEAM)

    def visit_With(self, node: ast.With) -> None:
        seam = any(self._is_barrier_seam(item) for item in node.items)
        if seam:
            self._seam_depth += 1
        self.generic_visit(node)
        if seam:
            self._seam_depth -= 1

    def _check_cross_owner_telemetry(self, node: ast.Call) -> None:
        """Flag ``X.telemetry....mutator(...)`` where ``X`` is not the
        owner (``self``/``cls``) and no barrier seam is declared.

        The walk is syntactic: the receiver chain is unwound through
        attributes, calls, and subscripts to its base name.  Aliasing
        the foreign hub into a local first evades the rule -- the same
        honesty boundary as every other rule here.
        """
        if not self._applies("RPR013") or self._seam_depth > 0:
            return
        func = node.func
        if not isinstance(func, ast.Attribute) or \
                func.attr not in _TELEMETRY_MUTATORS:
            return
        parts: List[str] = []
        cursor: ast.AST = func.value
        base: Optional[str] = None
        while True:
            if isinstance(cursor, ast.Call):
                cursor = cursor.func
            elif isinstance(cursor, ast.Attribute):
                parts.append(cursor.attr)
                cursor = cursor.value
            elif isinstance(cursor, ast.Subscript):
                cursor = cursor.value
            elif isinstance(cursor, ast.Name):
                base = cursor.id
                break
            else:
                break
        if base in (None, "self", "cls"):
            return
        if "telemetry" not in parts:
            return
        self._report(
            "RPR013", node,
            f"telemetry mutator .{func.attr}() reaches through "
            f"{base}.telemetry -- a foreign core's private hub; route "
            f"through the owner or the shard.barrier seam",
        )

    def _print_allowed(self) -> bool:
        """Printing is the presentation layers' job; library code may
        not.  ``__main__`` entry points of any package count as
        presentation (they exist to be run, not imported)."""
        if self.zone is None or self.zone in _PRINT_ZONES:
            return True
        return Path(self.path).name == "__main__.py"

    # -- RPR003: unordered iteration ---------------------------------------

    def _unordered_reason(self, expr: ast.AST) -> Optional[str]:
        if isinstance(expr, ast.Set):
            return "a set literal"
        if isinstance(expr, ast.SetComp):
            return "a set comprehension"
        if isinstance(expr, ast.Call):
            if isinstance(expr.func, ast.Name) and \
                    expr.func.id in ("set", "frozenset"):
                return f"a {expr.func.id}() result"
            if isinstance(expr.func, ast.Attribute) and \
                    expr.func.attr in ("keys", "values", "items"):
                return f"a .{expr.func.attr}() view"
        return None

    def _check_iteration(self, expr: ast.AST, node: ast.AST) -> None:
        reason = self._unordered_reason(expr)
        if reason is not None:
            self._report(
                "RPR003", node,
                f"iteration over {reason} in a scheduling decision path",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter, node)
        self._check_per_draw_revaluation(node)
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def _visit_comprehension(self, node: ast.AST) -> None:
        if id(node) not in self._exempt_comprehensions:
            for generator in node.generators:  # type: ignore[attr-defined]
                self._check_iteration(generator.iter, node)
        self._check_per_draw_revaluation(node)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # -- RPR010: per-draw linear revaluation -------------------------------

    def _check_per_draw_revaluation(self, node: ast.AST) -> None:
        """Flag a loop inside a ``select()`` that revalues tickets.

        Walks the loop/comprehension subtree (excluding nested loops,
        which report themselves) for calls to the valuation methods;
        one finding per loop, anchored at the loop header.
        """
        if self._select_depth == 0 or not self._applies("RPR010"):
            return
        inner_loops: set = set()
        for sub in ast.walk(node):
            if sub is not node and isinstance(
                    sub, (ast.For, ast.While, *_COMPREHENSIONS)):
                inner_loops.update(id(child) for child in ast.walk(sub))
        for sub in ast.walk(node):
            if id(sub) in inner_loops:
                continue
            if isinstance(sub, ast.Call) and \
                    isinstance(sub.func, ast.Attribute) and \
                    sub.func.attr in _VALUATION_METHODS:
                self._report(
                    "RPR010", node,
                    f"ticket valuation .{sub.func.attr}() inside a loop "
                    f"in select(): every draw rescans the ledger",
                )
                return

    # -- RPR006: hand-rolled retry loops -----------------------------------

    def visit_While(self, node: ast.While) -> None:
        self._check_per_draw_revaluation(node)
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_Try(self, node: ast.Try) -> None:
        if self._loop_depth > 0 and any(
            _continues_loop(handler.body) for handler in node.handlers
        ):
            self._report(
                "RPR006", node,
                "hand-rolled retry: loop swallows an exception and "
                "continues",
            )
        self.generic_visit(node)

    # -- RPR004: float equality on ticket quantities -----------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        if any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            for side in [node.left, *node.comparators]:
                ident = _mentions_amount(side)
                if ident is not None:
                    self._report(
                        "RPR004", node,
                        f"exact ==/!= comparison on ticket quantity "
                        f"{ident!r}",
                    )
                    break
        self.generic_visit(node)

    # -- RPR007 (b): snapshot-coverage audit -------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        module = module_of(self.path)
        entry = _snapshot_coverage().get(f"{module}.{node.name}") \
            if module is not None else None
        if entry is not None:
            known = set(entry["covered"]) | set(entry["transient"])
            for name, attr_node in sorted(_self_assignments(node).items()):
                if name not in known:
                    self._report(
                        "RPR007", attr_node,
                        f"attribute self.{name} of {node.name} is neither "
                        f"captured by snapshot_state() nor declared "
                        f"transient in the snapshot-coverage registry",
                    )
        self._check_recorder_sink(node, module)
        self.generic_visit(node)

    # -- RPR009: recorder sink surface audit -------------------------------

    def _check_recorder_sink(self, node: ast.ClassDef,
                             module: Optional[str]) -> None:
        if module is None:
            return
        sinks, surface = _recorder_surface()
        if f"{module}.{node.name}" not in sinks:
            return
        defined = {
            member.name for member in node.body
            if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        missing = [name for name in surface if name not in defined]
        if missing:
            self._report(
                "RPR009", node,
                f"recorder sink {node.name} does not define event "
                f"method(s) {', '.join(missing)} (inheriting a no-op "
                f"is not declaring the surface)",
            )

    # -- RPR005: mutable default arguments ---------------------------------

    def _check_defaults(self, node) -> None:
        args = node.args
        for default in [*args.defaults, *args.kw_defaults]:
            if default is None:
                continue
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set")
            )
            if mutable:
                self._report(
                    "RPR005", default,
                    f"mutable default argument in {node.name}()",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        in_select = node.name == "select"
        if in_select:
            self._select_depth += 1
        self.generic_visit(node)
        if in_select:
            self._select_depth -= 1

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)


# -- RPR011: undeclared module-level mutable state ---------------------------


def _is_mutable_container(value: Optional[ast.AST]) -> bool:
    # Literal containers and constructor calls only: comprehension
    # results are derived data, not the registry pattern RPR011 hunts.
    if isinstance(value, (ast.Dict, ast.List, ast.Set)):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        return name in _MUTABLE_CONTAINER_CALLS
    return False


def _check_module_state(tree: ast.Module, path: str, zone: Optional[str],
                        lines: Sequence[str]) -> List[Finding]:
    """RPR011: module-scope mutable containers need an ownership
    declaration (inline ``# shard:`` marker with a justification, or a
    ``[globals]`` entry in the shardmap spec)."""
    zones = RULES["RPR011"].zones
    assert zones is not None
    if zone is None or zone not in zones:
        return []
    from repro.analysis.shardspec import MARKER_RE

    module = module_of(path)
    declared = _shardmap_globals()
    findings: List[Finding] = []
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not _is_mutable_container(value):
            continue
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            if name.startswith("__") and name.endswith("__"):
                continue  # __all__ and friends are interface, not state
            if module is not None and f"{module}.{name}" in declared:
                continue
            marker = None
            if 1 <= node.lineno <= len(lines):
                marker = MARKER_RE.search(lines[node.lineno - 1])
            if marker is not None and marker.group(2):
                continue
            hint = ("has a '# shard:' marker without a justification"
                    if marker is not None else
                    "has no ownership declaration")
            findings.append(Finding(
                path, node.lineno, node.col_offset, "RPR011",
                f"module-level mutable container {name!r} {hint} "
                f"in deterministic zone {zone!r}"))
    return findings


# -- suppression hygiene and inventory ---------------------------------------


@dataclass(frozen=True)
class Suppression:
    """One active ``# repro: noqa`` comment."""

    path: str
    line: int
    codes: Tuple[str, ...]   # () means a bare noqa (suppresses all rules)
    justification: str       # "" when missing (an RPR000 finding)

    def format(self) -> str:
        codes = ",".join(self.codes) if self.codes else "*"
        note = self.justification or "NO JUSTIFICATION"
        return f"{self.path}:{self.line}: noqa[{codes}] -- {note}"


def iter_suppressions(source: str, path: Union[str, Path]) \
        -> List[Suppression]:
    """Every noqa comment in ``source``, via the token stream.

    Tokenizing (rather than regex-scanning raw lines) keeps noqa text
    inside docstrings and string literals from being miscounted as
    suppressions -- this module's own docstring mentions the syntax.
    """
    import io
    import tokenize

    suppressions: List[Suppression] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _NOQA_FULL_RE.search(token.string)
            if match is None:
                continue
            codes: Tuple[str, ...] = ()
            if match.group(1) is not None:
                codes = tuple(code.strip().upper()
                              for code in match.group(1).split(",")
                              if code.strip())
            suppressions.append(Suppression(
                str(path), token.start[0], codes,
                (match.group(2) or "").strip()))
    except tokenize.TokenError:
        pass  # unparseable tail; RPR000 already reports the syntax error
    return suppressions


def _suppression_hygiene(source: str, path: Union[str, Path]) \
        -> List[Finding]:
    """RPR000 (b): every suppression must explain itself.

    These findings are appended *after* noqa filtering, so a bare noqa
    cannot suppress the report about its own missing justification.
    """
    findings: List[Finding] = []
    for suppression in iter_suppressions(source, path):
        if suppression.justification:
            continue
        codes = ",".join(suppression.codes) if suppression.codes else ""
        findings.append(Finding(
            str(path), suppression.line, 0, "RPR000",
            f"suppression 'noqa[{codes}]' carries no justification; "
            f"append ' -- why this is safe' after the bracket"))
    return findings


def lint_source(source: str, path: Union[str, Path]) -> List[Finding]:
    """Lint one module's source text; ``path`` supplies the zone."""
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Finding(str(path), exc.lineno or 1, (exc.offset or 1) - 1,
                        "RPR000", f"syntax error: {exc.msg}")]
    visitor = _Visitor(str(path), zone_of(path))
    visitor.visit(tree)
    lines = source.splitlines()
    visitor.findings.extend(
        _check_module_state(tree, str(path), zone_of(path), lines))
    findings = [f for f in visitor.findings if not _suppressed(lines, f)]
    findings.extend(_suppression_hygiene(source, path))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def lint_file(path: Union[str, Path]) -> List[Finding]:
    """Lint one file on disk."""
    try:
        text = Path(path).read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [Finding(str(path), 1, 0, "RPR000",
                        f"cannot read file: {exc}")]
    return lint_source(text, path)


def lint_paths(paths: Iterable[Union[str, Path]]) -> List[Finding]:
    """Lint files and (recursively) directories of ``*.py`` sources."""
    findings: List[Finding] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            for file in sorted(entry.rglob("*.py")):
                findings.extend(lint_file(file))
        else:
            findings.extend(lint_file(entry))
    return findings


def collect_suppressions(paths: Iterable[Union[str, Path]]) \
        -> List[Suppression]:
    """Every noqa suppression under ``paths`` (``--list-suppressions``)."""
    suppressions: List[Suppression] = []
    files: List[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            files.extend(sorted(entry.rglob("*.py")))
        else:
            files.append(entry)
    for file in files:
        try:
            text = file.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            text = None  # lint_paths already reports unreadable files
        if text is not None:
            suppressions.extend(iter_suppressions(text, file))
    return suppressions
