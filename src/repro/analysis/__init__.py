"""Correctness tooling for the reproduction (``repro.analysis``).

Two halves keep the simulation honest:

* :mod:`repro.analysis.lint` -- an AST-based determinism lint with
  repo-specific rules (``RPR001``..``RPR005``) flagging nondeterminism
  hazards: stdlib RNGs, wall-clock reads, unordered iteration in
  scheduling paths, float hazards on ticket amounts, and mutable
  default arguments.
* :mod:`repro.analysis.sanitizer` -- an ASan-style runtime invariant
  checker that re-derives ticket conservation, currency-graph
  consistency, run-queue membership, and compensation-ticket lifetime
  after every scheduling quantum.

Command-line front end: ``python -m repro.analysis {lint,sanitize,rules}``.
See ``docs/ANALYSIS.md`` for the full rule and invariant reference.
"""

from repro.analysis.lint import Finding, RULES, Rule, lint_file, lint_paths, \
    lint_source
from repro.analysis.sanitizer import InvariantSanitizer, \
    install_autosanitize, sanitize_ledger, uninstall_autosanitize

__all__ = [
    "Finding",
    "RULES",
    "Rule",
    "lint_file",
    "lint_paths",
    "lint_source",
    "InvariantSanitizer",
    "install_autosanitize",
    "sanitize_ledger",
    "uninstall_autosanitize",
]
