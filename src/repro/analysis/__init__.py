"""Correctness tooling for the reproduction (``repro.analysis``).

Four layers keep the simulation honest:

* :mod:`repro.analysis.lint` -- an AST-based determinism lint with
  repo-specific rules (``RPR001``..``RPR013``) flagging nondeterminism
  hazards: stdlib RNGs, wall-clock reads, unordered iteration in
  scheduling paths, float hazards on ticket amounts, mutable default
  arguments, undeclared module-level state, and cross-owner telemetry
  mutation outside the ``shard.barrier`` seam.
* :mod:`repro.analysis.shardmap` -- a whole-program shard-safety
  analysis that classifies every mutable location in the deterministic
  zones as ``shard-local`` or ``barrier-shared`` against the committed
  ownership spec (``shardmap.toml``) and flags aliasing/ordering
  hazards (``SH001``..``SH008``) ahead of the multicore shard refactor.
* :mod:`repro.analysis.races` -- a dynamic determinism-race sanitizer:
  under ``REPRO_SANITIZE=1`` every kernel object is tagged with an
  owner token at attach and cross-owner mutation outside a declared
  barrier seam raises :class:`repro.errors.DeterminismRaceError`.
* :mod:`repro.analysis.sanitizer` -- an ASan-style runtime invariant
  checker that re-derives ticket conservation, currency-graph
  consistency, run-queue membership, and compensation-ticket lifetime
  after every scheduling quantum.

Command-line front end:
``python -m repro.analysis {lint,shardmap,sanitize,rules}``.
See ``docs/ANALYSIS.md`` for the full rule and invariant reference and
``docs/SHARDMAP.md`` for the generated ownership map.
"""

from repro.analysis.lint import Finding, RULES, Rule, Suppression, \
    collect_suppressions, iter_suppressions, lint_file, lint_paths, \
    lint_source
from repro.analysis.races import RaceTracker, tracker
from repro.analysis.report import fingerprint, render_json, render_sarif
from repro.analysis.sanitizer import InvariantSanitizer, \
    install_autosanitize, sanitize_ledger, uninstall_autosanitize
from repro.analysis.shardmap import ShardFinding, ShardMap, analyze_tree
from repro.analysis.shardspec import ShardSpec, SpecError, load_spec

__all__ = [
    "Finding",
    "RULES",
    "Rule",
    "Suppression",
    "collect_suppressions",
    "iter_suppressions",
    "lint_file",
    "lint_paths",
    "lint_source",
    "RaceTracker",
    "tracker",
    "fingerprint",
    "render_json",
    "render_sarif",
    "InvariantSanitizer",
    "install_autosanitize",
    "sanitize_ledger",
    "uninstall_autosanitize",
    "ShardFinding",
    "ShardMap",
    "analyze_tree",
    "ShardSpec",
    "SpecError",
    "load_spec",
]
