"""Runtime scheduler-invariant sanitizer (ASan-style, optional).

The lottery machinery rests on bookkeeping invariants that the paper
states but the code could silently drift from.  This module re-derives
them from first principles after every scheduling quantum and raises
:class:`~repro.errors.InvariantViolation` (naming the offending thread,
ticket, or currency) the moment one breaks.  Four invariant families
are checked:

1. **Ticket conservation** -- at any instant, the base-unit funding of
   all active clients sums to the ledger's active base tickets: value
   enters the system only through base tickets and flows losslessly
   through currencies (paper section 4.4).  Includes valuation-cache
   coherence and holder/ticket back-reference consistency.
2. **Currency graph** -- the funding graph is acyclic (section 3.3),
   every edge is mirrored on both endpoints, each currency's cached
   ``active_amount`` equals the recomputed sum over its active issued
   tickets, and backing tickets are active exactly when the funded
   currency has active issue.
3. **Run-queue membership** -- no thread is simultaneously blocked and
   runnable, the running thread is off the queue with its tickets
   deactivated (section 4.4), and queue membership matches thread
   state and ticket activation exactly.
4. **Compensation lifetime** -- at most one compensation ticket per
   client, granted tickets stay attached to live holders, and the
   running thread holds none (consumed on its next win, section 4.5).

Enabling it:

* explicitly: ``InvariantSanitizer().attach(kernel)``;
* for every kernel a process creates (how ``REPRO_SANITIZE=1`` wires
  the test suites): :func:`install_autosanitize`;
* one-shot ledger audits (CLI ``sanitize``): :func:`sanitize_ledger`.

Checks are O(tickets + currencies + threads) per quantum; ``stride=N``
checks every Nth quantum when that matters.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.core.tickets import Currency, Ledger, Ticket, TicketHolder
from repro.errors import InvariantViolation

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.thread import Thread

__all__ = [
    "InvariantSanitizer",
    "check_currency_graph",
    "check_ticket_conservation",
    "check_run_queue",
    "check_compensation",
    "sanitize_ledger",
    "install_autosanitize",
    "uninstall_autosanitize",
]

#: Tolerances for float bookkeeping drift (amounts are real-valued).
_REL_TOL = 1e-6
_ABS_TOL = 1e-6


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=_REL_TOL, abs_tol=_ABS_TOL)


# -- family 2: currency funding graph -------------------------------------


def check_currency_graph(ledger: Ledger) -> List[str]:
    """Acyclicity, edge mirroring, and active-amount bookkeeping."""
    violations: List[str] = []
    currencies = ledger.currencies()

    # Acyclicity over backing edges (currency -> denominations funding it),
    # via iterative three-colour DFS so a present cycle still terminates.
    WHITE, GRAY, BLACK = 0, 1, 2
    colour: Dict[int, int] = {}
    for root in currencies:
        if colour.get(id(root), WHITE) != WHITE:
            continue
        stack = [(root, iter(list(root.backing_currencies())))]
        colour[id(root)] = GRAY
        while stack:
            node, edges = stack[-1]
            advanced = False
            for child in edges:
                state = colour.get(id(child), WHITE)
                if state == GRAY:
                    violations.append(
                        f"currency funding graph has a cycle through "
                        f"{child.name!r} (reached from {node.name!r})"
                    )
                elif state == WHITE:
                    colour[id(child)] = GRAY
                    stack.append((child, iter(list(child.backing_currencies()))))
                    advanced = True
                    break
            if not advanced:
                colour[id(node)] = BLACK
                stack.pop()

    for currency in currencies:
        # Edge mirroring: issued tickets denominate here; backing tickets
        # really target this currency.
        for ticket in currency.issued:
            if ticket.currency is not currency:
                violations.append(
                    f"ticket {ticket!r} on {currency.name!r}'s issued list "
                    f"is denominated in {ticket.currency.name!r}"
                )
            if isinstance(ticket.target, Currency) and \
                    all(t is not ticket for t in ticket.target.backing):
                violations.append(
                    f"ticket {ticket!r} funds currency "
                    f"{ticket.target.name!r} but is missing from its "
                    f"backing list"
                )
            if ticket.target is None and ticket.active:
                violations.append(
                    f"active orphan ticket {ticket!r} in currency "
                    f"{currency.name!r} funds nothing"
                )
        for ticket in currency.backing:
            if ticket.target is not currency:
                violations.append(
                    f"ticket {ticket!r} on {currency.name!r}'s backing "
                    f"list targets {getattr(ticket.target, 'name', None)!r}"
                )
            # Backing activation mirrors the funded currency's activity
            # (paper section 4.4: zero <-> non-zero transitions propagate).
            if ticket.active != (currency.active_amount > 0):
                violations.append(
                    f"backing ticket {ticket!r} of currency "
                    f"{currency.name!r} is "
                    f"{'active' if ticket.active else 'inactive'} while the "
                    f"currency's active amount is {currency.active_amount:g}"
                )
        recomputed = sum(t.amount for t in currency.issued if t.active)
        if not _close(recomputed, currency.active_amount):
            violations.append(
                f"currency {currency.name!r} active-amount bookkeeping "
                f"drifted: cached {currency.active_amount:g}, recomputed "
                f"{recomputed:g}"
            )
    return violations


# -- family 1: ticket conservation ----------------------------------------


def check_ticket_conservation(ledger: Ledger) -> List[str]:
    """Client funding sums to the active base issue; caches are coherent."""
    violations: List[str] = []
    holders: Dict[int, TicketHolder] = {}

    for currency in ledger.currencies():
        if not currency.is_base:
            recomputed = sum(t.base_value() for t in currency.backing)
            if not _close(currency.base_value(), recomputed):
                violations.append(
                    f"currency {currency.name!r} cached base value "
                    f"{currency.base_value():g} != recomputed {recomputed:g} "
                    f"(stale valuation cache)"
                )
        for ticket in currency.issued:
            target = ticket.target
            if isinstance(target, TicketHolder):
                holders[id(target)] = target
                if all(t is not ticket for t in target.tickets):
                    violations.append(
                        f"ticket {ticket!r} funds holder {target.name!r} "
                        f"but is missing from its ticket list"
                    )

    for holder in holders.values():
        for ticket in holder.tickets:
            if ticket.target is not holder:
                violations.append(
                    f"holder {holder.name!r} lists ticket {ticket!r} that "
                    f"targets {getattr(ticket.target, 'name', None)!r}"
                )
            if ticket.active != holder.competing:
                violations.append(
                    f"holder {holder.name!r} is "
                    f"{'competing' if holder.competing else 'not competing'} "
                    f"but its ticket {ticket!r} is "
                    f"{'active' if ticket.active else 'inactive'}"
                )

    total_funding = sum(h.funding() for h in holders.values())
    active_base = ledger.base.active_amount
    if not _close(total_funding, active_base):
        violations.append(
            f"ticket conservation violated: active client funding "
            f"{total_funding:g} base units != active base issue "
            f"{active_base:g}"
        )
    return violations


# -- family 3: run-queue membership ----------------------------------------


def check_run_queue(kernel: "Kernel") -> List[str]:
    """Thread state, queue membership, and ticket activation agree."""
    from repro.kernel.thread import ThreadState

    violations: List[str] = []
    policy = kernel.policy
    queued = policy.runnable_threads()
    queued_ids = set()
    for thread in queued:
        if id(thread) in queued_ids:
            violations.append(
                f"thread {thread.name!r} appears twice in the run queue"
            )
        queued_ids.add(id(thread))
        if thread.state is not ThreadState.RUNNABLE:
            violations.append(
                f"thread {thread.name!r} is on the run queue while "
                f"{thread.state.value} (no thread may be both "
                f"{thread.state.value} and runnable)"
            )

    running = kernel.running
    if running is not None:
        if id(running) in queued_ids:
            violations.append(
                f"running thread {running.name!r} is still on the run queue"
            )
        if running.state is not ThreadState.RUNNING:
            violations.append(
                f"kernel.running is {running.name!r} but its state is "
                f"{running.state.value}"
            )

    for thread in kernel.threads:
        if thread.kernel is not kernel:
            continue  # migrated to another cluster node
        on_queue = id(thread) in queued_ids
        if thread.state is ThreadState.RUNNABLE and not on_queue:
            violations.append(
                f"thread {thread.name!r} is runnable but absent from the "
                f"run queue"
            )
        if thread.state is ThreadState.RUNNING and thread is not running:
            violations.append(
                f"thread {thread.name!r} claims to be running but is not "
                f"kernel.running"
            )
        if policy.uses_tickets:
            # Section 4.4: tickets are active exactly while the thread
            # waits on the run queue (the running thread's are not).
            if on_queue and not thread.competing:
                violations.append(
                    f"thread {thread.name!r} is on the run queue with "
                    f"deactivated tickets"
                )
            if thread.competing and not on_queue:
                violations.append(
                    f"thread {thread.name!r} has active tickets while off "
                    f"the run queue ({thread.state.value})"
                )
    return violations


# -- family 4: compensation-ticket lifetime ---------------------------------


def check_compensation(kernel: "Kernel") -> List[str]:
    """At most one live compensation ticket per client, none while running."""
    from repro.kernel.thread import Thread, ThreadState

    violations: List[str] = []
    by_holder: Dict[int, List[Ticket]] = {}
    names: Dict[int, str] = {}
    for currency in kernel.ledger.currencies():
        for ticket in currency.issued:
            if ticket.tag == "compensation" and \
                    isinstance(ticket.target, TicketHolder):
                by_holder.setdefault(id(ticket.target), []).append(ticket)
                names[id(ticket.target)] = ticket.target.name
    for key, tickets in by_holder.items():
        if len(tickets) > 1:
            violations.append(
                f"holder {names[key]!r} carries {len(tickets)} compensation "
                f"tickets (exactly one may be outstanding)"
            )

    manager = getattr(kernel.policy, "compensation", None)
    if manager is not None:
        for holder, ticket in manager.grants():
            if ticket.target is not holder:
                violations.append(
                    f"compensation ticket {ticket!r} tracked for "
                    f"{holder.name!r} no longer funds it"
                )
            if isinstance(holder, Thread):
                if holder.state is ThreadState.EXITED:
                    violations.append(
                        f"exited thread {holder.name!r} still holds a "
                        f"compensation ticket"
                    )
                if holder is kernel.running:
                    violations.append(
                        f"running thread {holder.name!r} holds a "
                        f"compensation ticket (must be consumed on the "
                        f"win that dispatched it)"
                    )
    return violations


# -- the sanitizer object ----------------------------------------------------


def sanitize_ledger(ledger: Ledger) -> List[str]:
    """One-shot audit of a bare ledger (graph + conservation families)."""
    return check_currency_graph(ledger) + check_ticket_conservation(ledger)


class InvariantSanitizer:
    """Attachable post-quantum checker for all four invariant families.

    Parameters
    ----------
    stride:
        Check every Nth quantum (1 = every quantum).
    raise_on_violation:
        Raise :class:`InvariantViolation` immediately (default); when
        False, violations accumulate on :attr:`violations` instead.
    """

    def __init__(self, stride: int = 1, raise_on_violation: bool = True) -> None:
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        self.stride = stride
        self.raise_on_violation = raise_on_violation
        self.quanta_seen = 0
        self.checks_run = 0
        self.violations: List[str] = []

    def attach(self, kernel: "Kernel") -> "InvariantSanitizer":
        """Hook this sanitizer into a kernel's post-quantum hook list."""
        kernel.invariant_hooks.append(self._after_quantum)
        return self

    def detach(self, kernel: "Kernel") -> None:
        """Remove this sanitizer's hook from a kernel."""
        try:
            kernel.invariant_hooks.remove(self._after_quantum)
        except ValueError:
            pass

    def _after_quantum(self, kernel: "Kernel", thread: "Thread",
                       outcome: str) -> None:
        self.quanta_seen += 1
        if self.quanta_seen % self.stride == 0:
            self.check(kernel)

    def check(self, kernel: "Kernel") -> List[str]:
        """Run every family now; raise or record any violations."""
        found = (
            check_currency_graph(kernel.ledger)
            + check_ticket_conservation(kernel.ledger)
            + check_run_queue(kernel)
            + check_compensation(kernel)
        )
        self.checks_run += 1
        if found:
            self.violations.extend(found)
            if self.raise_on_violation:
                raise InvariantViolation(
                    "scheduler invariants violated:\n  " + "\n  ".join(found)
                )
        return found


# -- process-wide wiring (REPRO_SANITIZE=1) ----------------------------------

_auto_hook: Optional[Callable] = None


def install_autosanitize(stride: int = 1) -> None:
    """Attach a fresh sanitizer to every kernel constructed from now on.

    Also arms the determinism-race tracker
    (:data:`repro.analysis.races.tracker`): thread lifecycle mutations
    are owner-checked against the dispatching kernel, trapping
    cross-owner mutation outside a declared barrier seam.

    Idempotent; used by ``tests/conftest.py`` under ``REPRO_SANITIZE=1``
    so the whole suite runs fully instrumented.
    """
    global _auto_hook
    if _auto_hook is not None:
        return
    from repro.analysis.races import tracker
    from repro.kernel import kernel as kernel_module

    def _hook(kernel: "Kernel") -> None:
        InvariantSanitizer(stride=stride).attach(kernel)

    kernel_module.add_construction_hook(_hook)
    tracker.activate()
    _auto_hook = _hook


def uninstall_autosanitize() -> None:
    """Stop instrumenting newly constructed kernels and disarm the
    determinism-race tracker."""
    global _auto_hook
    if _auto_hook is None:
        return
    from repro.analysis.races import tracker
    from repro.kernel import kernel as kernel_module

    kernel_module.remove_construction_hook(_auto_hook)
    tracker.deactivate()
    _auto_hook = None
