"""Command-line front end for the analysis tools.

Usage::

    python -m repro.analysis lint [PATH ...]        # exit 1 on findings
    python -m repro.analysis lint --format sarif --out lint.sarif src/repro
    python -m repro.analysis lint --baseline lint-baseline.json src/repro
    python -m repro.analysis lint --list-suppressions [PATH ...]
    python -m repro.analysis shardmap [--spec FILE] [--format text|json|sarif]
    python -m repro.analysis shardmap --write-doc docs/SHARDMAP.md
    python -m repro.analysis rules                  # rule reference
    python -m repro.analysis sanitize [--quanta N] [--seed S] [--inject]

``lint`` walks the given files/directories (default ``src/repro``) and
prints one line per finding.  ``shardmap`` runs the whole-program
shard-safety analysis: it classifies every mutable location in the
deterministic zones against ``src/repro/analysis/shardmap.toml`` and
exits nonzero on any hazard, undeclared, or misclassified location.
``sanitize`` runs a self-test scenario -- a compute hog, a yielding
interactive thread, and a sleeper funded through a sub-currency, with
mid-run ticket inflation -- under full invariant instrumentation;
``--inject`` deliberately corrupts the ledger mid-run to demonstrate
(and exit nonzero on) detection.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.lint import RULES, collect_suppressions, lint_paths
from repro.analysis.report import (filter_new, load_baseline, render_json,
                                   render_sarif, write_baseline)
from repro.analysis.sanitizer import InvariantSanitizer
from repro.errors import InvariantViolation


def _emit(text: str, out: Optional[str]) -> None:
    if out:
        Path(out).write_text(text, encoding="utf-8")
    else:
        sys.stdout.write(text)


def _lint_rule_meta():
    return {rule.id: (rule.slug, rule.summary) for rule in RULES.values()}


def _cmd_lint(args: argparse.Namespace) -> int:
    if args.list_suppressions:
        suppressions = collect_suppressions(args.paths)
        for suppression in suppressions:
            print(suppression.format())
        missing = sum(1 for s in suppressions if not s.justification)
        print(f"{len(suppressions)} suppression(s), "
              f"{missing} without justification", file=sys.stderr)
        return 1 if missing else 0

    findings = lint_paths(args.paths)
    if args.write_baseline:
        count = write_baseline(findings, args.write_baseline, tool="repro-lint")
        print(f"lint: wrote baseline with {count} fingerprint(s) "
              f"to {args.write_baseline}")
        return 0
    if args.baseline:
        findings = filter_new(findings, load_baseline(args.baseline))

    if args.format == "json":
        _emit(render_json(findings, tool="repro-lint"), args.out)
    elif args.format == "sarif":
        _emit(render_sarif(findings, tool="repro-lint",
                           rule_meta=_lint_rule_meta()), args.out)
    else:
        for finding in findings:
            print(finding.format())
    if findings:
        label = "new finding(s)" if args.baseline else "finding(s)"
        print(f"{len(findings)} {label}", file=sys.stderr)
        return 1
    if args.format == "text":
        print(f"lint: clean ({', '.join(str(p) for p in args.paths)})")
    return 0


def _cmd_shardmap(args: argparse.Namespace) -> int:
    from repro.analysis import shardmap as sm
    from repro.analysis.shardspec import ShardSpec, SpecError, load_spec

    # --emit-spec bootstraps a skeleton, so it runs against an empty
    # spec unless one was named explicitly; every other mode requires
    # the committed spec.
    try:
        if not args.emit_spec or args.spec:
            spec = load_spec(args.spec)
        else:
            spec = ShardSpec()
        shard_map = sm.analyze_tree(Path(args.root), spec=spec)
    except SpecError as exc:
        print(f"shardmap: {exc}", file=sys.stderr)
        return 2

    if args.emit_spec:
        _emit(sm.render_spec_skeleton(shard_map), args.out)
        return 0
    if args.write_doc:
        Path(args.write_doc).write_text(sm.render_doc(shard_map),
                                        encoding="utf-8")
        print(f"shardmap: wrote {args.write_doc}")

    findings = shard_map.findings
    if args.baseline:
        findings = filter_new(findings, load_baseline(args.baseline))
    if args.format == "json":
        _emit(render_json(findings, tool="repro-shardmap"), args.out)
    elif args.format == "sarif":
        meta = {rule_id: meta for rule_id, meta in sm.SHARD_RULES.items()}
        _emit(render_sarif(findings, tool="repro-shardmap", rule_meta=meta),
              args.out)
    else:
        _emit(sm.render_text(shard_map), args.out)
    if findings:
        print(f"{len(findings)} shard-safety finding(s)", file=sys.stderr)
        return 1
    return 0


def _cmd_rules(args: argparse.Namespace) -> int:
    for rule in RULES.values():
        zones = ", ".join(rule.zones) if rule.zones else "all of src/repro"
        print(f"{rule.id} ({rule.slug})")
        print(f"    flags: {rule.summary}")
        print(f"    fix:   {rule.fixit}")
        print(f"    zones: {zones}")
    print("suppress with: # repro: noqa[RPRxxx] -- justification")
    return 0


def _cmd_sanitize(args: argparse.Namespace) -> int:
    from repro.core.prng import ParkMillerPRNG
    from repro.core.tickets import Ledger
    from repro.kernel.kernel import Kernel
    from repro.kernel.syscalls import Compute, Sleep, YieldCPU
    from repro.schedulers.lottery_policy import LotteryPolicy
    from repro.sim.engine import Engine

    engine = Engine()
    ledger = Ledger()
    policy = LotteryPolicy(ledger, prng=ParkMillerPRNG(args.seed))
    kernel = Kernel(engine, policy, ledger=ledger, quantum=100.0)
    sanitizer = InvariantSanitizer().attach(kernel)

    currency = ledger.create_currency("selftest")
    backing = ledger.create_ticket(600, fund=currency)

    def hog(ctx):
        while True:
            yield Compute(100.0)

    def interactive(ctx):
        while True:
            yield Compute(20.0)
            yield YieldCPU()

    def sleeper(ctx):
        while True:
            yield Compute(10.0)
            yield Sleep(150.0)

    kernel.spawn(hog, "hog", tickets=400)
    kernel.spawn(interactive, "interactive", tickets=400)
    kernel.spawn(sleeper, "sleeper", tickets=600, currency=currency)

    horizon = args.quanta * 100.0
    # Mid-run inflation exercises the activation/valuation bookkeeping.
    engine.call_after(horizon / 2, lambda: backing.set_amount(900),
                      label="selftest-inflation")
    if args.inject:
        # Deliberate corruption: bump a currency's cached active amount
        # behind the ledger's back, proving the sanitizer catches it.
        engine.call_after(
            horizon / 2 + 50.0,
            lambda: setattr(currency, "_active_amount",
                            currency._active_amount + 1.0),
            label="selftest-corruption",
        )
    try:
        kernel.run_until(horizon)
    except InvariantViolation as violation:
        print(f"invariant violation detected at t={kernel.now:.0f}ms "
              f"after {sanitizer.checks_run} checks:")
        print(violation)
        if args.inject:
            # Detecting the planted corruption is the expected outcome.
            print("sanitize: --inject corruption detected, self-test passed")
            return 0
        return 1
    print(f"sanitize: all invariants held -- {sanitizer.checks_run} checks "
          f"over {sanitizer.quanta_seen} quanta, "
          f"{policy.lotteries_held} lotteries, "
          f"{policy.compensation.grants_issued} compensation grants")
    if args.inject:
        print("sanitize: --inject corruption was NOT detected", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Determinism lint and scheduler-invariant sanitizer.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    lint_parser = commands.add_parser(
        "lint", help="run the determinism lint over Python sources")
    lint_parser.add_argument("paths", nargs="*", default=["src/repro"],
                             help="files or directories (default: src/repro)")
    lint_parser.add_argument("--format", choices=["text", "json", "sarif"],
                             default="text", help="output format")
    lint_parser.add_argument("--out", metavar="FILE",
                             help="write the report here instead of stdout")
    lint_parser.add_argument("--baseline", metavar="FILE",
                             help="report only findings absent from this "
                                  "baseline file")
    lint_parser.add_argument("--write-baseline", metavar="FILE",
                             help="record current findings as the baseline "
                                  "and exit 0")
    lint_parser.add_argument("--list-suppressions", action="store_true",
                             help="inventory every active noqa suppression "
                                  "(exit 1 if any lacks a justification)")
    lint_parser.set_defaults(func=_cmd_lint)

    shardmap_parser = commands.add_parser(
        "shardmap", help="whole-program shard-safety analysis of the "
                         "deterministic zones")
    shardmap_parser.add_argument("--root", default="src/repro",
                                 help="package root to analyze "
                                      "(default: src/repro)")
    shardmap_parser.add_argument("--spec", metavar="FILE",
                                 help="shardmap spec (default: the "
                                      "committed shardmap.toml)")
    shardmap_parser.add_argument("--format",
                                 choices=["text", "json", "sarif"],
                                 default="text", help="output format")
    shardmap_parser.add_argument("--out", metavar="FILE",
                                 help="write the report here instead of "
                                      "stdout")
    shardmap_parser.add_argument("--baseline", metavar="FILE",
                                 help="report only findings absent from "
                                      "this baseline file")
    shardmap_parser.add_argument("--write-doc", metavar="FILE",
                                 help="also render the ownership map as "
                                      "markdown (docs/SHARDMAP.md)")
    shardmap_parser.add_argument("--emit-spec", action="store_true",
                                 help="print a spec skeleton covering every "
                                      "currently-unknown location")
    shardmap_parser.set_defaults(func=_cmd_shardmap)

    rules_parser = commands.add_parser(
        "rules", help="describe every lint rule and the noqa syntax")
    rules_parser.set_defaults(func=_cmd_rules)

    sanitize_parser = commands.add_parser(
        "sanitize", help="run the instrumented self-test scenario")
    sanitize_parser.add_argument("--quanta", type=int, default=200,
                                 help="scheduling quanta to simulate")
    sanitize_parser.add_argument("--seed", type=int, default=1,
                                 help="Park-Miller seed for the lottery")
    sanitize_parser.add_argument("--inject", action="store_true",
                                 help="corrupt the ledger mid-run to "
                                      "demonstrate detection")
    sanitize_parser.set_defaults(func=_cmd_sanitize)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
