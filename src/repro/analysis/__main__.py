"""Command-line front end for the determinism lint and the sanitizer.

Usage::

    python -m repro.analysis lint [PATH ...]        # exit 1 on findings
    python -m repro.analysis rules                  # rule reference
    python -m repro.analysis sanitize [--quanta N] [--seed S] [--inject]

``lint`` walks the given files/directories (default ``src/repro``) and
prints one line per finding.  ``sanitize`` runs a self-test scenario --
a compute hog, a yielding interactive thread, and a sleeper funded
through a sub-currency, with mid-run ticket inflation -- under full
invariant instrumentation; ``--inject`` deliberately corrupts the
ledger mid-run to demonstrate (and exit nonzero on) detection.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.lint import RULES, lint_paths
from repro.analysis.sanitizer import InvariantSanitizer
from repro.errors import InvariantViolation


def _cmd_lint(args: argparse.Namespace) -> int:
    findings = lint_paths(args.paths)
    for finding in findings:
        print(finding.format())
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"lint: clean ({', '.join(str(p) for p in args.paths)})")
    return 0


def _cmd_rules(args: argparse.Namespace) -> int:
    for rule in RULES.values():
        zones = ", ".join(rule.zones) if rule.zones else "all of src/repro"
        print(f"{rule.id} ({rule.slug})")
        print(f"    flags: {rule.summary}")
        print(f"    fix:   {rule.fixit}")
        print(f"    zones: {zones}")
    print("suppress with: # repro: noqa[RPRxxx] -- justification")
    return 0


def _cmd_sanitize(args: argparse.Namespace) -> int:
    from repro.core.prng import ParkMillerPRNG
    from repro.core.tickets import Ledger
    from repro.kernel.kernel import Kernel
    from repro.kernel.syscalls import Compute, Sleep, YieldCPU
    from repro.schedulers.lottery_policy import LotteryPolicy
    from repro.sim.engine import Engine

    engine = Engine()
    ledger = Ledger()
    policy = LotteryPolicy(ledger, prng=ParkMillerPRNG(args.seed))
    kernel = Kernel(engine, policy, ledger=ledger, quantum=100.0)
    sanitizer = InvariantSanitizer().attach(kernel)

    currency = ledger.create_currency("selftest")
    backing = ledger.create_ticket(600, fund=currency)

    def hog(ctx):
        while True:
            yield Compute(100.0)

    def interactive(ctx):
        while True:
            yield Compute(20.0)
            yield YieldCPU()

    def sleeper(ctx):
        while True:
            yield Compute(10.0)
            yield Sleep(150.0)

    kernel.spawn(hog, "hog", tickets=400)
    kernel.spawn(interactive, "interactive", tickets=400)
    kernel.spawn(sleeper, "sleeper", tickets=600, currency=currency)

    horizon = args.quanta * 100.0
    # Mid-run inflation exercises the activation/valuation bookkeeping.
    engine.call_after(horizon / 2, lambda: backing.set_amount(900),
                      label="selftest-inflation")
    if args.inject:
        # Deliberate corruption: bump a currency's cached active amount
        # behind the ledger's back, proving the sanitizer catches it.
        engine.call_after(
            horizon / 2 + 50.0,
            lambda: setattr(currency, "_active_amount",
                            currency._active_amount + 1.0),
            label="selftest-corruption",
        )
    try:
        kernel.run_until(horizon)
    except InvariantViolation as violation:
        print(f"invariant violation detected at t={kernel.now:.0f}ms "
              f"after {sanitizer.checks_run} checks:")
        print(violation)
        if args.inject:
            # Detecting the planted corruption is the expected outcome.
            print("sanitize: --inject corruption detected, self-test passed")
            return 0
        return 1
    print(f"sanitize: all invariants held -- {sanitizer.checks_run} checks "
          f"over {sanitizer.quanta_seen} quanta, "
          f"{policy.lotteries_held} lotteries, "
          f"{policy.compensation.grants_issued} compensation grants")
    if args.inject:
        print("sanitize: --inject corruption was NOT detected", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Determinism lint and scheduler-invariant sanitizer.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    lint_parser = commands.add_parser(
        "lint", help="run the determinism lint over Python sources")
    lint_parser.add_argument("paths", nargs="*", default=["src/repro"],
                             help="files or directories (default: src/repro)")
    lint_parser.set_defaults(func=_cmd_lint)

    rules_parser = commands.add_parser(
        "rules", help="describe every lint rule and the noqa syntax")
    rules_parser.set_defaults(func=_cmd_rules)

    sanitize_parser = commands.add_parser(
        "sanitize", help="run the instrumented self-test scenario")
    sanitize_parser.add_argument("--quanta", type=int, default=200,
                                 help="scheduling quanta to simulate")
    sanitize_parser.add_argument("--seed", type=int, default=1,
                                 help="Park-Miller seed for the lottery")
    sanitize_parser.add_argument("--inject", action="store_true",
                                 help="corrupt the ledger mid-run to "
                                      "demonstrate detection")
    sanitize_parser.set_defaults(func=_cmd_sanitize)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
