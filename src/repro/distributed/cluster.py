"""A distributed lottery scheduler over a cluster of simulated nodes.

Section 4.2 notes that the tree-of-partial-ticket-sums "can also be
used as the basis of a distributed lottery scheduler".  This module
builds that extension: several single-CPU nodes (each an independent
:class:`~repro.kernel.kernel.Kernel` with its own lottery policy) share
one virtual clock and one ticket ledger, and a **rebalancer** maintains
the global proportional-share guarantee by keeping the *per-node ticket
totals* balanced -- the distributed analogue of one big lottery.

Why ticket balancing is the right invariant: within a node, the local
lottery gives thread i the share  t_i / T_node.  If every node carries
(approximately) T_total / N tickets, that local share equals
N * t_i / T_total -- exactly thread i's entitlement of the cluster's N
CPUs.  Skewed placement breaks this (a thread on a crowded node is
under-served); migrating runnable threads to re-equalize node totals
restores it.  The rebalancer walks a :class:`TreeLottery` over node
ticket sums to find donors/recipients, which is the tree the paper
gestures at.

Scope: migration moves *runnable, compute-bound* threads.  Node-local
objects (ports, mutexes) pin a thread to its node; the rebalancer
skips threads flagged ``pinned``.

Failure model (see ``docs/FAULTS.md``): :meth:`Cluster.crash_node`
fails a node -- its running thread is preempted (in-flight work lost),
unpinned runnable threads are re-placed on the least-funded live node,
and everything that cannot move (pinned, blocked, created threads)
dies with the node, its tickets reclaimed from the shared ledger so
surviving threads' proportions immediately reflect the loss.
:meth:`Cluster.restart_node` brings the node back; the periodic
rebalancer repopulates it.  :meth:`Cluster.migrate_with_retry` wraps
:meth:`Cluster.migrate` in a bounded virtual-time backoff so a
migration racing a crash re-attempts (or aborts) instead of stranding
the thread.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.core.prng import ParkMillerPRNG
from repro.core.tickets import Ledger
from repro.errors import ReproError
from repro.kernel.kernel import Kernel
from repro.kernel.thread import Thread, ThreadBody, ThreadState
from repro.schedulers.lottery_policy import LotteryPolicy
from repro.sim.engine import Engine

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.retry import RetryPolicy, RetryState

__all__ = ["ClusterNode", "Cluster"]

#: Injection point for the determinism-race sanitizer (see
#: :mod:`repro.analysis.races`); assigned by ``tracker.activate()``
#: under ``REPRO_SANITIZE=1``.  Declared barrier-shared in
#: ``repro/analysis/shardmap.toml``.
_race_tracker = None


def _race_seam(name: str):
    """Barrier-seam context for cross-node moves (no-op when the
    sanitizer is inactive)."""
    if _race_tracker is not None and _race_tracker.active:
        return _race_tracker.seam(name)
    return nullcontext()


def _race_retag(thread: "Thread", kernel: "Kernel") -> None:
    """Transfer a thread's owner token to its new kernel."""
    if _race_tracker is not None and _race_tracker.active:
        _race_tracker.retag(thread, kernel)


class ClusterNode:
    """One CPU of the cluster: a kernel with its own lottery policy."""

    def __init__(self, name: str, engine: Engine, ledger: Ledger,
                 seed: int, quantum: float, recorder=None) -> None:
        self.name = name
        self.policy = LotteryPolicy(ledger, prng=ParkMillerPRNG(seed))
        self.kernel = Kernel(engine, self.policy, ledger=ledger,
                             quantum=quantum, recorder=recorder)
        #: Threads currently placed on this node (owned by the Cluster).
        self.threads: List[Thread] = []
        #: False while crashed; dead nodes are excluded from placement,
        #: rebalancing, and entitlement accounting.
        self.alive = True
        #: Times this node has crashed (fault accounting).
        self.crashes = 0

    def total_funding(self) -> float:
        """Nominal funding of all live threads placed here."""
        return sum(t.nominal_funding() for t in self.threads if t.alive)

    def snapshot_state(self) -> dict:
        """Typed state tree for checkpointing (see ``repro.checkpoint``)."""
        return {
            "name": self.name,
            "alive": self.alive,
            "crashes": self.crashes,
            "placed": [t.tid for t in self.threads],
            "kernel": self.kernel.snapshot_state(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ClusterNode {self.name!r} threads={len(self.threads)}"
                f" funding={self.total_funding():.0f}>")


class Cluster:
    """N lottery-scheduled nodes with funding-balancing migration.

    Parameters
    ----------
    nodes:
        Number of single-CPU nodes.
    quantum:
        Per-node scheduling quantum (ms).
    rebalance_period:
        How often the rebalancer runs; None disables migration (the
        ablation baseline).
    seed:
        Seeds the per-node lotteries and placement decisions.
    engine / ledger:
        Optional externally owned event loop and ticket ledger.  By
        default the cluster builds private ones; a sharded run passes
        its core's :class:`~repro.sim.engine.LoopCore` (and that core's
        ledger) so the whole cluster lives inside one shard core and
        advances through the core's epoch loop.
    """

    def __init__(self, nodes: int = 4, quantum: float = 100.0,
                 rebalance_period: Optional[float] = 1000.0,
                 seed: int = 1, recorder=None, engine=None,
                 ledger: Optional[Ledger] = None) -> None:
        if nodes <= 0:
            raise ReproError(f"cluster needs at least one node: {nodes}")
        if rebalance_period is not None and rebalance_period <= 0:
            raise ReproError("rebalance_period must be positive or None")
        self.engine = Engine() if engine is None else engine
        self.ledger = Ledger() if ledger is None else ledger
        #: Optional shared recorder wired into every node kernel; the
        #: replay harness (:mod:`repro.checkpoint.replay`) passes one to
        #: collect the cluster-wide dispatch stream in engine order.
        self.recorder = recorder
        self.nodes = [
            ClusterNode(f"node{i}", self.engine, self.ledger,
                        seed=seed + 101 * i, quantum=quantum,
                        recorder=recorder)
            for i in range(nodes)
        ]
        #: Optional :class:`repro.telemetry.probe.Telemetry` hub; set by
        #: ``Telemetry.instrument_cluster``.  Migrations, evacuations,
        #: and crash/restart transitions report spans through it.
        self.telemetry = None
        self.rebalance_period = rebalance_period
        self.migrations = 0
        #: Migrations rolled back after a failed destination enqueue.
        self.migration_rollbacks = 0
        # -- fault accounting (see crash_node / restart_node) ---------------
        self.node_crashes = 0
        self.node_restarts = 0
        self.threads_killed = 0
        self.evacuations = 0
        self._placement: Dict[int, ClusterNode] = {}
        if rebalance_period is not None:
            self.engine.call_after(rebalance_period, self._rebalance_tick,
                                   label="cluster-rebalance")

    # -- time -------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Cluster-wide virtual time (shared clock)."""
        return self.engine.now

    def run_until(self, time_ms: float) -> None:
        """Advance every node to ``time_ms``."""
        self.engine.run(until=time_ms)

    # -- observation ---------------------------------------------------------------

    def attach_recorder(self, sink) -> None:
        """Fan an event sink into every node kernel (see ``RecorderMux``).

        The per-node kernels share one virtual clock, so a single sink
        attached cluster-wide observes the global event stream in
        engine order -- the same property the replay recorder relies
        on, now available *alongside* any recorder the cluster was
        constructed with instead of displacing it.
        """
        for node in self.nodes:
            node.kernel.attach_recorder(sink)

    def detach_recorder(self, sink) -> None:
        """Remove a cluster-wide sink attached via :meth:`attach_recorder`."""
        for node in self.nodes:
            node.kernel.detach_recorder(sink)

    # -- placement -----------------------------------------------------------------

    @property
    def alive_nodes(self) -> List[ClusterNode]:
        """Nodes currently up, in declaration order."""
        return [node for node in self.nodes if node.alive]

    def spawn(self, body: ThreadBody, name: str, tickets: float,
              node: Optional[ClusterNode] = None,
              pinned: bool = False) -> Thread:
        """Create a funded thread, placing it on the least-funded live
        node (or an explicit ``node``, which must be up)."""
        if node is not None and not node.alive:
            raise ReproError(f"cannot spawn on crashed node {node.name}")
        target = node if node is not None else self._least_funded_node()
        thread = target.kernel.spawn(body, name, tickets=tickets)
        thread.pinned = pinned
        target.threads.append(thread)
        self._placement[thread.tid] = target
        return thread

    def node_of(self, thread: Thread) -> ClusterNode:
        """The node a thread currently runs on.

        Raises for exited threads: they hold no placement (placement
        maps are pruned on each rebalance tick and on crashes).
        """
        if not thread.alive:
            raise ReproError(
                f"thread {thread.name!r} has exited and is no longer "
                "placed on any node"
            )
        try:
            return self._placement[thread.tid]
        except KeyError:
            raise ReproError(
                f"thread {thread.name!r} is not placed on this cluster"
            ) from None

    def _least_funded_node(self) -> ClusterNode:
        candidates = self.alive_nodes
        if not candidates:
            raise ReproError("no live node available for placement")
        return min(candidates, key=lambda n: (n.total_funding(),
                                              len(n.threads)))

    # -- migration ---------------------------------------------------------------------

    def migrate(self, thread: Thread, destination: ClusterNode) -> bool:
        """Move a runnable, unpinned thread to another live node.

        Returns False (without side effects) when the thread cannot be
        moved right now -- running, blocked, exited, pinned, or either
        endpoint down.  A destination enqueue failure mid-move (the
        crash-races-migration window) rolls the thread back onto its
        source node, also returning False.
        """
        if not thread.alive:
            return False
        source = self.node_of(thread)
        if destination is source:
            return False
        if not source.alive or not destination.alive:
            return False
        if getattr(thread, "pinned", False):
            return False
        if thread.state is not ThreadState.RUNNABLE:
            return False
        with _race_seam("cluster.migrate"):
            source.policy.dequeue(thread)
            self._expire_compensation(thread, source)
            source.threads.remove(thread)
            thread.kernel = destination.kernel
            _race_retag(thread, destination.kernel)
            destination.threads.append(thread)
            self._placement[thread.tid] = destination
            try:
                destination.policy.enqueue(thread)
            except ReproError:
                # Destination refused mid-move: undo every step above so
                # the thread lands back on its source run queue intact.
                destination.threads.remove(thread)
                thread.kernel = source.kernel
                _race_retag(thread, source.kernel)
                self._placement[thread.tid] = source
                source.threads.append(thread)
                source.policy.enqueue(thread)
                self.migration_rollbacks += 1
                return False
            destination.kernel._schedule_dispatch()
        self.migrations += 1
        if self.telemetry is not None:
            self.telemetry.on_migration(thread, source.name, destination.name,
                                        self.now, kind="migrate")
        return True

    def migrate_with_retry(self, thread: Thread, destination: ClusterNode,
                           policy: Optional["RetryPolicy"] = None
                           ) -> "RetryState":
        """:meth:`migrate` under bounded virtual-time retry.

        Transient refusals (thread momentarily running, destination
        down pending restart) are re-attempted with exponential
        backoff; the retry aborts outright once it can never succeed
        (thread exited or pinned).  Returns the live
        :class:`~repro.faults.retry.RetryState`.
        """
        from repro.faults.retry import ABORT, execute_with_retry

        def attempt():
            if not thread.alive or getattr(thread, "pinned", False):
                return ABORT
            return self.migrate(thread, destination)

        return execute_with_retry(self.engine, attempt, policy=policy,
                                  label=f"migrate-retry:{thread.name}")

    def _expire_compensation(self, thread: Thread, source: ClusterNode) -> None:
        """Revoke source-granted compensation before a thread moves.

        Compensation managers are per-node; a compensation ticket
        granted by the source policy would never be revoked by the
        destination's ``on_quantum_start``, permanently inflating the
        migrated thread (and tripping the sanitizer's lifetime check).
        """
        compensation = source.policy.compensation
        if compensation is not None:
            compensation.on_holder_removed(thread)

    def _rebalance_tick(self) -> None:
        """Greedy funding balancing: richest node donates to poorest.

        When no single thread can move without overshooting (every
        rich-node thread's funding exceeds the gap), a *swap* --
        exchanging one rich-node thread for a poorer one -- can still
        shrink it.  Both moves and swaps strictly reduce the
        richest-poorest spread, so rebalancing never oscillates.
        """
        self._prune_exited()
        alive = self.alive_nodes
        if len(alive) >= 2:
            for _ in range(len(alive)):
                ordered = sorted(alive, key=ClusterNode.total_funding)
                poorest, richest = ordered[0], ordered[-1]
                gap = richest.total_funding() - poorest.total_funding()
                if gap <= 0:
                    break
                candidate = self._best_donor(richest, gap)
                if candidate is not None:
                    if not self.migrate(candidate, poorest):
                        break
                    continue
                if not self._try_swap(richest, poorest, gap):
                    break
        assert self.rebalance_period is not None
        self.engine.call_after(self.rebalance_period, self._rebalance_tick,
                               label="cluster-rebalance")

    def _prune_exited(self) -> None:
        """Drop exited threads from placement maps.

        Threads that exit (or are killed) between ticks would otherwise
        linger in ``node.threads`` and ``_placement`` forever.
        """
        for node in self.nodes:
            dead = [t for t in node.threads if not t.alive]
            for thread in dead:
                node.threads.remove(thread)
                self._placement.pop(thread.tid, None)

    # -- failures -----------------------------------------------------------------

    def crash_node(self, node: ClusterNode) -> None:
        """Fail a node, leaving it out of the cluster until restart.

        The running thread is preempted (its in-flight segment is
        lost); unpinned RUNNABLE threads are re-placed on the
        least-funded live node; every other thread placed here
        (pinned, blocked, or not yet started) dies with the node and
        its tickets are reclaimed from the shared ledger.
        """
        if not node.alive:
            raise ReproError(f"node {node.name} is already down")
        node.alive = False
        node.crashes += 1
        self.node_crashes += 1
        with _race_seam("cluster.crash"):
            node.kernel.preempt_running()
            survivors = self.alive_nodes
            for thread in list(node.threads):
                if not thread.alive:
                    node.threads.remove(thread)
                    self._placement.pop(thread.tid, None)
                    continue
                movable = (thread.state is ThreadState.RUNNABLE
                           and not getattr(thread, "pinned", False))
                if movable and survivors:
                    self._evacuate(thread, node)
                else:
                    node.kernel.kill(thread)
                    node.threads.remove(thread)
                    self._placement.pop(thread.tid, None)
                    self.threads_killed += 1

    def restart_node(self, node: ClusterNode) -> None:
        """Bring a crashed node back into placement and rebalancing.

        The node returns empty; the periodic rebalancer repopulates it
        on its next tick (with ``rebalance_period=None`` it only
        receives newly spawned or explicitly migrated threads).
        """
        if node.alive:
            raise ReproError(f"node {node.name} is already up")
        node.alive = True
        self.node_restarts += 1

    def _evacuate(self, thread: Thread, source: ClusterNode) -> None:
        """Re-place one runnable thread off a crashing node."""
        with _race_seam("cluster.evacuate"):
            source.policy.dequeue(thread)
            self._expire_compensation(thread, source)
            source.threads.remove(thread)
            destination = self._least_funded_node()
            thread.kernel = destination.kernel
            _race_retag(thread, destination.kernel)
            destination.threads.append(thread)
            self._placement[thread.tid] = destination
            destination.policy.enqueue(thread)
            destination.kernel._schedule_dispatch()
        self.evacuations += 1
        if self.telemetry is not None:
            self.telemetry.on_migration(thread, source.name, destination.name,
                                        self.now, kind="evacuate")

    def _try_swap(self, richest: ClusterNode, poorest: ClusterNode,
                  gap: float) -> bool:
        """Exchange a rich-node thread for a poorer one to shrink the gap.

        Picks the movable pair whose funding difference best halves the
        gap (``0 < difference < gap`` keeps the reduction strict).  The
        cheaper thread moves first; if the richer thread then cannot
        move, the first move is undone so the tick leaves totals no
        worse than it found them.
        """
        best: Optional[Tuple[Thread, Thread]] = None
        best_score = float("inf")
        for rich_thread in self._movable_threads(richest):
            rich_funding = rich_thread.nominal_funding()
            for poor_thread in self._movable_threads(poorest):
                difference = rich_funding - poor_thread.nominal_funding()
                if difference <= 0 or difference >= gap:
                    continue
                score = abs(gap / 2 - difference)
                if score < best_score:
                    best_score = score
                    best = (rich_thread, poor_thread)
        if best is None:
            return False
        rich_thread, poor_thread = best
        if not self.migrate(poor_thread, richest):
            return False
        if not self.migrate(rich_thread, poorest):
            self.migrate(poor_thread, poorest)
            return False
        return True

    @staticmethod
    def _movable_threads(node: ClusterNode) -> List[Thread]:
        """Runnable, unpinned, positively funded threads on ``node``."""
        return [
            thread for thread in node.threads
            if thread.state is ThreadState.RUNNABLE
            and not getattr(thread, "pinned", False)
            and thread.nominal_funding() > 0
        ]

    @staticmethod
    def _best_donor(node: ClusterNode, gap: float) -> Optional[Thread]:
        """The movable thread that best halves the funding gap."""
        best: Optional[Thread] = None
        best_score = float("inf")
        for thread in node.threads:
            if thread.state is not ThreadState.RUNNABLE:
                continue
            if getattr(thread, "pinned", False):
                continue
            funding = thread.nominal_funding()
            if funding <= 0 or funding >= gap:
                # Moving more than the gap would overshoot and oscillate.
                continue
            score = abs(gap / 2 - funding)
            if score < best_score:
                best_score = score
                best = thread
        return best

    def snapshot_state(self) -> dict:
        """Typed state tree for checkpointing (see ``repro.checkpoint``).

        The cluster is the natural capture root for multi-node runs: it
        owns the shared engine and ledger, per-node kernels, and the
        placement map.
        """
        return {
            "engine": self.engine.snapshot_state(),
            "ledger": self.ledger.snapshot_state(),
            "rebalance_period": self.rebalance_period,
            "migrations": self.migrations,
            "migration_rollbacks": self.migration_rollbacks,
            "node_crashes": self.node_crashes,
            "node_restarts": self.node_restarts,
            "threads_killed": self.threads_killed,
            "evacuations": self.evacuations,
            "placement": {str(tid): node.name
                          for tid, node in sorted(self._placement.items())},
            "nodes": [node.snapshot_state() for node in self.nodes],
        }

    # -- measurement -----------------------------------------------------------------------

    def total_funding(self) -> float:
        """Aggregate nominal funding of all live cluster threads."""
        return sum(node.total_funding() for node in self.nodes)

    def _entitlements(self, elapsed_ms: float) -> Dict[int, float]:
        """Water-filling entitlements: a thread can use at most one CPU.

        Funding shares that would exceed one node's worth of CPU are
        capped at ``elapsed_ms`` and the surplus is redistributed among
        the uncapped threads, iteratively (progressive filling).
        """
        live = [t for node in self.nodes for t in node.threads if t.alive]
        entitled: Dict[int, float] = {}
        remaining = list(live)
        remaining_cpu = elapsed_ms * len(self.alive_nodes)
        while remaining:
            total = sum(t.nominal_funding() for t in remaining)
            if total <= 0:
                for thread in remaining:
                    entitled[thread.tid] = 0.0
                break
            capped = []
            for thread in remaining:
                share = thread.nominal_funding() / total
                if share * remaining_cpu > elapsed_ms + 1e-9:
                    capped.append(thread)
            if not capped:
                for thread in remaining:
                    share = thread.nominal_funding() / total
                    entitled[thread.tid] = share * remaining_cpu
                break
            for thread in capped:
                entitled[thread.tid] = elapsed_ms
                remaining.remove(thread)
                remaining_cpu -= elapsed_ms
        return entitled

    def fairness_report(self, elapsed_ms: float) -> List[Dict[str, float]]:
        """Per-thread observed vs entitled CPU over ``elapsed_ms``.

        Entitlement: the water-filled funding share of the cluster's
        aggregate CPU (N nodes x elapsed, one CPU max per thread).
        """
        entitlements = self._entitlements(elapsed_ms)
        rows = []
        for node in self.nodes:
            for thread in node.threads:
                if not thread.alive:
                    continue
                entitled = entitlements.get(thread.tid, 0.0)
                rows.append(
                    {
                        "thread": thread.name,
                        "node": node.name,
                        "funding": thread.nominal_funding(),
                        "cpu_ms": thread.cpu_time,
                        "entitled_ms": entitled,
                        "relative_error": (
                            abs(thread.cpu_time - entitled) / entitled
                            if entitled > 0 else 0.0
                        ),
                    }
                )
        return rows

    def max_relative_error(self, elapsed_ms: float) -> float:
        """Worst per-thread deviation from global entitlement."""
        rows = self.fairness_report(elapsed_ms)
        if not rows:
            return 0.0
        return max(row["relative_error"] for row in rows)
