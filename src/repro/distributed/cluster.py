"""A distributed lottery scheduler over a cluster of simulated nodes.

Section 4.2 notes that the tree-of-partial-ticket-sums "can also be
used as the basis of a distributed lottery scheduler".  This module
builds that extension: several single-CPU nodes (each an independent
:class:`~repro.kernel.kernel.Kernel` with its own lottery policy) share
one virtual clock and one ticket ledger, and a **rebalancer** maintains
the global proportional-share guarantee by keeping the *per-node ticket
totals* balanced -- the distributed analogue of one big lottery.

Why ticket balancing is the right invariant: within a node, the local
lottery gives thread i the share  t_i / T_node.  If every node carries
(approximately) T_total / N tickets, that local share equals
N * t_i / T_total -- exactly thread i's entitlement of the cluster's N
CPUs.  Skewed placement breaks this (a thread on a crowded node is
under-served); migrating runnable threads to re-equalize node totals
restores it.  The rebalancer walks a :class:`TreeLottery` over node
ticket sums to find donors/recipients, which is the tree the paper
gestures at.

Scope: migration moves *runnable, compute-bound* threads.  Node-local
objects (ports, mutexes) pin a thread to its node; the rebalancer
skips threads flagged ``pinned``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.prng import ParkMillerPRNG
from repro.core.tickets import Ledger
from repro.errors import ReproError
from repro.kernel.kernel import Kernel
from repro.kernel.thread import Thread, ThreadBody, ThreadState
from repro.schedulers.lottery_policy import LotteryPolicy
from repro.sim.engine import Engine

__all__ = ["ClusterNode", "Cluster"]


class ClusterNode:
    """One CPU of the cluster: a kernel with its own lottery policy."""

    def __init__(self, name: str, engine: Engine, ledger: Ledger,
                 seed: int, quantum: float) -> None:
        self.name = name
        self.policy = LotteryPolicy(ledger, prng=ParkMillerPRNG(seed))
        self.kernel = Kernel(engine, self.policy, ledger=ledger,
                             quantum=quantum)
        #: Threads currently placed on this node (owned by the Cluster).
        self.threads: List[Thread] = []

    def total_funding(self) -> float:
        """Nominal funding of all live threads placed here."""
        return sum(t.nominal_funding() for t in self.threads if t.alive)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ClusterNode {self.name!r} threads={len(self.threads)}"
                f" funding={self.total_funding():.0f}>")


class Cluster:
    """N lottery-scheduled nodes with funding-balancing migration.

    Parameters
    ----------
    nodes:
        Number of single-CPU nodes.
    quantum:
        Per-node scheduling quantum (ms).
    rebalance_period:
        How often the rebalancer runs; None disables migration (the
        ablation baseline).
    seed:
        Seeds the per-node lotteries and placement decisions.
    """

    def __init__(self, nodes: int = 4, quantum: float = 100.0,
                 rebalance_period: Optional[float] = 1000.0,
                 seed: int = 1) -> None:
        if nodes <= 0:
            raise ReproError(f"cluster needs at least one node: {nodes}")
        if rebalance_period is not None and rebalance_period <= 0:
            raise ReproError("rebalance_period must be positive or None")
        self.engine = Engine()
        self.ledger = Ledger()
        self.nodes = [
            ClusterNode(f"node{i}", self.engine, self.ledger,
                        seed=seed + 101 * i, quantum=quantum)
            for i in range(nodes)
        ]
        self.rebalance_period = rebalance_period
        self.migrations = 0
        self._placement: Dict[int, ClusterNode] = {}
        if rebalance_period is not None:
            self.engine.call_after(rebalance_period, self._rebalance_tick,
                                   label="cluster-rebalance")

    # -- time -------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Cluster-wide virtual time (shared clock)."""
        return self.engine.now

    def run_until(self, time_ms: float) -> None:
        """Advance every node to ``time_ms``."""
        self.engine.run(until=time_ms)

    # -- placement -----------------------------------------------------------------

    def spawn(self, body: ThreadBody, name: str, tickets: float,
              node: Optional[ClusterNode] = None,
              pinned: bool = False) -> Thread:
        """Create a funded thread, placing it on the least-funded node
        (or an explicit ``node``)."""
        target = node if node is not None else self._least_funded_node()
        thread = target.kernel.spawn(body, name, tickets=tickets)
        thread.pinned = pinned
        target.threads.append(thread)
        self._placement[thread.tid] = target
        return thread

    def node_of(self, thread: Thread) -> ClusterNode:
        """The node a thread currently runs on."""
        try:
            return self._placement[thread.tid]
        except KeyError:
            raise ReproError(
                f"thread {thread.name!r} is not placed on this cluster"
            ) from None

    def _least_funded_node(self) -> ClusterNode:
        return min(self.nodes, key=lambda n: (n.total_funding(),
                                              len(n.threads)))

    # -- migration ---------------------------------------------------------------------

    def migrate(self, thread: Thread, destination: ClusterNode) -> bool:
        """Move a runnable, unpinned thread to another node.

        Returns False (without side effects) when the thread cannot be
        moved right now -- running, blocked, exited, or pinned.
        """
        source = self.node_of(thread)
        if destination is source:
            return False
        if getattr(thread, "pinned", False):
            return False
        if thread.state is not ThreadState.RUNNABLE:
            return False
        source.policy.dequeue(thread)
        source.threads.remove(thread)
        thread.kernel = destination.kernel
        destination.threads.append(thread)
        self._placement[thread.tid] = destination
        destination.policy.enqueue(thread)
        destination.kernel._schedule_dispatch()
        self.migrations += 1
        return True

    def _rebalance_tick(self) -> None:
        """Greedy funding balancing: richest node donates to poorest."""
        for _ in range(len(self.nodes)):
            ordered = sorted(self.nodes, key=ClusterNode.total_funding)
            poorest, richest = ordered[0], ordered[-1]
            gap = richest.total_funding() - poorest.total_funding()
            if gap <= 0:
                break
            candidate = self._best_donor(richest, gap)
            if candidate is None:
                break
            if not self.migrate(candidate, poorest):
                break
        assert self.rebalance_period is not None
        self.engine.call_after(self.rebalance_period, self._rebalance_tick,
                               label="cluster-rebalance")

    @staticmethod
    def _best_donor(node: ClusterNode, gap: float) -> Optional[Thread]:
        """The movable thread that best halves the funding gap."""
        best: Optional[Thread] = None
        best_score = float("inf")
        for thread in node.threads:
            if thread.state is not ThreadState.RUNNABLE:
                continue
            if getattr(thread, "pinned", False):
                continue
            funding = thread.nominal_funding()
            if funding <= 0 or funding >= gap:
                # Moving more than the gap would overshoot and oscillate.
                continue
            score = abs(gap / 2 - funding)
            if score < best_score:
                best_score = score
                best = thread
        return best

    # -- measurement -----------------------------------------------------------------------

    def total_funding(self) -> float:
        """Aggregate nominal funding of all live cluster threads."""
        return sum(node.total_funding() for node in self.nodes)

    def _entitlements(self, elapsed_ms: float) -> Dict[int, float]:
        """Water-filling entitlements: a thread can use at most one CPU.

        Funding shares that would exceed one node's worth of CPU are
        capped at ``elapsed_ms`` and the surplus is redistributed among
        the uncapped threads, iteratively (progressive filling).
        """
        live = [t for node in self.nodes for t in node.threads if t.alive]
        entitled: Dict[int, float] = {}
        remaining = list(live)
        remaining_cpu = elapsed_ms * len(self.nodes)
        while remaining:
            total = sum(t.nominal_funding() for t in remaining)
            if total <= 0:
                for thread in remaining:
                    entitled[thread.tid] = 0.0
                break
            capped = []
            for thread in remaining:
                share = thread.nominal_funding() / total
                if share * remaining_cpu > elapsed_ms + 1e-9:
                    capped.append(thread)
            if not capped:
                for thread in remaining:
                    share = thread.nominal_funding() / total
                    entitled[thread.tid] = share * remaining_cpu
                break
            for thread in capped:
                entitled[thread.tid] = elapsed_ms
                remaining.remove(thread)
                remaining_cpu -= elapsed_ms
        return entitled

    def fairness_report(self, elapsed_ms: float) -> List[Dict[str, float]]:
        """Per-thread observed vs entitled CPU over ``elapsed_ms``.

        Entitlement: the water-filled funding share of the cluster's
        aggregate CPU (N nodes x elapsed, one CPU max per thread).
        """
        entitlements = self._entitlements(elapsed_ms)
        rows = []
        for node in self.nodes:
            for thread in node.threads:
                if not thread.alive:
                    continue
                entitled = entitlements.get(thread.tid, 0.0)
                rows.append(
                    {
                        "thread": thread.name,
                        "node": node.name,
                        "funding": thread.nominal_funding(),
                        "cpu_ms": thread.cpu_time,
                        "entitled_ms": entitled,
                        "relative_error": (
                            abs(thread.cpu_time - entitled) / entitled
                            if entitled > 0 else 0.0
                        ),
                    }
                )
        return rows

    def max_relative_error(self, elapsed_ms: float) -> float:
        """Worst per-thread deviation from global entitlement."""
        rows = self.fairness_report(elapsed_ms)
        if not rows:
            return 0.0
        return max(row["relative_error"] for row in rows)
