"""Distributed lottery scheduling across simulated cluster nodes."""

from repro.distributed.cluster import Cluster, ClusterNode

__all__ = ["Cluster", "ClusterNode"]
