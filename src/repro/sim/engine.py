"""Discrete-event simulation engine.

The engine owns the virtual clock and the event queue and exposes the
three operations everything else is built from: schedule a callback
after a delay, schedule at an absolute time, and run (optionally until
a horizon).  The simulated microkernel, IPC layer, workloads, and
experiments all advance time exclusively through this engine, so a
whole machine's history is a single deterministic event sequence.

The mechanics live in :class:`LoopCore`, one self-contained event
loop: clock, agenda, sequence counter, and tid allocator.  A classic
:class:`Engine` is exactly one core.  The sharded multicore engine
(:mod:`repro.shard`) instead instantiates one ``LoopCore`` per
simulated machine and interleaves or parallelizes them between epoch
barriers; because every counter a core owns is core-local, the state a
core evolves is a pure function of its own history plus the barrier
payloads it receives -- never of which shard or process executed it.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock
from repro.sim.events import Event, EventQueue

__all__ = ["Engine", "LoopCore"]


class LoopCore:
    """One deterministic event loop: clock + agenda + local allocators.

    ``core_id`` is the core's stable identity inside a sharded engine
    (canonical merge order); a standalone :class:`Engine` is core 0.
    All counters (event sequence, tid allocation, events processed)
    are local to the core, which is what makes a multi-core universe's
    state independent of shard placement and execution backend.
    """

    def __init__(self, start_time: float = 0.0, core_id: int = 0) -> None:
        self.clock = VirtualClock(start_time)
        self.core_id = core_id
        self._queue = EventQueue()
        self._running = False
        #: Number of events processed (overhead accounting).
        self.events_processed = 0
        # Thread-id allocator.  Scoped to the core (not the process)
        # so a recipe re-executed for checkpoint restore assigns the
        # same tids as the original run: one core, one deterministic
        # universe slice.
        self._next_tid = 0

    # -- time ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time (milliseconds)."""
        return self.clock.now

    def next_tid(self) -> int:
        """Allocate the next thread id in this core's universe."""
        self._next_tid += 1
        return self._next_tid

    # -- scheduling ----------------------------------------------------------------

    def call_at(self, time: float, callback: Callable[..., None],
                label: str = "", args: Tuple[Any, ...] = ()) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``.

        ``args`` lets hot callers schedule bound methods directly
        instead of allocating a closure per event.
        """
        if time < self.clock.now - 1e-9:
            raise SimulationError(
                f"cannot schedule in the past: now={self.clock.now}, asked={time}"
            )
        return self._queue.push(max(time, self.clock.now), callback, label, args)

    def call_after(
        self, delay: float, callback: Callable[..., None], label: str = "",
        args: Tuple[Any, ...] = (),
    ) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` milliseconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self.clock.now + delay, callback, label, args)

    def call_soon(self, callback: Callable[..., None], label: str = "",
                  args: Tuple[Any, ...] = ()) -> Event:
        """Schedule ``callback`` at the current instant (after pending
        same-time events already in the queue)."""
        return self.call_at(self.clock.now, callback, label, args)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (idempotent)."""
        self._queue.cancel(event)

    # -- execution -------------------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Process events in order until the queue drains.

        ``until`` stops the run once the next event lies strictly beyond
        that horizon (the clock is advanced *to* the horizon so
        measurements over [0, until) are well-defined).  ``max_events``
        is a runaway guard for tests.
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        processed = 0
        try:
            while True:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until + 1e-9:
                    break
                event = self._queue.pop()
                assert event is not None
                self.clock.advance_to(event.time)
                event.fire()
                self.events_processed += 1
                processed += 1
                if max_events is not None and processed >= max_events:
                    raise SimulationError(
                        f"run exceeded max_events={max_events}; likely a livelock"
                    )
            if until is not None:
                self.clock.advance_to(until)
        finally:
            self._running = False

    # -- epoch execution (sharded engine) ------------------------------------------

    def peek_time(self) -> Optional[float]:
        """Time of the core's earliest live event (None when drained)."""
        return self._queue.peek_time()

    def step(self) -> bool:
        """Fire exactly the next live event; False when the core is idle.

        The single-loop reference driver of :mod:`repro.shard` uses
        this to interleave several cores through one loop while each
        core still advances its *own* clock and counters.
        """
        event = self._queue.pop()
        if event is None:
            return False
        self.clock.advance_to(event.time)
        event.fire()
        self.events_processed += 1
        return True

    def run_before(self, horizon: float, max_events: Optional[int] = None) -> int:
        """Process every event strictly before ``horizon`` (exclusive).

        The epoch body of the sharded engine: events at exactly the
        barrier time belong to the *next* epoch (after barrier payloads
        are applied), so the window is half-open.  The clock is NOT
        advanced to the horizon -- :meth:`advance_clock` does that at
        the barrier.  Returns the number of events fired.
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        processed = 0
        try:
            while True:
                next_time = self._queue.peek_time()
                if next_time is None or next_time >= horizon - 1e-9:
                    break
                event = self._queue.pop()
                assert event is not None
                self.clock.advance_to(event.time)
                event.fire()
                self.events_processed += 1
                processed += 1
                if max_events is not None and processed >= max_events:
                    raise SimulationError(
                        f"epoch exceeded max_events={max_events}; "
                        f"likely a livelock"
                    )
        finally:
            self._running = False
        return processed

    def advance_clock(self, time: float) -> None:
        """Advance the core clock to a barrier instant (monotonic)."""
        self.clock.advance_to(time)

    def pending(self) -> int:
        """Number of live events still queued."""
        return len(self._queue)

    def snapshot_state(self) -> dict:
        """Typed state tree for checkpointing (see ``repro.checkpoint``)."""
        return {
            "clock_ms": self.clock.now,
            "events_processed": self.events_processed,
            "next_tid": self._next_tid,
            "queue": self._queue.snapshot_state(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<{type(self).__name__} core={self.core_id} "
                f"now={self.clock.now:.3f}ms pending={self.pending()}>")


class Engine(LoopCore):
    """Deterministic discrete-event executor over a virtual clock.

    Exactly one :class:`LoopCore`: the classic single-loop engine every
    recipe, kernel, and experiment drives.  The sharded engine composes
    many cores instead; see :mod:`repro.shard`.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        super().__init__(start_time=start_time, core_id=0)
