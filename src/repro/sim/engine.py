"""Discrete-event simulation engine.

The engine owns the virtual clock and the event queue and exposes the
three operations everything else is built from: schedule a callback
after a delay, schedule at an absolute time, and run (optionally until
a horizon).  The simulated microkernel, IPC layer, workloads, and
experiments all advance time exclusively through this engine, so a
whole machine's history is a single deterministic event sequence.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock
from repro.sim.events import Event, EventQueue

__all__ = ["Engine"]


class Engine:
    """Deterministic discrete-event executor over a virtual clock."""

    def __init__(self, start_time: float = 0.0) -> None:
        self.clock = VirtualClock(start_time)
        self._queue = EventQueue()
        self._running = False
        #: Number of events processed (overhead accounting).
        self.events_processed = 0
        # Thread-id allocator.  Scoped to the engine (not the process)
        # so a recipe re-executed for checkpoint restore assigns the
        # same tids as the original run: one engine, one deterministic
        # universe.
        self._next_tid = 0

    # -- time ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time (milliseconds)."""
        return self.clock.now

    def next_tid(self) -> int:
        """Allocate the next thread id in this engine's universe."""
        self._next_tid += 1
        return self._next_tid

    # -- scheduling ----------------------------------------------------------------

    def call_at(self, time: float, callback: Callable[..., None],
                label: str = "", args: Tuple[Any, ...] = ()) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``.

        ``args`` lets hot callers schedule bound methods directly
        instead of allocating a closure per event.
        """
        if time < self.clock.now - 1e-9:
            raise SimulationError(
                f"cannot schedule in the past: now={self.clock.now}, asked={time}"
            )
        return self._queue.push(max(time, self.clock.now), callback, label, args)

    def call_after(
        self, delay: float, callback: Callable[..., None], label: str = "",
        args: Tuple[Any, ...] = (),
    ) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` milliseconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self.clock.now + delay, callback, label, args)

    def call_soon(self, callback: Callable[..., None], label: str = "",
                  args: Tuple[Any, ...] = ()) -> Event:
        """Schedule ``callback`` at the current instant (after pending
        same-time events already in the queue)."""
        return self.call_at(self.clock.now, callback, label, args)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (idempotent)."""
        self._queue.cancel(event)

    # -- execution -------------------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Process events in order until the queue drains.

        ``until`` stops the run once the next event lies strictly beyond
        that horizon (the clock is advanced *to* the horizon so
        measurements over [0, until) are well-defined).  ``max_events``
        is a runaway guard for tests.
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        processed = 0
        try:
            while True:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until + 1e-9:
                    break
                event = self._queue.pop()
                assert event is not None
                self.clock.advance_to(event.time)
                event.fire()
                self.events_processed += 1
                processed += 1
                if max_events is not None and processed >= max_events:
                    raise SimulationError(
                        f"run exceeded max_events={max_events}; likely a livelock"
                    )
            if until is not None:
                self.clock.advance_to(until)
        finally:
            self._running = False

    def pending(self) -> int:
        """Number of live events still queued."""
        return len(self._queue)

    def snapshot_state(self) -> dict:
        """Typed state tree for checkpointing (see ``repro.checkpoint``)."""
        return {
            "clock_ms": self.clock.now,
            "events_processed": self.events_processed,
            "next_tid": self._next_tid,
            "queue": self._queue.snapshot_state(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Engine now={self.clock.now:.3f}ms pending={self.pending()}>"
