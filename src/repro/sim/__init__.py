"""Discrete-event simulation substrate (virtual clock, events, engine)."""

from repro.sim.clock import MS, SECONDS, VirtualClock
from repro.sim.engine import Engine
from repro.sim.events import Event, EventQueue

__all__ = ["Engine", "Event", "EventQueue", "MS", "SECONDS", "VirtualClock"]
