"""Priority event queue with stable ordering and cancellation.

Events fire in (time, sequence) order: two events scheduled for the
same instant fire in the order they were scheduled.  That determinism
matters -- the experiments assert exact reproducibility for a given
PRNG seed, which a tie-broken-by-hash heap would silently destroy.

Cancellation is O(1) lazy: a cancelled event stays in the heap but is
skipped when popped.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import SimulationError

__all__ = ["Event", "EventQueue"]


class Event:
    """A scheduled callback; hold the reference to be able to cancel.

    ``args`` are positional arguments delivered to ``callback`` at fire
    time; passing them here instead of closing over them lets hot paths
    (the kernel dispatch loop) schedule bound methods without allocating
    a lambda per event.  Events order themselves by ``(time, seq)``, so
    the queue's heap holds Event objects directly -- no wrapper tuple
    per entry.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "label")

    def __init__(
        self, time: float, seq: int, callback: Callable[..., None],
        label: str = "", args: Tuple[Any, ...] = (),
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: Diagnostic tag shown in traces ("dispatch", "wakeup", ...).
        self.label = label

    def cancel(self) -> None:
        """Prevent this event from firing (idempotent)."""
        self.cancelled = True

    def fire(self) -> None:
        """Invoke the callback with the staged arguments."""
        self.callback(*self.args)

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.3f} {self.label or self.callback!r} {state}>"


class EventQueue:
    """Binary-heap event queue keyed by (time, sequence)."""

    def __init__(self) -> None:
        # Heap of Event objects ordered by Event.__lt__ (time, seq) --
        # identical firing order to the historical (time, seq, event)
        # tuples without allocating a wrapper per push.
        self._heap: List[Event] = []
        # Plain integer counter (not itertools.count) so the scheduling
        # sequence position is part of the observable state tree.
        self._seq = 0
        self._live = 0

    def push(self, time: float, callback: Callable[..., None],
             label: str = "", args: Tuple[Any, ...] = ()) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual ``time``."""
        if time < 0:
            raise SimulationError(f"cannot schedule event at negative time {time}")
        event = Event(time, self._seq, callback, label, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or None if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event without removing it."""
        while self._heap:
            event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            return event.time
        return None

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event (idempotent)."""
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def __len__(self) -> int:
        return max(self._live, 0)

    def __bool__(self) -> bool:
        return self.peek_time() is not None

    def snapshot_state(self) -> Dict[str, Any]:
        """Typed state tree for checkpointing (see ``repro.checkpoint``).

        Callbacks are closures and cannot be serialized; the tree
        records the queue *shape* -- every live (time, seq, label)
        descriptor plus the sequence counter -- which is what restore
        verification compares after rebuilding a run by re-execution.
        """
        pending = [
            {"time": event.time, "seq": event.seq, "label": event.label}
            for event in sorted(self._heap)
            if not event.cancelled
        ]
        return {"seq": self._seq, "live": len(pending), "pending": pending}
