"""Virtual clock for the discrete-event simulator.

All simulation time is measured in **milliseconds** of virtual time, the
natural unit of the paper's experiments (100 ms Mach quantum, sub-second
fairness windows).  The clock only moves when the engine processes an
event; nothing in the simulator reads wall-clock time, which is what
makes runs exactly reproducible.
"""

from __future__ import annotations

from repro.errors import SimulationError

__all__ = ["VirtualClock", "MS", "SECONDS"]

#: One millisecond of virtual time (the base unit).
MS = 1.0

#: Milliseconds per second, for readable experiment configuration.
SECONDS = 1000.0


class VirtualClock:
    """Monotonically non-decreasing virtual time source."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SimulationError(f"clock cannot start at negative time {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    def advance_to(self, time: float) -> None:
        """Move the clock forward to ``time`` (backwards is an error)."""
        if time < self._now - 1e-9:
            raise SimulationError(
                f"clock cannot run backwards: at {self._now}, asked for {time}"
            )
        if time > self._now:
            self._now = time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now:.3f}ms)"
