"""Lottery-scheduled disk bandwidth (paper section 6 and footnote 7).

"A disk-based database could use lotteries to schedule disk bandwidth"
-- this module builds that substrate: a disk with a simple seek/rotate/
transfer service-time model and a request scheduler that picks, for
each service slot, the *client* whose queue to serve next.  The lottery
scheduler allocates disk bandwidth in proportion to client tickets;
FIFO and round-robin baselines ignore tickets.

The disk is engine-driven: requests arrive at virtual times, one
request is in service at a time, completion events trigger the next
scheduling decision.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.core.lottery import hold_lottery
from repro.core.prng import ParkMillerPRNG
from repro.errors import EmptyLotteryError, ReproError
from repro.sim.engine import Engine

__all__ = ["DiskRequest", "Disk", "LOTTERY", "FIFO", "ROUND_ROBIN"]

LOTTERY = "lottery"
FIFO = "fifo"
ROUND_ROBIN = "round-robin"


class DiskRequest:
    """One I/O request: client, target sector, transfer size in KB."""

    __slots__ = ("client", "sector", "size_kb", "submitted_at",
                 "started_at", "completed_at", "on_complete", "failed")

    def __init__(self, client: str, sector: int, size_kb: float,
                 submitted_at: float,
                 on_complete: Optional[Callable[["DiskRequest"], None]] = None) -> None:
        if sector < 0:
            raise ReproError(f"sector must be non-negative: {sector}")
        if size_kb <= 0:
            raise ReproError(f"transfer size must be positive: {size_kb}")
        self.client = client
        self.sector = sector
        self.size_kb = size_kb
        self.submitted_at = submitted_at
        self.started_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        self.on_complete = on_complete
        #: True when an injected I/O-error window failed this request.
        self.failed = False

    @property
    def response_time(self) -> Optional[float]:
        """Submission-to-completion latency (None while in flight)."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at


class Disk:
    """A single-spindle disk with per-client queues and a slot scheduler.

    Service-time model: ``seek_ms_per_1000_sectors * |distance| / 1000 +
    rotational_ms + size_kb / transfer_kb_per_ms``.

    Parameters
    ----------
    engine:
        Discrete-event engine providing virtual time.
    scheduler:
        LOTTERY (ticket-proportional), FIFO, or ROUND_ROBIN.
    tickets:
        client -> ticket count (used by the lottery scheduler; clients
        absent from the map default to 1 ticket).
    """

    def __init__(
        self,
        engine: Engine,
        scheduler: str = LOTTERY,
        tickets: Optional[Dict[str, float]] = None,
        prng: Optional[ParkMillerPRNG] = None,
        seek_ms_per_1000_sectors: float = 4.0,
        rotational_ms: float = 4.0,
        transfer_kb_per_ms: float = 20.0,
    ) -> None:
        if scheduler not in (LOTTERY, FIFO, ROUND_ROBIN):
            raise ReproError(f"unknown disk scheduler {scheduler!r}")
        self.engine = engine
        self.scheduler = scheduler
        self.tickets = dict(tickets or {})
        self.prng = prng if prng is not None else ParkMillerPRNG(1)
        self.seek_ms_per_1000_sectors = seek_ms_per_1000_sectors
        self.rotational_ms = rotational_ms
        self.transfer_kb_per_ms = transfer_kb_per_ms

        self._queues: Dict[str, Deque[DiskRequest]] = {}
        self._fifo: Deque[DiskRequest] = deque()
        self._rr_order: Deque[str] = deque()
        self._head_sector = 0
        self._busy = False

        #: Fault seam: predicate deciding whether a request fails at
        #: completion time (installed by repro.faults.injector during
        #: injected I/O-error windows; None means all requests succeed).
        self.fault_policy: Optional[Callable[[DiskRequest], bool]] = None

        # -- statistics --------------------------------------------------------
        self.completed: Dict[str, List[DiskRequest]] = {}
        self.bytes_served: Dict[str, float] = {}
        self.io_errors: Dict[str, int] = {}
        self.busy_time = 0.0

    # -- client API -----------------------------------------------------------------

    def set_tickets(self, client: str, amount: float) -> None:
        """(Re)assign a client's disk tickets."""
        if amount < 0:
            raise ReproError(f"ticket amount must be non-negative: {amount}")
        self.tickets[client] = amount

    def submit(self, client: str, sector: int, size_kb: float,
               on_complete: Optional[Callable[[DiskRequest], None]] = None
               ) -> DiskRequest:
        """Queue a request; service begins immediately if the disk is idle."""
        request = DiskRequest(client, sector, size_kb, self.engine.now, on_complete)
        queue = self._queues.setdefault(client, deque())
        if not queue and client not in self._rr_order:
            self._rr_order.append(client)
        queue.append(request)
        self._fifo.append(request)
        if not self._busy:
            self._start_next()
        return request

    def pending(self) -> int:
        """Requests queued but not yet completed."""
        return sum(len(q) for q in self._queues.values()) + (1 if self._busy else 0)

    # -- scheduling -------------------------------------------------------------------

    def _pick_request(self) -> Optional[DiskRequest]:
        nonempty = [c for c, q in self._queues.items() if q]
        if not nonempty:
            return None
        if self.scheduler == FIFO:
            while self._fifo and self._fifo[0].started_at is not None:
                self._fifo.popleft()
            request = self._fifo.popleft()
            self._queues[request.client].remove(request)
            return request
        if self.scheduler == ROUND_ROBIN:
            while True:
                client = self._rr_order.popleft()
                if self._queues.get(client):
                    self._rr_order.append(client)
                    return self._queues[client].popleft()
                # Client drained: drop from rotation.
        # LOTTERY: pick the client in proportion to tickets.
        entries = [(c, self.tickets.get(c, 1.0)) for c in nonempty]
        try:
            client = hold_lottery(entries, self.prng)
        except EmptyLotteryError:
            client = nonempty[0]
        return self._queues[client].popleft()

    def _service_time(self, request: DiskRequest) -> float:
        distance = abs(request.sector - self._head_sector)
        seek = self.seek_ms_per_1000_sectors * distance / 1000.0
        transfer = request.size_kb / self.transfer_kb_per_ms
        return seek + self.rotational_ms + transfer

    def _start_next(self) -> None:
        request = self._pick_request()
        if request is None:
            self._busy = False
            return
        self._busy = True
        request.started_at = self.engine.now
        service = self._service_time(request)
        self._head_sector = request.sector
        self.engine.call_after(
            service, lambda r=request, s=service: self._complete(r, s),
            label="disk-complete",
        )

    def _complete(self, request: DiskRequest, service: float) -> None:
        request.completed_at = self.engine.now
        self.busy_time += service
        if self.fault_policy is not None and self.fault_policy(request):
            # The spindle time is spent either way, but a failed
            # request serves no bytes and does not count as completed.
            request.failed = True
            self.io_errors[request.client] = (
                self.io_errors.get(request.client, 0) + 1
            )
        else:
            self.completed.setdefault(request.client, []).append(request)
            self.bytes_served[request.client] = (
                self.bytes_served.get(request.client, 0.0) + request.size_kb
            )
        if request.on_complete is not None:
            request.on_complete(request)
        self._start_next()

    def snapshot_state(self) -> dict:
        """Typed state tree for checkpointing (see ``repro.checkpoint``).

        Captures the head position, per-client queues (by sector/size),
        the PRNG stream position, and the service statistics.
        """
        def describe(request: DiskRequest) -> dict:
            return {
                "client": request.client,
                "sector": request.sector,
                "size_kb": request.size_kb,
                "submitted_at": request.submitted_at,
            }

        return {
            "scheduler": self.scheduler,
            "prng": self.prng.snapshot_state(),
            "tickets": dict(sorted(self.tickets.items())),
            "head_sector": self._head_sector,
            "busy": self._busy,
            "busy_time": self.busy_time,
            "queues": {client: [describe(r) for r in queue]
                       for client, queue in sorted(self._queues.items())},
            "rr_order": list(self._rr_order),
            "completed": {client: len(done)
                          for client, done in sorted(self.completed.items())},
            "bytes_served": dict(sorted(self.bytes_served.items())),
            "io_errors": dict(sorted(self.io_errors.items())),
        }

    # -- statistics -----------------------------------------------------------------------

    def throughput_kb(self, client: str) -> float:
        """Total KB served to a client."""
        return self.bytes_served.get(client, 0.0)

    def mean_response_time(self, client: str) -> float:
        """Average submission-to-completion latency for a client (ms)."""
        done = self.completed.get(client, [])
        if not done:
            return 0.0
        return sum(r.response_time for r in done) / len(done)
