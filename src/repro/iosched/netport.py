"""Lottery-scheduled network virtual circuits (paper section 6).

"ATM switches schedule virtual circuits to determine which buffered
cell should next be forwarded.  Lottery scheduling could be used to
provide different levels of service to virtual circuits competing for
congested channels."  This module models one congested output link: a
fixed cell time, per-circuit cell queues, and a scheduler that picks
the circuit to forward from at each slot -- by lottery over circuit
tickets, or round-robin as the ticket-blind baseline (the statistical
matching of [And93] is the related work the lottery replaces).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.lottery import hold_lottery
from repro.core.prng import ParkMillerPRNG
from repro.errors import EmptyLotteryError, ReproError
from repro.sim.engine import Engine

__all__ = ["VirtualCircuit", "LinkScheduler"]


class VirtualCircuit:
    """A flow competing for the output link."""

    __slots__ = ("name", "tickets", "queue", "cells_forwarded", "delays",
                 "cells_dropped")

    def __init__(self, name: str, tickets: float, queue_limit: int) -> None:
        if tickets < 0:
            raise ReproError(f"tickets must be non-negative: {tickets}")
        self.name = name
        self.tickets = tickets
        #: Arrival times of queued cells.
        self.queue: Deque[float] = deque()
        self.cells_forwarded = 0
        self.cells_dropped = 0
        self.delays: List[float] = []

    def mean_delay(self) -> float:
        """Average queueing delay of forwarded cells (ms)."""
        if not self.delays:
            return 0.0
        return sum(self.delays) / len(self.delays)


class LinkScheduler:
    """One congested link multiplexing virtual circuits cell-by-cell.

    Parameters
    ----------
    engine:
        Discrete-event engine providing virtual time.
    cell_time:
        Milliseconds to forward one cell (link capacity = 1/cell_time).
    mode:
        "lottery" or "round-robin".
    queue_limit:
        Per-circuit buffer size; arrivals beyond it are dropped.
    """

    def __init__(self, engine: Engine, cell_time: float = 0.01,
                 mode: str = "lottery", queue_limit: int = 10_000,
                 prng: Optional[ParkMillerPRNG] = None) -> None:
        if cell_time <= 0:
            raise ReproError(f"cell_time must be positive: {cell_time}")
        if mode not in ("lottery", "round-robin"):
            raise ReproError(f"unknown link scheduler mode {mode!r}")
        self.engine = engine
        self.cell_time = cell_time
        self.mode = mode
        self.queue_limit = queue_limit
        self.prng = prng if prng is not None else ParkMillerPRNG(1)
        self._circuits: Dict[str, VirtualCircuit] = {}
        self._rr_order: Deque[str] = deque()
        self._busy = False
        self.cells_total = 0

    # -- configuration --------------------------------------------------------------

    def open_circuit(self, name: str, tickets: float) -> VirtualCircuit:
        """Register a virtual circuit with a ticket allocation."""
        if name in self._circuits:
            raise ReproError(f"circuit {name!r} already open")
        circuit = VirtualCircuit(name, tickets, self.queue_limit)
        self._circuits[name] = circuit
        self._rr_order.append(name)
        return circuit

    def circuit(self, name: str) -> VirtualCircuit:
        """Look up a circuit by name."""
        try:
            return self._circuits[name]
        except KeyError:
            raise ReproError(f"no such circuit: {name!r}") from None

    # -- data path -------------------------------------------------------------------

    def arrive(self, name: str, cells: int = 1) -> None:
        """Enqueue cells on a circuit at the current virtual time."""
        circuit = self.circuit(name)
        now = self.engine.now
        for _ in range(cells):
            if len(circuit.queue) >= self.queue_limit:
                circuit.cells_dropped += 1
            else:
                circuit.queue.append(now)
        if not self._busy:
            self._forward_next()

    # -- scheduling -------------------------------------------------------------------

    def _backlogged(self) -> List[VirtualCircuit]:
        return [c for c in self._circuits.values() if c.queue]

    def _pick_circuit(self) -> Optional[VirtualCircuit]:
        backlogged = self._backlogged()
        if not backlogged:
            return None
        if self.mode == "round-robin":
            while True:
                name = self._rr_order.popleft()
                self._rr_order.append(name)
                if self._circuits[name].queue:
                    return self._circuits[name]
        entries: List[Tuple[VirtualCircuit, float]] = [
            (c, c.tickets) for c in backlogged
        ]
        try:
            return hold_lottery(entries, self.prng)
        except EmptyLotteryError:
            return backlogged[0]

    def _forward_next(self) -> None:
        circuit = self._pick_circuit()
        if circuit is None:
            self._busy = False
            return
        self._busy = True
        arrived = circuit.queue.popleft()
        self.engine.call_after(
            self.cell_time,
            lambda c=circuit, a=arrived: self._forwarded(c, a),
            label="cell-forward",
        )

    def _forwarded(self, circuit: VirtualCircuit, arrived: float) -> None:
        circuit.cells_forwarded += 1
        circuit.delays.append(self.engine.now - arrived)
        self.cells_total += 1
        self._forward_next()

    # -- statistics -------------------------------------------------------------------

    def shares(self) -> Dict[str, float]:
        """Fraction of forwarded cells per circuit."""
        total = self.cells_total or 1
        return {
            name: c.cells_forwarded / total for name, c in self._circuits.items()
        }
