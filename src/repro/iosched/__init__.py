"""I/O-bandwidth generalizations: lottery-scheduled disk and network."""

from repro.iosched.disk import FIFO, LOTTERY, ROUND_ROBIN, Disk, DiskRequest
from repro.iosched.netport import LinkScheduler, VirtualCircuit

__all__ = [
    "Disk",
    "DiskRequest",
    "FIFO",
    "LOTTERY",
    "LinkScheduler",
    "ROUND_ROBIN",
    "VirtualCircuit",
]
