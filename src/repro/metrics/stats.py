"""Statistical laws from the paper's analysis (section 2.2) and helpers.

Section 2.2 derives the fairness properties of lottery scheduling from
first principles: the number of lotteries won by a client holding a
fraction ``p`` of the tickets is binomial B(n, p); the number of
lotteries until its first win is geometric with mean 1/p; and the
coefficient of variation of the observed win proportion is
``sqrt((1-p)/(n p))``, which shrinks as 1/sqrt(n) -- the quantitative
basis for "accuracy improves with sqrt(n_allocations)".  These
functions are the oracles the property-based tests check the simulator
against.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from repro.errors import ReproError

__all__ = [
    "binomial_expected_wins",
    "binomial_variance",
    "win_proportion_cv",
    "geometric_mean_wait",
    "geometric_variance",
    "mean",
    "stdev",
    "observed_ratio",
    "ratio_error",
]


def _check_probability(p: float) -> None:
    if not 0.0 < p <= 1.0:
        raise ReproError(f"win probability must be in (0, 1]: {p}")


def binomial_expected_wins(n: int, p: float) -> float:
    """E[wins] = n*p after n identical lotteries (section 2.2)."""
    _check_probability(p)
    if n < 0:
        raise ReproError(f"lottery count must be non-negative: {n}")
    return n * p


def binomial_variance(n: int, p: float) -> float:
    """Var[wins] = n*p*(1-p) (section 2.2)."""
    _check_probability(p)
    if n < 0:
        raise ReproError(f"lottery count must be non-negative: {n}")
    return n * p * (1.0 - p)


def win_proportion_cv(n: int, p: float) -> float:
    """Coefficient of variation of the observed win fraction.

    sigma/mu = sqrt(n p (1-p)) / (n p) = sqrt((1-p)/(n p)); the paper
    states the accuracy of proportional shares improves with sqrt(n).
    """
    _check_probability(p)
    if n <= 0:
        raise ReproError(f"lottery count must be positive: {n}")
    return math.sqrt((1.0 - p) / (n * p))


def geometric_mean_wait(p: float) -> float:
    """Expected lotteries before the first win: E = 1/p (section 2.2)."""
    _check_probability(p)
    return 1.0 / p


def geometric_variance(p: float) -> float:
    """Variance of the first-win wait: (1-p)/p**2 (section 2.2)."""
    _check_probability(p)
    return (1.0 - p) / p**2


# -- plain summary helpers (no numpy dependency in the core) --------------------


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0 for an empty sequence."""
    if not values:
        return 0.0
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    """Population standard deviation; 0 below two samples."""
    n = len(values)
    if n < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / n)


def observed_ratio(counts: Sequence[float]) -> Tuple[float, ...]:
    """Normalize counts so the smallest positive entry is 1.0.

    Turns raw progress counts into the "a : b : c" ratio form the
    paper's figures caption (e.g. "1.92 : 1 : 1.00").
    """
    positive = [c for c in counts if c > 0]
    if not positive:
        return tuple(0.0 for _ in counts)
    smallest = min(positive)
    return tuple(c / smallest for c in counts)


def ratio_error(observed: Sequence[float], allocated: Sequence[float]) -> float:
    """Mean relative error between observed and allocated share vectors."""
    if len(observed) != len(allocated):
        raise ReproError("observed and allocated vectors differ in length")
    total_obs = sum(observed)
    total_alloc = sum(allocated)
    if total_obs <= 0 or total_alloc <= 0:
        raise ReproError("share vectors must have positive totals")
    errors = []
    for obs, alloc in zip(observed, allocated):
        share_obs = obs / total_obs
        share_alloc = alloc / total_alloc
        if share_alloc > 0:
            errors.append(abs(share_obs - share_alloc) / share_alloc)
    return mean(errors)
