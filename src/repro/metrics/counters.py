"""Time-stamped counters and windowed rate series.

The paper's figures report work done over time windows (Figure 5:
average iterations/sec over 8-second windows; Figures 6-9: cumulative
progress curves).  :class:`WindowedCounter` records increments against
virtual time and can be reduced to either view.
"""

from __future__ import annotations

import bisect
from typing import List, Tuple

from repro.errors import ReproError

__all__ = ["WindowedCounter"]


class WindowedCounter:
    """Monotone event counter with virtual-time bucketing."""

    def __init__(self, name: str = "counter") -> None:
        self.name = name
        self._times: List[float] = []
        self._cumulative: List[float] = []
        self._total = 0.0

    def add(self, time: float, count: float = 1.0) -> None:
        """Record ``count`` events at virtual ``time`` (non-decreasing)."""
        if count < 0:
            raise ReproError(f"counter increments must be non-negative: {count}")
        if self._times and time < self._times[-1] - 1e-9:
            raise ReproError(
                f"counter {self.name!r}: time went backwards "
                f"({self._times[-1]} -> {time})"
            )
        self._total += count
        self._times.append(time)
        self._cumulative.append(self._total)

    @property
    def total(self) -> float:
        """Total events recorded."""
        return self._total

    def total_until(self, time: float) -> float:
        """Events recorded at or before virtual ``time``."""
        index = bisect.bisect_right(self._times, time + 1e-9)
        if index == 0:
            return 0.0
        return self._cumulative[index - 1]

    def count_between(self, start: float, end: float) -> float:
        """Events recorded in the half-open window (start, end]."""
        return self.total_until(end) - self.total_until(start)

    def window_rates(
        self, window: float, horizon: float, unit: float = 1000.0
    ) -> List[Tuple[float, float]]:
        """Per-window rates: [(window_start, events per ``unit`` ms)].

        With ``unit=1000`` the rates are events/second of virtual time,
        the unit Figure 5 plots.
        """
        if window <= 0:
            raise ReproError(f"window must be positive: {window}")
        rates = []
        start = 0.0
        while start < horizon - 1e-9:
            end = min(start + window, horizon)
            count = self.count_between(start, end)
            span = end - start
            rates.append((start, count / span * unit if span > 0 else 0.0))
            start = end
        return rates

    def cumulative_series(
        self, sample_every: float, horizon: float
    ) -> List[Tuple[float, float]]:
        """Cumulative totals sampled on a regular grid (progress curves)."""
        if sample_every <= 0:
            raise ReproError(f"sample_every must be positive: {sample_every}")
        series = []
        t = 0.0
        while t <= horizon + 1e-9:
            series.append((t, self.total_until(t)))
            t += sample_every
        return series

    def __len__(self) -> int:
        return len(self._times)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WindowedCounter {self.name!r} total={self._total:g}>"
