"""Kernel activity recorder: per-thread CPU accounting over time.

An optional sink the kernel reports dispatch/CPU/block/wake/exit events
to.  Experiments that only need workload-level counters skip it; the
fairness and overhead analyses use it to reconstruct CPU shares per
window without instrumenting thread bodies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.metrics.counters import WindowedCounter

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.thread import Thread

__all__ = ["KernelRecorder", "NullRecorder"]


class NullRecorder:
    """A recorder that ignores everything (explicit no-op sink)."""

    def on_dispatch(self, thread: "Thread", time: float) -> None:
        pass

    def on_cpu(self, thread: "Thread", start: float, duration: float) -> None:
        pass

    def on_block(self, thread: "Thread", time: float) -> None:
        pass

    def on_wake(self, thread: "Thread", time: float) -> None:
        pass

    def on_exit(self, thread: "Thread", time: float) -> None:
        pass


class KernelRecorder:
    """Accumulates per-thread CPU time series and scheduling latencies."""

    def __init__(self) -> None:
        #: tid -> CPU-milliseconds counter indexed by virtual time.
        self.cpu: Dict[int, WindowedCounter] = {}
        #: tid -> dispatch count.
        self.dispatches: Dict[int, int] = {}
        #: (time, tid) dispatch log (bounded use: fairness analyses).
        self.dispatch_log: List[Tuple[float, int]] = []
        #: tid -> scheduling latencies (runnable -> dispatched), ms.
        self.latencies: Dict[int, List[float]] = {}
        self.blocks: Dict[int, int] = {}
        self.wakes: Dict[int, int] = {}
        self.exits: Dict[int, float] = {}

    # -- kernel hooks ------------------------------------------------------------

    def on_dispatch(self, thread: "Thread", time: float) -> None:
        self.dispatches[thread.tid] = self.dispatches.get(thread.tid, 0) + 1
        self.dispatch_log.append((time, thread.tid))
        if thread.runnable_since is not None:
            self.latencies.setdefault(thread.tid, []).append(
                time - thread.runnable_since
            )

    def on_cpu(self, thread: "Thread", start: float, duration: float) -> None:
        counter = self.cpu.get(thread.tid)
        if counter is None:
            counter = WindowedCounter(f"cpu:{thread.name}")
            self.cpu[thread.tid] = counter
        counter.add(start + duration, duration)

    def on_block(self, thread: "Thread", time: float) -> None:
        self.blocks[thread.tid] = self.blocks.get(thread.tid, 0) + 1

    def on_wake(self, thread: "Thread", time: float) -> None:
        self.wakes[thread.tid] = self.wakes.get(thread.tid, 0) + 1

    def on_exit(self, thread: "Thread", time: float) -> None:
        self.exits[thread.tid] = time

    # -- queries ---------------------------------------------------------------------

    def cpu_time(self, thread: "Thread",
                 until: Optional[float] = None) -> float:
        """Total CPU ms charged to the thread (optionally up to a time)."""
        counter = self.cpu.get(thread.tid)
        if counter is None:
            return 0.0
        if until is None:
            return counter.total
        return counter.total_until(until)

    def cpu_share(self, thread: "Thread", start: float, end: float) -> float:
        """Fraction of the [start, end) window the thread held the CPU."""
        counter = self.cpu.get(thread.tid)
        if counter is None or end <= start:
            return 0.0
        return counter.count_between(start, end) / (end - start)

    def mean_latency(self, thread: "Thread") -> float:
        """Average runnable-to-dispatch latency (response-time proxy)."""
        values = self.latencies.get(thread.tid, [])
        if not values:
            return 0.0
        return sum(values) / len(values)
