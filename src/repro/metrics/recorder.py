"""Kernel activity recorders: the event sink protocol and its sinks.

The kernel reports dispatch/CPU/block/wake/exit events to an optional
sink.  :class:`KernelEventSink` is the shared protocol every sink
implements -- :class:`KernelRecorder` (per-thread CPU accounting),
:class:`~repro.kernel.trace.SchedulerTrace` (typed event log),
:class:`~repro.checkpoint.replay.ReplayRecorder` (dispatch streams),
and the :mod:`repro.telemetry` probe all speak it, and
:class:`RecorderMux` fans one kernel's events out to several of them at
once so a single run can be traced, accounted, and replayed
simultaneously.

New sinks must declare the **full** event surface
(:data:`RECORDER_EVENT_SURFACE`) and register their dotted class path
in :data:`RECORDER_SINKS`; lint rule RPR009 audits each registered
class for missing event methods, so a protocol extension cannot leave a
sink silently deaf to a new event kind.
"""

from __future__ import annotations

from typing import (Dict, FrozenSet, List, Optional, Protocol, Tuple,
                    TYPE_CHECKING, runtime_checkable)

from repro.errors import ReproError
from repro.metrics.counters import WindowedCounter

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.thread import Thread

__all__ = ["KernelEventSink", "KernelRecorder", "NullRecorder",
           "RecorderMux", "RECORDER_EVENT_SURFACE", "RECORDER_SINKS"]

#: The full event surface of the recorder protocol, in the order the
#: kernel emits them.  RecorderMux validates sinks against this list at
#: attach time, and lint rule RPR009 audits the classes registered in
#: :data:`RECORDER_SINKS` against it statically.
RECORDER_EVENT_SURFACE: Tuple[str, ...] = (
    "on_dispatch", "on_cpu", "on_block", "on_wake", "on_exit",
)

#: Dotted class paths of the known recorder sinks.  Every class listed
#: here is audited by lint rule RPR009: it must *define* each method in
#: :data:`RECORDER_EVENT_SURFACE` (structural inheritance is not enough
#: -- a sink that forgets an event must fail the lint, not inherit a
#: silent no-op).  Add new sinks here when introducing them.
RECORDER_SINKS: FrozenSet[str] = frozenset({
    "repro.metrics.recorder.KernelRecorder",
    "repro.metrics.recorder.NullRecorder",
    "repro.metrics.recorder.RecorderMux",
    "repro.kernel.trace.SchedulerTrace",
    "repro.checkpoint.replay.ReplayRecorder",
    "repro.telemetry.probe.KernelProbe",
    "repro.serving.slo_controller.ClassLatencyProbe",
})


@runtime_checkable
class KernelEventSink(Protocol):
    """The recorder protocol: everything a kernel reports, typed once.

    Implementations must provide *all five* methods -- a sink that only
    cares about some events implements the rest as no-ops (see
    :class:`NullRecorder`).  The protocol is ``runtime_checkable`` so
    ``isinstance(sink, KernelEventSink)`` verifies the surface.
    """

    def on_dispatch(self, thread: "Thread", time: float) -> None:
        """``thread`` won the CPU at virtual ``time``."""

    def on_cpu(self, thread: "Thread", start: float, duration: float) -> None:
        """``thread`` consumed ``duration`` ms of CPU beginning at ``start``."""

    def on_block(self, thread: "Thread", time: float) -> None:
        """``thread`` blocked at virtual ``time``."""

    def on_wake(self, thread: "Thread", time: float) -> None:
        """``thread`` became runnable again at virtual ``time``."""

    def on_exit(self, thread: "Thread", time: float) -> None:
        """``thread`` terminated at virtual ``time``."""


class NullRecorder:
    """A recorder that ignores everything (explicit no-op sink)."""

    def on_dispatch(self, thread: "Thread", time: float) -> None:
        pass

    def on_cpu(self, thread: "Thread", start: float, duration: float) -> None:
        pass

    def on_block(self, thread: "Thread", time: float) -> None:
        pass

    def on_wake(self, thread: "Thread", time: float) -> None:
        pass

    def on_exit(self, thread: "Thread", time: float) -> None:
        pass


class KernelRecorder:
    """Accumulates per-thread CPU time series and scheduling latencies."""

    def __init__(self) -> None:
        #: tid -> CPU-milliseconds counter indexed by virtual time.
        self.cpu: Dict[int, WindowedCounter] = {}
        #: tid -> dispatch count.
        self.dispatches: Dict[int, int] = {}
        #: (time, tid) dispatch log (bounded use: fairness analyses).
        self.dispatch_log: List[Tuple[float, int]] = []
        #: tid -> scheduling latencies (runnable -> dispatched), ms.
        self.latencies: Dict[int, List[float]] = {}
        self.blocks: Dict[int, int] = {}
        self.wakes: Dict[int, int] = {}
        self.exits: Dict[int, float] = {}

    # -- kernel hooks ------------------------------------------------------------

    def on_dispatch(self, thread: "Thread", time: float) -> None:
        self.dispatches[thread.tid] = self.dispatches.get(thread.tid, 0) + 1
        self.dispatch_log.append((time, thread.tid))
        if thread.runnable_since is not None:
            self.latencies.setdefault(thread.tid, []).append(
                time - thread.runnable_since
            )

    def on_cpu(self, thread: "Thread", start: float, duration: float) -> None:
        counter = self.cpu.get(thread.tid)
        if counter is None:
            counter = WindowedCounter(f"cpu:{thread.name}")
            self.cpu[thread.tid] = counter
        counter.add(start + duration, duration)

    def on_block(self, thread: "Thread", time: float) -> None:
        self.blocks[thread.tid] = self.blocks.get(thread.tid, 0) + 1

    def on_wake(self, thread: "Thread", time: float) -> None:
        self.wakes[thread.tid] = self.wakes.get(thread.tid, 0) + 1

    def on_exit(self, thread: "Thread", time: float) -> None:
        self.exits[thread.tid] = time

    # -- queries ---------------------------------------------------------------------

    def cpu_time(self, thread: "Thread",
                 until: Optional[float] = None) -> float:
        """Total CPU ms charged to the thread (optionally up to a time)."""
        counter = self.cpu.get(thread.tid)
        if counter is None:
            return 0.0
        if until is None:
            return counter.total
        return counter.total_until(until)

    def cpu_share(self, thread: "Thread", start: float, end: float) -> float:
        """Fraction of the [start, end) window the thread held the CPU."""
        counter = self.cpu.get(thread.tid)
        if counter is None or end <= start:
            return 0.0
        return counter.count_between(start, end) / (end - start)

    def mean_latency(self, thread: "Thread") -> float:
        """Average runnable-to-dispatch latency (response-time proxy)."""
        values = self.latencies.get(thread.tid, [])
        if not values:
            return 0.0
        return sum(values) / len(values)


class RecorderMux:
    """Fan one kernel's event stream out to several sinks.

    Replaces the "single recorder slot" limitation: a
    :class:`~repro.kernel.trace.SchedulerTrace`, a
    :class:`KernelRecorder`, a replay recorder, and a telemetry probe
    can all observe the same run.  Sinks are invoked in attach order,
    deterministically; a sink missing part of the event surface is
    rejected at :meth:`add` time (fail at wiring, not mid-simulation).
    """

    __slots__ = ("_sinks", "active")

    def __init__(self, *sinks: KernelEventSink) -> None:
        self._sinks: List[KernelEventSink] = []
        #: False while no sinks are attached.  The kernel emits five
        #: events per quantum whether or not anyone listens; the on_*
        #: fast path below turns an idle mux into a single attribute
        #: check instead of an iteration over an empty list.
        self.active = False
        for sink in sinks:
            self.add(sink)

    @property
    def sinks(self) -> List[KernelEventSink]:
        """The attached sinks, in attach order (a fresh list)."""
        return list(self._sinks)

    def add(self, sink: KernelEventSink) -> KernelEventSink:
        """Attach a sink; validates the full event surface, returns it."""
        missing = [name for name in RECORDER_EVENT_SURFACE
                   if not callable(getattr(sink, name, None))]
        if missing:
            raise ReproError(
                f"recorder sink {type(sink).__name__} is missing event "
                f"method(s): {', '.join(missing)} (the full surface is "
                f"{', '.join(RECORDER_EVENT_SURFACE)})"
            )
        if sink is self:
            raise ReproError("a RecorderMux cannot contain itself")
        self._sinks.append(sink)
        self.active = True
        return sink

    def remove(self, sink: KernelEventSink) -> None:
        """Detach a sink (no-op when absent)."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass
        self.active = bool(self._sinks)

    def __len__(self) -> int:
        return len(self._sinks)

    # -- kernel recorder interface ------------------------------------------

    def on_dispatch(self, thread: "Thread", time: float) -> None:
        if not self.active:
            return
        for sink in self._sinks:
            sink.on_dispatch(thread, time)

    def on_cpu(self, thread: "Thread", start: float, duration: float) -> None:
        if not self.active:
            return
        for sink in self._sinks:
            sink.on_cpu(thread, start, duration)

    def on_block(self, thread: "Thread", time: float) -> None:
        if not self.active:
            return
        for sink in self._sinks:
            sink.on_block(thread, time)

    def on_wake(self, thread: "Thread", time: float) -> None:
        if not self.active:
            return
        for sink in self._sinks:
            sink.on_wake(thread, time)

    def on_exit(self, thread: "Thread", time: float) -> None:
        if not self.active:
            return
        for sink in self._sinks:
            sink.on_exit(thread, time)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = [type(sink).__name__ for sink in self._sinks]
        return f"<RecorderMux sinks={names}>"
