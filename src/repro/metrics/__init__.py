"""Measurement utilities: counters, histograms, statistics, recorders."""

from repro.metrics.counters import WindowedCounter
from repro.metrics.histogram import Histogram
from repro.metrics.recorder import (
    RECORDER_EVENT_SURFACE,
    RECORDER_SINKS,
    KernelEventSink,
    KernelRecorder,
    NullRecorder,
    RecorderMux,
)
from repro.metrics.stats import (
    binomial_expected_wins,
    binomial_variance,
    geometric_mean_wait,
    geometric_variance,
    mean,
    observed_ratio,
    ratio_error,
    stdev,
    win_proportion_cv,
)

__all__ = [
    "Histogram",
    "KernelEventSink",
    "KernelRecorder",
    "NullRecorder",
    "RECORDER_EVENT_SURFACE",
    "RECORDER_SINKS",
    "RecorderMux",
    "WindowedCounter",
    "binomial_expected_wins",
    "binomial_variance",
    "geometric_mean_wait",
    "geometric_variance",
    "mean",
    "observed_ratio",
    "ratio_error",
    "stdev",
    "win_proportion_cv",
]
