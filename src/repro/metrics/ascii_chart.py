"""Terminal charts for experiment output.

The paper's evaluation is all figures; the experiment drivers print
their data as tables, and this module adds lightweight ASCII renderings
so `python -m repro.experiments.<figure>` shows the *shape* of each
figure directly in the terminal -- cumulative progress curves (Figures
6-9), scatter plots (Figure 4), and bar charts -- with no plotting
dependencies.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import ReproError

__all__ = ["line_chart", "scatter_chart", "bar_chart"]

#: Glyphs assigned to series, in order.
_GLYPHS = "*o+x#@%&"


def _scale(value: float, low: float, high: float, steps: int) -> int:
    if high <= low:
        return 0
    position = (value - low) / (high - low)
    return min(int(position * steps), steps - 1)


def _render_grid(
    series: Dict[str, List[Tuple[float, float]]],
    width: int,
    height: int,
    title: str,
    x_label: str,
    y_label: str,
) -> str:
    points = [p for pts in series.values() for p in pts]
    if not points:
        raise ReproError("nothing to plot")
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(min(ys), 0.0), max(ys)
    if y_high == y_low:
        y_high = y_low + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, pts) in enumerate(series.items()):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        for x, y in pts:
            column = _scale(x, x_low, x_high, width)
            row = height - 1 - _scale(y, y_low, y_high, height)
            grid[row][column] = glyph

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_high:.3g}"
    bottom_label = f"{y_low:.3g}"
    margin = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top_label.rjust(margin)
        elif row_index == height - 1:
            label = bottom_label.rjust(margin)
        else:
            label = " " * margin
        lines.append(f"{label} |{''.join(row)}")
    axis = " " * margin + " +" + "-" * width
    lines.append(axis)
    x_axis = (f"{' ' * margin}  {x_low:.3g}"
              + f"{x_high:.6g}".rjust(width - len(f"{x_low:.3g}")))
    lines.append(x_axis)
    if x_label or y_label:
        lines.append(f"{' ' * margin}  x: {x_label}   y: {y_label}")
    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(f"{' ' * margin}  {legend}")
    return "\n".join(lines)


def line_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_label: str = "time (s)",
    y_label: str = "",
) -> str:
    """Plot named (x, y) series on one grid (progress-curve style)."""
    if width < 8 or height < 4:
        raise ReproError("chart area too small")
    normalized = {name: list(points) for name, points in series.items()
                  if points}
    if not normalized:
        raise ReproError("nothing to plot")
    return _render_grid(normalized, width, height, title, x_label, y_label)


def scatter_chart(
    points: Sequence[Tuple[float, float]],
    width: int = 48,
    height: int = 14,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    diagonal: bool = False,
) -> str:
    """Scatter one series; ``diagonal`` overlays the y=x ideal line
    (Figure 4's 'ideal' reference)."""
    series: Dict[str, List[Tuple[float, float]]] = {"observed": list(points)}
    if diagonal and points:
        xs = [x for x, _ in points]
        low, high = min(xs), max(xs)
        steps = max(width, 2)
        series["ideal"] = [
            (low + (high - low) * i / (steps - 1),) * 2 for i in range(steps)
        ]
    return _render_grid(series, width, height, title, x_label, y_label)


def bar_chart(
    values: Dict[str, float],
    width: int = 40,
    title: str = "",
    unit: str = "",
) -> str:
    """Horizontal bars, labelled with their values."""
    if not values:
        raise ReproError("nothing to plot")
    peak = max(values.values())
    if peak <= 0:
        peak = 1.0
    label_width = max(len(name) for name in values)
    lines = [title] if title else []
    for name, value in values.items():
        bar = "#" * max(int(value / peak * width), 0)
        lines.append(f"{name.ljust(label_width)} |{bar} {value:g}{unit}")
    return "\n".join(lines)
