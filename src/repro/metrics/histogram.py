"""Fixed-bin histograms for waiting-time distributions (Figure 11)."""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.errors import ReproError

__all__ = ["Histogram"]


class Histogram:
    """Histogram over fixed-width bins with summary statistics."""

    def __init__(self, bin_width: float, name: str = "histogram") -> None:
        if bin_width <= 0:
            raise ReproError(f"bin width must be positive: {bin_width}")
        self.bin_width = bin_width
        self.name = name
        self._bins: Dict[int, int] = {}
        self._values: List[float] = []

    def add(self, value: float) -> None:
        """Record one observation (must be non-negative)."""
        if value < 0:
            raise ReproError(f"histogram values must be non-negative: {value}")
        index = int(value // self.bin_width)
        self._bins[index] = self._bins.get(index, 0) + 1
        self._values.append(value)

    def extend(self, values: Sequence[float]) -> None:
        """Record many observations."""
        for value in values:
            self.add(value)

    @property
    def count(self) -> int:
        """Number of observations."""
        return len(self._values)

    def mean(self) -> float:
        """Arithmetic mean of the observations (0 when empty)."""
        if not self._values:
            return 0.0
        return sum(self._values) / len(self._values)

    def stdev(self) -> float:
        """Population standard deviation (0 when fewer than 2 samples)."""
        n = len(self._values)
        if n < 2:
            return 0.0
        mu = self.mean()
        return math.sqrt(sum((v - mu) ** 2 for v in self._values) / n)

    def bins(self) -> List[Tuple[float, float, int]]:
        """Sorted (bin_start, bin_end, count) triples, empty bins omitted."""
        return [
            (i * self.bin_width, (i + 1) * self.bin_width, self._bins[i])
            for i in sorted(self._bins)
        ]

    def percentile(self, q: float) -> float:
        """q-th percentile (0 <= q <= 100) by nearest-rank."""
        if not 0 <= q <= 100:
            raise ReproError(f"percentile must be in [0, 100]: {q}")
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        rank = max(0, min(len(ordered) - 1, math.ceil(q / 100 * len(ordered)) - 1))
        return ordered[rank]

    def render(self, width: int = 50) -> str:
        """ASCII rendering, one row per bin (for experiment printouts)."""
        rows = []
        peak = max(self._bins.values(), default=1)
        for start, end, count in self.bins():
            bar = "#" * max(1, int(count / peak * width))
            rows.append(f"{start:8.0f}-{end:<8.0f} {count:6d} {bar}")
        return "\n".join(rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name!r} n={self.count} mean={self.mean():.1f}>"
