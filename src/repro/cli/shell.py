"""A minimal command interpreter over the §4.7 command set.

Used by the quickstart example and the CLI tests; scripts feed it lines
(``mkcur alice``, ``mktkt 200 base``, ``fund t1 alice``, ...) and read
back the command output.  Errors are reported, not raised, matching
shell behaviour.
"""

from __future__ import annotations

import shlex
from typing import List, Optional

from repro.cli.commands import COMMANDS
from repro.cli.state import CommandState
from repro.errors import ReproError

__all__ = ["Shell"]


class Shell:
    """Line-oriented interpreter bound to one :class:`CommandState`."""

    def __init__(self, state: Optional[CommandState] = None) -> None:
        self.state = state if state is not None else CommandState()
        self.history: List[str] = []

    def execute(self, line: str) -> str:
        """Run one command line; returns its output (or an error line)."""
        self.history.append(line)
        try:
            parts = shlex.split(line, comments=True)
        except ValueError as exc:
            return f"error: {exc}"
        if not parts:
            return ""
        name, args = parts[0], parts[1:]
        if name in ("help", "?"):
            return self._help()
        command = COMMANDS.get(name)
        if command is None:
            return f"error: unknown command {name!r} (try 'help')"
        try:
            return command(self.state, args)
        except (ReproError, ValueError) as exc:
            return f"error: {exc}"

    def run_script(self, script: str) -> List[str]:
        """Execute each non-empty line; returns the outputs."""
        outputs = []
        for line in script.splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            outputs.append(self.execute(line))
        return outputs

    @staticmethod
    def _help() -> str:
        rows = ["commands:"]
        for name, command in COMMANDS.items():
            doc = (command.__doc__ or "").strip().splitlines()[0]
            rows.append(f"  {doc}")
        return "\n".join(rows)
