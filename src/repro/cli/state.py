"""Named-object registry backing the command-line interface (§4.7).

The paper's user commands (``mktkt``, ``mkcur``, ``fund``, ...) operate
on names; this registry maps user-visible names to live kernel objects
(tickets, currencies, tasks/threads) for one simulated machine.  Access
control mirrors the paper's note that a complete system "should protect
currencies by using access control lists or Unix-style permissions":
each currency records an owner and a set of principals allowed to
inflate it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.tickets import Currency, Ledger, Ticket, TicketHolder
from repro.errors import CurrencyError, ReproError, TicketError

__all__ = ["CommandState", "PermissionError_", "ROOT_USER"]

ROOT_USER = "root"


class PermissionError_(ReproError):
    """A principal attempted an operation it lacks rights for."""


class CommandState:
    """Mutable world-state the CLI commands read and write."""

    def __init__(self, ledger: Optional[Ledger] = None,
                 user: str = ROOT_USER) -> None:
        self.ledger = ledger if ledger is not None else Ledger()
        #: The principal issuing commands (setuid semantics: root may
        #: do anything, like the paper's setuid-root commands).
        self.user = user
        self.tickets: Dict[str, Ticket] = {}
        self.holders: Dict[str, TicketHolder] = {}
        #: currency name -> owning principal.
        self.currency_owner: Dict[str, str] = {Ledger.BASE_NAME: ROOT_USER}
        #: currency name -> principals permitted to inflate (issue into).
        self.inflators: Dict[str, Set[str]] = {Ledger.BASE_NAME: {ROOT_USER}}
        self._ticket_seq = 0
        #: The live simulation the checkpoint commands operate on: a
        #: :class:`repro.checkpoint.registry.SimHandle` attached by
        #: ``chaos`` or ``load``, consumed by ``save`` and ``replay``.
        self.simulation = None

    # -- principals -------------------------------------------------------------

    def check_may_inflate(self, currency: Currency) -> None:
        """Raise unless the current user may issue tickets in ``currency``."""
        if self.user == ROOT_USER:
            return
        allowed = self.inflators.get(currency.name, set())
        if self.user not in allowed:
            raise PermissionError_(
                f"user {self.user!r} may not issue tickets in "
                f"currency {currency.name!r}"
            )

    def grant_inflation(self, currency: Currency, user: str) -> None:
        """Add a principal to the currency's inflation ACL."""
        self.inflators.setdefault(currency.name, set()).add(user)

    # -- name management ----------------------------------------------------------

    def new_ticket_name(self) -> str:
        self._ticket_seq += 1
        return f"t{self._ticket_seq}"

    def register_holder(self, name: str, holder: TicketHolder) -> None:
        """Expose a client (e.g. a thread) to the command namespace."""
        if name in self.holders:
            raise ReproError(f"holder name {name!r} already registered")
        self.holders[name] = holder

    def resolve_currency(self, name: str) -> Currency:
        """Currency by name (error messages match the CLI's vocabulary)."""
        return self.ledger.currency(name)

    def resolve_ticket(self, name: str) -> Ticket:
        try:
            return self.tickets[name]
        except KeyError:
            raise TicketError(f"no such ticket: {name!r}") from None

    def resolve_funding_target(self, name: str):
        """A currency or registered holder, by name."""
        if name in self.holders:
            return self.holders[name]
        try:
            return self.ledger.currency(name)
        except CurrencyError:
            raise ReproError(
                f"no currency or client named {name!r}"
            ) from None

    def ticket_names(self) -> List[str]:
        """Registered ticket names in creation order."""
        return list(self.tickets)
