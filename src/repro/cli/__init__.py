"""User-level currency/ticket manipulation commands (paper section 4.7)."""

from repro.cli.commands import COMMANDS
from repro.cli.shell import Shell
from repro.cli.state import CommandState, PermissionError_, ROOT_USER

__all__ = ["COMMANDS", "CommandState", "PermissionError_", "ROOT_USER", "Shell"]
