"""The paper's user-level commands (section 4.7).

"User-level commands exist to create and destroy tickets and currencies
(mktkt, rmtkt, mkcur, rmcur), fund and unfund currencies (fund,
unfund), obtain information (lstkt, lscur), and to execute a shell
command with specified funding (fundx)."

Each command is a plain function taking a :class:`CommandState` and
string arguments, returning its output as a string -- so the same
implementations serve the interactive shell, scripts, and tests.

Beyond the paper's command set, ``lint`` and ``sanitize`` expose the
:mod:`repro.analysis` correctness tooling (the determinism lint over
Python sources and a one-shot invariant audit of the live ledger), and
``chaos`` runs the :mod:`repro.faults` fault-injection experiment.
``save``, ``load``, and ``replay`` checkpoint the live simulation,
restore it, and verify bit-exact replay (:mod:`repro.checkpoint`), and
``telemetry`` runs a traced simulation and reports what
:mod:`repro.telemetry` observed (spans, metrics, scheduler profile).
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from repro.errors import ReproError, TicketError
from repro.cli.state import CommandState, ROOT_USER

__all__ = [
    "mktkt",
    "rmtkt",
    "mkcur",
    "rmcur",
    "fund",
    "unfund",
    "lstkt",
    "lscur",
    "fundx",
    "lint",
    "sanitize",
    "chaos",
    "telemetry",
    "serving",
    "save",
    "load",
    "replay",
    "COMMANDS",
]


def _require_args(args: Sequence[str], count: int, usage: str) -> None:
    if len(args) != count:
        raise ReproError(f"usage: {usage}")


def mktkt(state: CommandState, args: Sequence[str]) -> str:
    """mktkt <amount> <currency> [name] -- create a ticket."""
    if len(args) not in (2, 3):
        raise ReproError("usage: mktkt <amount> <currency> [name]")
    amount = float(args[0])
    currency = state.resolve_currency(args[1])
    state.check_may_inflate(currency)
    name = args[2] if len(args) == 3 else state.new_ticket_name()
    if name in state.tickets:
        raise TicketError(f"ticket name {name!r} already in use")
    ticket = state.ledger.create_ticket(amount, currency=currency, tag=name)
    state.tickets[name] = ticket
    return f"ticket {name}: {amount:g}.{currency.name}"


def rmtkt(state: CommandState, args: Sequence[str]) -> str:
    """rmtkt <ticket> -- destroy a ticket."""
    _require_args(args, 1, "rmtkt <ticket>")
    ticket = state.resolve_ticket(args[0])
    state.check_may_inflate(ticket.currency)
    ticket.destroy()
    del state.tickets[args[0]]
    return f"removed ticket {args[0]}"


def mkcur(state: CommandState, args: Sequence[str]) -> str:
    """mkcur <name> -- create a currency owned by the current user."""
    _require_args(args, 1, "mkcur <name>")
    currency = state.ledger.create_currency(args[0])
    state.currency_owner[currency.name] = state.user
    state.inflators.setdefault(currency.name, set()).add(state.user)
    return f"currency {currency.name} (owner {state.user})"


def rmcur(state: CommandState, args: Sequence[str]) -> str:
    """rmcur <name> -- destroy an empty currency."""
    _require_args(args, 1, "rmcur <name>")
    currency = state.resolve_currency(args[0])
    owner = state.currency_owner.get(currency.name, ROOT_USER)
    if state.user not in (ROOT_USER, owner):
        raise ReproError(f"user {state.user!r} does not own {currency.name!r}")
    currency.destroy()
    state.currency_owner.pop(currency.name, None)
    state.inflators.pop(currency.name, None)
    return f"removed currency {args[0]}"


def fund(state: CommandState, args: Sequence[str]) -> str:
    """fund <ticket> <currency-or-client> -- direct a ticket's value."""
    _require_args(args, 2, "fund <ticket> <currency-or-client>")
    ticket = state.resolve_ticket(args[0])
    target = state.resolve_funding_target(args[1])
    ticket.fund(target)
    target_name = getattr(target, "name", args[1])
    return f"ticket {args[0]} funds {target_name}"


def unfund(state: CommandState, args: Sequence[str]) -> str:
    """unfund <ticket> -- withdraw a ticket from its target."""
    _require_args(args, 1, "unfund <ticket>")
    ticket = state.resolve_ticket(args[0])
    ticket.unfund()
    return f"ticket {args[0]} unfunded"


def lstkt(state: CommandState, args: Sequence[str]) -> str:
    """lstkt -- list tickets: name, amount.currency, target, value."""
    if args:
        raise ReproError("usage: lstkt")
    rows = ["NAME      AMOUNT                 FUNDS           VALUE"]
    for name, ticket in state.tickets.items():
        target = getattr(ticket.target, "name", "-") if ticket.target else "-"
        denomination = f"{ticket.amount:g}.{ticket.currency.name}"
        rows.append(
            f"{name:<9} {denomination:<22} {target:<15}"
            f" {ticket.base_value():>8.1f}"
        )
    return "\n".join(rows)


def lscur(state: CommandState, args: Sequence[str]) -> str:
    """lscur -- list currencies: name, active amount, base value."""
    if args:
        raise ReproError("usage: lscur")
    rows = ["NAME            ACTIVE     VALUE  BACKING  ISSUED"]
    for currency in state.ledger.currencies():
        rows.append(
            f"{currency.name:<14} {currency.active_amount:>7g}"
            f" {currency.base_value():>9.1f}"
            f" {len(currency.backing):>8d} {len(currency.issued):>7d}"
        )
    return "\n".join(rows)


def fundx(state: CommandState, args: Sequence[str]) -> str:
    """fundx <amount> <currency> <client> -- run a client with funding.

    The paper's fundx executes a shell command with specified funding;
    here the "command" is a registered client (thread/holder), which
    receives a freshly minted ticket for the duration of its life.
    """
    _require_args(args, 3, "fundx <amount> <currency> <client>")
    amount = float(args[0])
    currency = state.resolve_currency(args[1])
    state.check_may_inflate(currency)
    holder = state.holders.get(args[2])
    if holder is None:
        raise ReproError(f"no client named {args[2]!r}")
    name = state.new_ticket_name()
    ticket = state.ledger.create_ticket(
        amount, currency=currency, fund=holder, tag=name
    )
    state.tickets[name] = ticket
    return f"client {args[2]} funded with {amount:g}.{currency.name} ({name})"


def lint(state: CommandState, args: Sequence[str]) -> str:
    """lint [path ...] -- run the determinism lint (default: src/repro)."""
    from repro.analysis.lint import lint_paths

    paths = list(args) if args else ["src/repro"]
    findings = lint_paths(paths)
    if not findings:
        return f"lint: clean ({', '.join(paths)})"
    lines = [finding.format() for finding in findings]
    lines.append(f"lint: {len(findings)} finding(s)")
    return "\n".join(lines)


def chaos(state: CommandState, args: Sequence[str]) -> str:
    """chaos [seed] [duration_ms] [--trace-out PATH] -- faults experiment.

    Runs the :mod:`repro.experiments.chaos_fairness` experiment -- a
    seeded crash/restart schedule against a lottery-scheduled cluster --
    and reports, per fault window, how quickly the max relative error
    dropped back under the reconvergence threshold.  With
    ``--trace-out`` the run is traced by :mod:`repro.telemetry` and a
    Chrome trace-event JSON (plus ``.sha256`` sidecar) is written.
    """
    args, trace_out = _split_trace_out(args)
    if len(args) > 2:
        raise ReproError("usage: chaos [seed] [duration_ms] [--trace-out PATH]")
    from repro.experiments import chaos_fairness

    seed = int(args[0]) if len(args) >= 1 else 2718
    duration = float(args[1]) if len(args) == 2 else 240_000.0
    hub = None
    instrument = None
    if trace_out is not None:
        from repro.telemetry import Telemetry

        hub = Telemetry()
        instrument = hub.instrument_handle
    data = chaos_fairness.run_variant(seed=seed, duration_ms=duration,
                                      instrument=instrument)
    cluster = data["cluster"]
    # Expose the live system to the checkpoint commands (save/replay).
    state.simulation = data["handle"]
    lines = [f"chaos: seed={seed} duration={duration:g}ms "
             f"threshold={chaos_fairness.RECONVERGENCE_THRESHOLD:g}"]
    lines.extend(data["fault_log"])
    for window in data["windows"]:
        if window["cause"] == "start":
            continue
        reconverged = window["reconverged_at_ms"]
        verdict = (
            f"reconverged after {reconverged - window['start_ms']:g} ms"
            if reconverged is not None else "did not reconverge"
        )
        lines.append(
            f"window @{window['start_ms']:g}ms ({window['cause']}): {verdict}"
        )
    lines.append(
        f"migrations={cluster.migrations} evacuations={cluster.evacuations}"
        f" killed={cluster.threads_killed}"
        f" final_window_error={data['final_error']:.3f}"
    )
    if hub is not None:
        from repro.telemetry import export_chrome, write_checksummed

        hub.finalize(data["handle"].now)
        digest = write_checksummed(trace_out, export_chrome(hub.tracer))
        lines.append(
            f"trace: {len(hub.tracer)} spans -> {trace_out} sha256={digest}"
        )
        hub.close()
    return "\n".join(lines)


def _split_trace_out(args: Sequence[str]):
    """Extract ``--trace-out PATH`` from an argument list."""
    remaining = list(args)
    trace_out = None
    if "--trace-out" in remaining:
        index = remaining.index("--trace-out")
        if index == len(remaining) - 1:
            raise ReproError("--trace-out needs a PATH")
        trace_out = remaining[index + 1]
        del remaining[index:index + 2]
    return remaining, trace_out


def telemetry(state: CommandState, args: Sequence[str]) -> str:
    """telemetry [seed] [duration_ms] [--trace-out PATH] -- traced run.

    Runs a short chaos-fairness simulation with the
    :mod:`repro.telemetry` hub attached and reports what the trace saw:
    span counts by category, the headline scheduler metrics (dispatch
    counts, wake-to-dispatch latency by ticket-share band), and the
    scheduling-operation cost attribution from the profiler.  With
    ``--trace-out`` the Chrome trace-event JSON is also written.
    """
    args, trace_out = _split_trace_out(args)
    if len(args) > 2:
        raise ReproError(
            "usage: telemetry [seed] [duration_ms] [--trace-out PATH]")
    from repro.experiments import chaos_fairness
    from repro.experiments.overhead import run_profile
    from repro.telemetry import Telemetry, export_chrome, write_checksummed

    seed = int(args[0]) if len(args) >= 1 else 2718
    duration = float(args[1]) if len(args) == 2 else 60_000.0
    hub = Telemetry()
    data = chaos_fairness.run_variant(seed=seed, duration_ms=duration,
                                      instrument=hub.instrument_handle)
    hub.finalize(data["handle"].now)
    state.simulation = data["handle"]

    lines = [f"telemetry: seed={seed} duration={duration:g}ms "
             f"spans={len(hub.tracer)} dropped={hub.tracer.dropped_spans} "
             f"metrics={len(hub.registry)}"]
    lines.append("SPANS       NAME                    COUNT")
    for (category, name), count in sorted(hub.tracer.counts().items()):
        lines.append(f"{category:<11} {name:<23} {count}")
    lines.append("METRICS")
    for instrument in hub.registry.instruments():
        if instrument.kind == "histogram":
            lines.append(
                f"  {instrument.full_name}: n={instrument.count}"
                f" mean={instrument.mean():.2f}ms"
                f" p95={instrument.percentile(95):.2f}ms"
            )
        else:
            lines.append(f"  {instrument.full_name}: {instrument.value:g}")
    lines.append("PROFILE (host us, draw/queue/compensation)")
    for row in run_profile(duration_ms=10_000.0, seed=seed).rows:
        lines.append(
            f"  {row['policy']:<12} dispatches={row['dispatches']:<6}"
            f" draw={row['draw_us']:.0f} queue={row['queue_us']:.0f}"
            f" comp={row['compensation_us']:.0f}"
            f" ({row['draw_us_per_select']:.2f}us/select)"
        )
    if trace_out is not None:
        digest = write_checksummed(trace_out, export_chrome(hub.tracer))
        lines.append(f"trace: {trace_out} sha256={digest}")
    hub.close()
    return "\n".join(lines)


def serving(state: CommandState, args: Sequence[str]) -> str:
    """serving [seed] [load] [--policy NAME] [--slo] -- overload arena.

    Runs a short open-loop serving-arena simulation (see
    ``docs/SERVING.md``): per-class arrival pumps at ``load`` times
    capacity, ticket-priced admission, frontends RPCing a backend pool
    with ticket transfers.  Reports per-class offered/shed/completed
    counts with wake->dispatch and end-to-end tails, plus the
    class-keyed telemetry histogram; ``--slo`` enables the feedback
    controller that inflates a breaching class's tickets.
    """
    from repro.experiments.common import build_machine
    from repro.serving import ArenaConfig, build_arena
    from repro.telemetry import Telemetry

    policy = "lottery"
    slo = False
    positional = []
    remaining = list(args)
    while remaining:
        arg = remaining.pop(0)
        if arg == "--policy":
            if not remaining:
                raise ReproError("--policy needs a value")
            policy = remaining.pop(0)
        elif arg == "--slo":
            slo = True
        else:
            positional.append(arg)
    if len(positional) > 2:
        raise ReproError(
            "usage: serving [seed] [load] [--policy NAME] [--slo]")
    seed = int(positional[0]) if len(positional) >= 1 else 2026
    load = float(positional[1]) if len(positional) == 2 else 1.5

    machine = build_machine(seed=seed, quantum=20.0, policy=policy)
    hub = Telemetry()
    hub.instrument_kernel(machine.kernel, track="serving")
    config = ArenaConfig(seed=seed, load_factor=load,
                         requests_per_class=300, slo=slo,
                         slo_min_samples=10)
    arena = build_arena(machine.kernel, config)
    arena.run()
    hub.finalize(machine.now)

    lines = [f"serving: seed={seed} policy={policy} load={load:g}x "
             f"capacity={config.capacity_rps():.1f}rps "
             f"horizon={config.horizon_ms():.0f}ms"]
    lines.append("CLASS    OFFERED  SHED  DONE  WAKE-P99  E2E-P99")
    for row in arena.rows():
        lines.append(
            f"{row['class']:<8} {row['offered']:>7} {row['shed']:>5}"
            f" {row['completed']:>5} {row['wake_p99_ms']:>8.1f}"
            f" {row['e2e_p99_ms']:>8.1f}")
    if arena.controller is not None:
        lines.append("SLO")
        for name in sorted(arena.controller.classes):
            cls_state = arena.controller.classes[name]
            recovery = arena.controller.recovery_epoch(name)
            lines.append(
                f"  {name}: target={cls_state.target_p99_ms:g}ms"
                f" lever={cls_state.amount():.1f}"
                f" recovery_epoch="
                f"{'-' if recovery is None else recovery}")
    lines.append("TELEMETRY (repro_request_e2e_ms)")
    for instrument in hub.registry.instruments():
        if instrument.kind == "histogram" and \
                instrument.full_name.startswith("repro_request_e2e_ms"):
            lines.append(
                f"  {instrument.full_name}: n={instrument.count}"
                f" p99={instrument.percentile(99):.1f}ms")
    hub.close()
    return "\n".join(lines)


def save(state: CommandState, args: Sequence[str]) -> str:
    """save <path> -- checkpoint the live simulation to a file.

    Requires a simulation attached to the session (run ``chaos`` first,
    or ``load`` an earlier checkpoint).  The write is crash-consistent:
    a crash mid-save never leaves a torn file.
    """
    _require_args(args, 1, "save <path>")
    from repro.checkpoint import save as save_checkpoint
    from repro.checkpoint.statetree import checkpoint_summary

    if state.simulation is None:
        raise ReproError("no live simulation; run 'chaos' or 'load' first")
    payload = save_checkpoint(state.simulation, args[0])
    return f"saved {args[0]}: {checkpoint_summary(payload)}"


def load(state: CommandState, args: Sequence[str]) -> str:
    """load <path> -- restore a checkpoint as the live simulation.

    Validates the file's checksum, re-executes its recipe to the
    checkpoint time, verifies the rebuilt state tree against the saved
    one, and re-runs the scheduler-invariant sanitizer before the
    system becomes the session's live simulation.
    """
    _require_args(args, 1, "load <path>")
    from repro.checkpoint import restore
    from repro.checkpoint.statetree import checkpoint_summary

    handle, payload = restore(args[0])
    state.simulation = handle
    return (f"loaded {args[0]}: {checkpoint_summary(payload)} "
            f"(verified, invariants OK)")


def replay(state: CommandState, args: Sequence[str]) -> str:
    """replay <path> -- re-execute a checkpoint and diff dispatch streams.

    When the session's live simulation was built from the same recipe
    and arguments and has advanced past the checkpoint, the restored
    copy is continued to the live time and the two dispatch streams are
    compared event-by-event.  Otherwise the checkpoint is restored
    twice independently and the two rebuilds are compared -- a
    self-consistency replay.  Either way the report names the first
    mismatched (time, thread, draw) triple, or certifies zero
    divergence.
    """
    _require_args(args, 1, "replay <path>")
    from repro.checkpoint import diff_streams, format_divergence, restore

    restored, payload = restore(args[0])
    live = state.simulation
    if (live is not None and live.recipe == payload["recipe"]
            and live.args == payload["args"]
            and live.now >= restored.now
            and "recorder" in live.components):
        restored.advance(live.now)
        expected = live.components["recorder"].entries
        actual = restored.components["recorder"].entries
        header = (f"replay {args[0]}: restored and continued to "
                  f"t={live.now:g}ms against the live run")
    else:
        second, _ = restore(args[0])
        expected = restored.components["recorder"].entries
        actual = second.components["recorder"].entries
        header = (f"replay {args[0]}: two independent restores to "
                  f"t={restored.now:g}ms")
    divergence = diff_streams(expected, actual)
    return f"{header}\n{format_divergence(divergence)}"


def sanitize(state: CommandState, args: Sequence[str]) -> str:
    """sanitize -- audit the ledger's ticket/currency invariants now."""
    if args:
        raise ReproError("usage: sanitize")
    from repro.analysis.sanitizer import sanitize_ledger

    violations = sanitize_ledger(state.ledger)
    currencies = len(state.ledger.currencies())
    tickets = sum(len(c.issued) for c in state.ledger.currencies())
    if not violations:
        return (f"sanitize: ledger invariants OK "
                f"({currencies} currencies, {tickets} tickets)")
    lines = list(violations)
    lines.append(f"sanitize: {len(violations)} violation(s)")
    return "\n".join(lines)


COMMANDS: Dict[str, Callable[[CommandState, Sequence[str]], str]] = {
    "mktkt": mktkt,
    "rmtkt": rmtkt,
    "mkcur": mkcur,
    "rmcur": rmcur,
    "fund": fund,
    "unfund": unfund,
    "lstkt": lstkt,
    "lscur": lscur,
    "fundx": fundx,
    "lint": lint,
    "sanitize": sanitize,
    "chaos": chaos,
    "telemetry": telemetry,
    "serving": serving,
    "save": save,
    "load": load,
    "replay": replay,
}
