"""Deterministic recovery primitives: bounded retry with backoff.

Every retry in the reproduction is driven by the discrete-event
engine's *virtual* clock -- never ``time.sleep``, never wall time (lint
rule RPR006 enforces this).  A :class:`RetryPolicy` is pure data
(attempt cap, exponential backoff schedule, optional deadline); its
``delay_for`` is a pure function of the attempt number, so a retried
operation perturbs the simulation identically on every run.

Two drivers are provided:

* :func:`execute_with_retry` -- generic: call ``operation()`` now and,
  while it returns falsy, again after exponentially growing virtual
  delays.  The operation can return :data:`ABORT` to stop retrying when
  further attempts cannot succeed (e.g. the migrating thread exited).
* :func:`disk_submit_with_retry` -- resubmit a disk request whose
  completion was failed by an injected I/O-error window.

``Cluster.migrate_with_retry`` wires :func:`execute_with_retry` into
cluster migration so a migration racing a node crash backs off and
re-attempts (or aborts) instead of stranding the thread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, TYPE_CHECKING

from repro.errors import FaultError
from repro.sim.engine import Engine

if TYPE_CHECKING:  # pragma: no cover
    from repro.iosched.disk import Disk, DiskRequest

__all__ = ["ABORT", "RetryPolicy", "RetryState", "execute_with_retry",
           "disk_submit_with_retry"]

#: Sentinel an operation may return to stop retrying immediately
#: (retrying cannot succeed; distinct from transient falsy failure).
ABORT = object()


@dataclass(frozen=True)
class RetryPolicy:
    """A bounded exponential-backoff schedule (virtual milliseconds).

    Attempt ``k`` (1-based) that fails is retried after
    ``min(base_delay_ms * backoff_factor**(k-1), max_delay_ms)``,
    up to ``max_attempts`` total attempts; ``timeout_ms`` (when set)
    additionally bounds the total virtual time spent retrying.
    """

    max_attempts: int = 4
    base_delay_ms: float = 50.0
    backoff_factor: float = 2.0
    max_delay_ms: float = 5_000.0
    timeout_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise FaultError(f"max_attempts must be >= 1: {self.max_attempts}")
        if self.base_delay_ms <= 0:
            raise FaultError(
                f"base_delay_ms must be positive: {self.base_delay_ms}")
        if self.backoff_factor < 1:
            raise FaultError(
                f"backoff_factor must be >= 1: {self.backoff_factor}")
        if self.max_delay_ms < self.base_delay_ms:
            raise FaultError("max_delay_ms must be >= base_delay_ms")
        if self.timeout_ms is not None and self.timeout_ms <= 0:
            raise FaultError(f"timeout_ms must be positive: {self.timeout_ms}")

    def delay_for(self, attempt: int) -> float:
        """Backoff after the ``attempt``-th failure (1-based), in ms."""
        if attempt < 1:
            raise FaultError(f"attempt is 1-based: {attempt}")
        return min(self.base_delay_ms * self.backoff_factor ** (attempt - 1),
                   self.max_delay_ms)


class RetryState:
    """Mutable progress record returned by the retry drivers."""

    __slots__ = ("attempts", "succeeded", "gave_up", "aborted",
                 "started_at", "finished_at")

    def __init__(self, started_at: float) -> None:
        self.attempts = 0
        self.succeeded = False
        self.gave_up = False
        self.aborted = False
        self.started_at = started_at
        self.finished_at: Optional[float] = None

    @property
    def finished(self) -> bool:
        """True once the operation succeeded, aborted, or gave up."""
        return self.succeeded or self.gave_up or self.aborted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        verdict = ("succeeded" if self.succeeded
                   else "aborted" if self.aborted
                   else "gave-up" if self.gave_up else "pending")
        return f"<RetryState attempts={self.attempts} {verdict}>"


def execute_with_retry(
    engine: Engine,
    operation: Callable[[], Any],
    policy: Optional[RetryPolicy] = None,
    label: str = "retry",
    on_success: Optional[Callable[[RetryState], None]] = None,
    on_give_up: Optional[Callable[[RetryState], None]] = None,
) -> RetryState:
    """Run ``operation`` now, retrying failures with virtual backoff.

    ``operation()`` returning truthy means success; falsy means a
    transient failure (retried while attempts and the deadline allow);
    :data:`ABORT` means permanent failure (stop immediately).  The
    first attempt runs synchronously; later attempts are engine events,
    so callers must keep the engine running to see them.  Returns the
    live :class:`RetryState` (inspect it after the engine advances).
    """
    policy = policy if policy is not None else RetryPolicy()
    state = RetryState(started_at=engine.now)

    def finish(verdict: str) -> None:
        setattr(state, verdict, True)
        state.finished_at = engine.now
        callback = on_success if verdict == "succeeded" else on_give_up
        if callback is not None:
            callback(state)

    def attempt() -> None:
        state.attempts += 1
        outcome = operation()
        if outcome is ABORT:
            finish("aborted")
            return
        if outcome:
            finish("succeeded")
            return
        if state.attempts >= policy.max_attempts:
            finish("gave_up")
            return
        delay = policy.delay_for(state.attempts)
        if policy.timeout_ms is not None and \
                engine.now - state.started_at + delay > policy.timeout_ms:
            finish("gave_up")
            return
        engine.call_after(delay, attempt, label=label)

    attempt()
    return state


def disk_submit_with_retry(
    disk: "Disk",
    client: str,
    sector: int,
    size_kb: float,
    policy: Optional[RetryPolicy] = None,
    on_complete: Optional[Callable[["DiskRequest"], None]] = None,
) -> RetryState:
    """Submit a disk request, resubmitting after injected I/O errors.

    Each failed completion (``request.failed``) counts as one attempt
    and schedules a resubmission after the policy's backoff; the final
    outcome (successful request, or the last failed one once attempts
    are exhausted) is passed to ``on_complete``.
    """
    policy = policy if policy is not None else RetryPolicy()
    state = RetryState(started_at=disk.engine.now)

    def completed(request: "DiskRequest") -> None:
        state.attempts += 1
        if not request.failed:
            state.succeeded = True
            state.finished_at = disk.engine.now
            if on_complete is not None:
                on_complete(request)
            return
        if state.attempts >= policy.max_attempts:
            state.gave_up = True
            state.finished_at = disk.engine.now
            if on_complete is not None:
                on_complete(request)
            return
        disk.engine.call_after(
            policy.delay_for(state.attempts),
            lambda: disk.submit(client, sector, size_kb, completed),
            label="disk-retry",
        )

    disk.submit(client, sector, size_kb, completed)
    return state
