"""Deterministic fault plans: seeded schedules of failures.

A :class:`FaultPlan` is an immutable, time-sorted list of
:class:`FaultEvent` objects -- *when* each fault fires, *what* kind it
is, and *which* component it targets.  Plans are either written out
explicitly through the :class:`FaultPlanBuilder`'s declarative methods
or derived from a Park-Miller stream (:meth:`FaultPlanBuilder.random_crashes`),
so the same seed always yields the same schedule: a chaos run is an
ordinary deterministic simulation whose inputs happen to include
failures.

The plan is pure data.  Applying it to a live system is the job of
:class:`repro.faults.injector.FaultInjector`, which registers one
engine callback per event; nothing here touches the kernel.

Fault taxonomy (see ``docs/FAULTS.md``):

==============  =========================================================
Kind            Meaning
==============  =========================================================
node-crash      a cluster node fails: pinned/blocked threads die (their
                tickets are reclaimed), unpinned runnable threads are
                re-placed on the least-funded live node
node-restart    a crashed node rejoins placement and rebalancing
thread-kill     one thread is terminated, tickets reclaimed
clock-skew      a kernel's quantum is scaled by ``factor`` for a window
timer-jitter    a kernel's quantum gets uniform +/- ``amplitude_ms``
                noise for a window (seeded, replayable)
ipc-drop        a kernel's ports drop deliveries with ``drop_rate``;
                dropped messages are retransmitted with bounded
                exponential backoff (see ``repro.faults.retry``)
ipc-delay       a kernel's ports delay deliveries by ``delay_ms``
                (+ optional seeded jitter)
disk-errors     a disk fails completions with ``error_rate``
==============  =========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.prng import ParkMillerPRNG
from repro.errors import FaultError

__all__ = ["FaultKind", "FaultEvent", "FaultPlan", "FaultPlanBuilder"]


class FaultKind:
    """String constants naming the supported fault kinds."""

    NODE_CRASH = "node-crash"
    NODE_RESTART = "node-restart"
    THREAD_KILL = "thread-kill"
    CLOCK_SKEW = "clock-skew"
    TIMER_JITTER = "timer-jitter"
    IPC_DROP = "ipc-drop"
    IPC_DELAY = "ipc-delay"
    DISK_ERRORS = "disk-errors"

    ALL = (NODE_CRASH, NODE_RESTART, THREAD_KILL, CLOCK_SKEW, TIMER_JITTER,
           IPC_DROP, IPC_DELAY, DISK_ERRORS)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: fire time (virtual ms), kind, target, params."""

    time: float
    kind: str
    target: str
    params: Dict[str, Any] = field(default_factory=dict)

    def describe(self, with_time: bool = True) -> str:
        """Canonical one-line rendering (stable across runs).

        ``with_time=False`` omits the scheduled time -- used by the
        injector's application log, which prefixes the actual firing
        time itself.
        """
        extras = " ".join(
            f"{key}={self.params[key]!r}" for key in sorted(self.params)
        )
        text = f"{self.kind} {self.target}"
        if with_time:
            text = f"t={self.time:g} {text}"
        return f"{text} {extras}" if extras else text

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (see :meth:`FaultPlan.to_dict`)."""
        return {
            "time": self.time,
            "kind": self.kind,
            "target": self.target,
            "params": {key: self.params[key] for key in sorted(self.params)},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultEvent":
        """Inverse of :meth:`to_dict`; validates shape and kind."""
        try:
            time = float(data["time"])
            kind = data["kind"]
            target = data["target"]
        except (KeyError, TypeError, ValueError) as exc:
            raise FaultError(f"malformed fault event: {data!r}") from exc
        if kind not in FaultKind.ALL:
            raise FaultError(f"unknown fault kind {kind!r}")
        params = data.get("params", {})
        if not isinstance(params, dict):
            raise FaultError(f"fault event params must be a dict: {params!r}")
        return cls(time, kind, target, dict(params))


class FaultPlan:
    """An immutable, time-ordered fault schedule.

    Build one with :class:`FaultPlanBuilder`; iterate to get the events
    in firing order.  ``signature()`` renders the whole schedule as a
    stable string -- two plans with equal signatures inject identical
    fault sequences, which is what the determinism tests compare.
    """

    def __init__(self, events: Sequence[FaultEvent], seed: int) -> None:
        for event in events:
            if event.kind not in FaultKind.ALL:
                raise FaultError(f"unknown fault kind {event.kind!r}")
            if event.time < 0:
                raise FaultError(f"fault time must be >= 0: {event.time}")
        # Stable sort: same-time events keep their declaration order.
        self.events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: e.time)
        )
        self.seed = seed

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: str) -> List[FaultEvent]:
        """Events of one kind, in firing order."""
        return [e for e in self.events if e.kind == kind]

    def signature(self) -> str:
        """Stable textual digest of the schedule (one line per event)."""
        lines = [f"seed={self.seed}"]
        lines.extend(event.describe() for event in self.events)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form: the plan is pure data, so checkpoints
        can embed it and reconstruct an identical schedule on restore."""
        return {
            "seed": self.seed,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        """Inverse of :meth:`to_dict` (validates every event)."""
        try:
            seed = int(data["seed"])
            events = data["events"]
        except (KeyError, TypeError, ValueError) as exc:
            raise FaultError(f"malformed fault plan: {data!r}") from exc
        if not isinstance(events, (list, tuple)):
            raise FaultError(f"fault plan events must be a list: {events!r}")
        return cls([FaultEvent.from_dict(event) for event in events],
                   seed=seed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultPlan seed={self.seed} events={len(self.events)}>"


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise FaultError(message)


class FaultPlanBuilder:
    """Declarative construction of :class:`FaultPlan` objects.

    Every method validates its parameters and returns ``self`` so
    schedules chain::

        plan = (FaultPlanBuilder(seed=7)
                .crash_node("node1", at=30_000, restart_after=20_000)
                .drop_ipc("node0", at=10_000, duration=5_000, drop_rate=0.3)
                .build())

    The builder owns a Park-Miller stream seeded with ``seed``; the
    ``random_*`` methods draw from it, so generated schedules replay
    bit-for-bit for a given seed and call sequence.
    """

    def __init__(self, seed: int = 1) -> None:
        self.seed = int(seed)
        self._prng = ParkMillerPRNG(self.seed)
        self._events: List[FaultEvent] = []

    # -- generic ------------------------------------------------------------

    def add(self, time: float, kind: str, target: str,
            **params: Any) -> "FaultPlanBuilder":
        """Append one event (escape hatch; prefer the named methods)."""
        _require(kind in FaultKind.ALL, f"unknown fault kind {kind!r}")
        _require(time >= 0, f"fault time must be >= 0: {time}")
        _require(bool(target), "fault target must be non-empty")
        self._events.append(FaultEvent(float(time), kind, target, params))
        return self

    # -- node lifecycle -----------------------------------------------------

    def crash_node(self, node: str, at: float,
                   restart_after: Optional[float] = None) -> "FaultPlanBuilder":
        """Crash ``node`` at ``at``; optionally restart it later."""
        self.add(at, FaultKind.NODE_CRASH, node)
        if restart_after is not None:
            _require(restart_after > 0,
                     f"restart_after must be positive: {restart_after}")
            self.add(at + restart_after, FaultKind.NODE_RESTART, node)
        return self

    def restart_node(self, node: str, at: float) -> "FaultPlanBuilder":
        """Restart a crashed ``node`` at ``at``."""
        return self.add(at, FaultKind.NODE_RESTART, node)

    def random_crashes(self, nodes: Sequence[str], count: int,
                       start: float, end: float,
                       restart_after: Optional[float] = None
                       ) -> "FaultPlanBuilder":
        """``count`` seeded crash(/restart) events over [start, end).

        Crash times are uniform draws from the builder's Park-Miller
        stream, sorted; victims are drawn uniformly from ``nodes``.
        The same builder seed reproduces the same schedule.
        """
        _require(bool(nodes), "random_crashes needs at least one node")
        _require(count >= 0, f"count must be >= 0: {count}")
        _require(end > start >= 0, f"need end > start >= 0: [{start}, {end})")
        times = sorted(
            start + self._prng.uniform() * (end - start) for _ in range(count)
        )
        for time in times:
            victim = self._prng.choice(list(nodes))
            self.crash_node(victim, at=time, restart_after=restart_after)
        return self

    # -- threads ------------------------------------------------------------

    def kill_thread(self, thread: str, at: float) -> "FaultPlanBuilder":
        """Terminate the thread named ``thread`` at ``at``."""
        return self.add(at, FaultKind.THREAD_KILL, thread)

    # -- timers -------------------------------------------------------------

    def clock_skew(self, node: str, at: float, factor: float,
                   duration: float) -> "FaultPlanBuilder":
        """Scale ``node``'s scheduling quantum by ``factor`` for a window."""
        _require(factor > 0, f"skew factor must be positive: {factor}")
        _require(duration > 0, f"duration must be positive: {duration}")
        return self.add(at, FaultKind.CLOCK_SKEW, node,
                        factor=float(factor), duration=float(duration))

    def timer_jitter(self, node: str, at: float, amplitude_ms: float,
                     duration: float) -> "FaultPlanBuilder":
        """Add uniform +/- ``amplitude_ms`` quantum noise for a window."""
        _require(amplitude_ms > 0,
                 f"amplitude_ms must be positive: {amplitude_ms}")
        _require(duration > 0, f"duration must be positive: {duration}")
        return self.add(at, FaultKind.TIMER_JITTER, node,
                        amplitude_ms=float(amplitude_ms),
                        duration=float(duration))

    # -- IPC ----------------------------------------------------------------

    def drop_ipc(self, node: str, at: float, duration: float,
                 drop_rate: float = 0.5, port: Optional[str] = None,
                 max_attempts: int = 4) -> "FaultPlanBuilder":
        """Drop deliveries on ``node``'s ports with ``drop_rate``.

        Dropped messages are retransmitted with bounded exponential
        backoff; ``port`` narrows the fault to one port name.
        """
        _require(0 < drop_rate <= 1, f"drop_rate must be in (0, 1]: {drop_rate}")
        _require(duration > 0, f"duration must be positive: {duration}")
        _require(max_attempts >= 1, f"max_attempts must be >= 1: {max_attempts}")
        params: Dict[str, Any] = {"drop_rate": float(drop_rate),
                                  "duration": float(duration),
                                  "max_attempts": int(max_attempts)}
        if port is not None:
            params["port"] = port
        return self.add(at, FaultKind.IPC_DROP, node, **params)

    def delay_ipc(self, node: str, at: float, duration: float,
                  delay_ms: float, jitter_ms: float = 0.0,
                  port: Optional[str] = None) -> "FaultPlanBuilder":
        """Delay deliveries on ``node``'s ports by ``delay_ms`` (+jitter)."""
        _require(delay_ms > 0, f"delay_ms must be positive: {delay_ms}")
        _require(jitter_ms >= 0, f"jitter_ms must be >= 0: {jitter_ms}")
        _require(duration > 0, f"duration must be positive: {duration}")
        params: Dict[str, Any] = {"delay_ms": float(delay_ms),
                                  "jitter_ms": float(jitter_ms),
                                  "duration": float(duration)}
        if port is not None:
            params["port"] = port
        return self.add(at, FaultKind.IPC_DELAY, node, **params)

    # -- disks --------------------------------------------------------------

    def disk_errors(self, disk: str, at: float, duration: float,
                    error_rate: float = 0.1) -> "FaultPlanBuilder":
        """Fail ``disk`` completions with ``error_rate`` for a window."""
        _require(0 < error_rate <= 1,
                 f"error_rate must be in (0, 1]: {error_rate}")
        _require(duration > 0, f"duration must be positive: {duration}")
        return self.add(at, FaultKind.DISK_ERRORS, disk,
                        error_rate=float(error_rate),
                        duration=float(duration))

    # -- finalization -------------------------------------------------------

    def build(self) -> FaultPlan:
        """Freeze the schedule into an immutable, time-sorted plan."""
        return FaultPlan(self._events, seed=self.seed)
