"""Deterministic fault injection and recovery (``repro.faults``).

The paper's proportional-share guarantees are exercised on a healthy
substrate; this subsystem makes them survivable.  Three layers:

* :mod:`repro.faults.plan` -- seeded, immutable fault schedules
  (:class:`FaultPlan`, :class:`FaultPlanBuilder`): node crash/restart,
  thread kill, clock skew, timer jitter, IPC drop/delay, disk errors;
* :mod:`repro.faults.injector` -- :class:`FaultInjector` applies a plan
  to a live kernel/cluster/disk through explicit seams, at exact
  virtual times;
* :mod:`repro.faults.retry` -- bounded, virtual-time exponential
  backoff (:class:`RetryPolicy`, :func:`execute_with_retry`) wired into
  IPC retransmission, disk resubmission, and cluster migration.

Everything is driven by the discrete-event engine's clock and
Park-Miller streams, so a chaos run replays bit-for-bit: same seed and
plan, same migrations, same fault timestamps, same fairness report.
See ``docs/FAULTS.md`` for the full taxonomy and determinism contract.
"""

from repro.faults.injector import FaultInjector, IpcFaultModel
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan, FaultPlanBuilder
from repro.faults.retry import (
    ABORT,
    RetryPolicy,
    RetryState,
    disk_submit_with_retry,
    execute_with_retry,
)

__all__ = [
    "ABORT",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultPlanBuilder",
    "IpcFaultModel",
    "RetryPolicy",
    "RetryState",
    "disk_submit_with_retry",
    "execute_with_retry",
]
