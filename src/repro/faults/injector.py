"""The fault injector: applies a :class:`FaultPlan` through seams.

The injector never monkey-patches.  Every fault kind maps onto an
explicit seam the target components expose:

=============  ==========================================================
Fault          Seam
=============  ==========================================================
node-crash     :meth:`repro.distributed.cluster.Cluster.crash_node`
node-restart   :meth:`repro.distributed.cluster.Cluster.restart_node`
thread-kill    :meth:`repro.kernel.kernel.Kernel.kill`
clock-skew     ``Kernel.quantum_jitter`` (quantum-mapping callable)
timer-jitter   ``Kernel.quantum_jitter`` with a seeded noise stream
ipc-drop       ``Kernel.ipc_faults`` (:class:`IpcFaultModel`) consulted
               by ``Port._deliver_or_queue``
ipc-delay      ``Kernel.ipc_faults`` likewise
disk-errors    ``Disk.fault_policy`` consulted by ``Disk._complete``
=============  ==========================================================

Arming registers one engine callback per plan event, so faults fire at
exact virtual times interleaved deterministically with the workload.
Every application is appended to :attr:`FaultInjector.applied` as a
``(time, description)`` pair -- two runs of the same seeded system
under the same plan produce identical logs, which is what the
determinism tests assert.

Faults that cannot apply (crashing an already-dead node, killing an
already-exited thread) are recorded as skipped rather than raised:
a chaos schedule races the workload by design, and e.g. the target
thread finishing first is a legitimate outcome, not a planning error.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.core.prng import ParkMillerPRNG
from repro.errors import FaultError, ReproError
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.faults.retry import RetryPolicy
from repro.kernel.kernel import Kernel
from repro.sim.engine import Engine

if TYPE_CHECKING:  # pragma: no cover
    from repro.distributed.cluster import Cluster
    from repro.iosched.disk import Disk, DiskRequest
    from repro.kernel.ipc import Port, Request
    from repro.kernel.thread import Thread

__all__ = ["IpcFaultModel", "FaultInjector"]

_EPS = 1e-9


class IpcFaultModel:
    """Per-kernel message drop/delay decisions during a fault window.

    Installed on ``Kernel.ipc_faults`` by the injector;
    ``Port._deliver_or_queue`` calls :meth:`intercept` before every
    delivery.  Decisions draw from a dedicated Park-Miller stream, so
    they replay exactly.

    Dropped messages are retransmitted with the bounded exponential
    backoff of ``retry``; an RPC whose attempts are exhausted is
    delivered anyway (after one final backoff) so its blocked client is
    never stranded, while an exhausted asynchronous send is lost for
    good (counted in :attr:`messages_lost`).
    """

    def __init__(self, prng: ParkMillerPRNG, drop_rate: float = 0.0,
                 delay_ms: float = 0.0, jitter_ms: float = 0.0,
                 port: Optional[str] = None,
                 retry: Optional[RetryPolicy] = None) -> None:
        self._prng = prng
        self.drop_rate = drop_rate
        self.delay_ms = delay_ms
        self.jitter_ms = jitter_ms
        self.port = port
        self.retry = retry if retry is not None else RetryPolicy()
        # -- statistics ------------------------------------------------------
        self.dropped = 0
        self.retransmitted = 0
        self.forced_deliveries = 0
        self.messages_lost = 0
        self.delayed = 0

    def intercept(self, port: "Port", request: "Request") -> bool:
        """True when this model consumed the delivery.

        The port must then *not* deliver; the model either lost the
        message or scheduled a future ``_deliver_now``/retransmission.
        """
        if self.port is not None and port.name != self.port:
            return False
        engine = port.kernel.engine
        if self.drop_rate > 0 and self._prng.uniform() < self.drop_rate:
            self.dropped += 1
            attempt = request.delivery_attempts + 1
            request.delivery_attempts = attempt
            backoff = self.retry.delay_for(min(attempt,
                                               self.retry.max_attempts))
            telemetry = getattr(port.kernel, "telemetry", None)
            if attempt < self.retry.max_attempts:
                # Retransmit through the fault check again: a retry can
                # itself be dropped, like a real lossy link.
                self.retransmitted += 1
                if telemetry is not None:
                    telemetry.on_ipc_retransmit(port, request, backoff,
                                                forced=False)
                engine.call_after(
                    backoff, lambda: port._deliver_or_queue(request),
                    label="ipc-retransmit",
                )
            elif request.is_rpc:
                # Never strand a blocked RPC client: force the final
                # delivery past the fault window's dice.
                self.forced_deliveries += 1
                if telemetry is not None:
                    telemetry.on_ipc_retransmit(port, request, backoff,
                                                forced=True)
                engine.call_after(
                    backoff, lambda: port._deliver_now(request),
                    label="ipc-forced-delivery",
                )
            else:
                self.messages_lost += 1
            return True
        if self.delay_ms > 0 or self.jitter_ms > 0:
            delay = self.delay_ms + self.jitter_ms * self._prng.uniform()
            self.delayed += 1
            engine.call_after(delay, lambda: port._deliver_now(request),
                              label="ipc-delay")
            return True
        return False


class FaultInjector:
    """Applies a :class:`FaultPlan` to a live simulated system.

    Parameters
    ----------
    plan:
        The fault schedule.
    cluster:
        Optional :class:`~repro.distributed.cluster.Cluster`; its nodes
        become named targets (``node0`` ...) and supply the engine.
    kernels:
        Extra named kernels (for single-machine chaos without a
        cluster), e.g. ``{"kernel": kernel}``.
    disks:
        Named disks for ``disk-errors`` events.
    engine:
        Required only when no cluster is given.
    """

    def __init__(self, plan: FaultPlan, cluster: Optional["Cluster"] = None,
                 kernels: Optional[Dict[str, Kernel]] = None,
                 disks: Optional[Dict[str, "Disk"]] = None,
                 engine: Optional[Engine] = None) -> None:
        self.plan = plan
        self.cluster = cluster
        self.kernels: Dict[str, Kernel] = dict(kernels or {})
        if cluster is not None:
            for node in cluster.nodes:
                self.kernels.setdefault(node.name, node.kernel)
        self.disks: Dict[str, "Disk"] = dict(disks or {})
        if engine is not None:
            self.engine = engine
        elif cluster is not None:
            self.engine = cluster.engine
        else:
            raise FaultError("injector needs an engine or a cluster")
        #: (virtual time, description) per applied (or skipped) fault.
        self.applied: List[Tuple[float, str]] = []
        self._prng = ParkMillerPRNG(plan.seed).spawn()
        self._armed = False
        #: Optional repro.telemetry.probe.Telemetry hub notified per
        #: applied fault; installed by Telemetry.instrument_injector.
        self.telemetry = None

    # -- arming --------------------------------------------------------------

    def arm(self) -> "FaultInjector":
        """Schedule every plan event on the engine (idempotence guarded)."""
        if self._armed:
            raise FaultError("injector is already armed")
        self._armed = True
        for event in self.plan:
            self.engine.call_at(
                event.time, lambda e=event: self._apply(e),
                label=f"fault:{event.kind}",
            )
        return self

    # -- application ---------------------------------------------------------

    def _apply(self, event: FaultEvent) -> None:
        handler = self._HANDLERS[event.kind]
        try:
            detail = handler(self, event)
        except FaultError:
            # Misconfiguration (unknown target, no cluster): fail loud.
            raise
        except ReproError as exc:
            # A fault that lost its race (node already down, ...) is a
            # legitimate chaos outcome; record it instead of blowing up
            # the engine loop.
            detail = f"skipped: {exc}"
        self.applied.append(
            (self.engine.now, f"{event.describe(with_time=False)} [{detail}]")
        )
        if self.telemetry is not None:
            self.telemetry.on_fault(event, detail, self.engine.now)

    def _node(self, name: str):
        if self.cluster is None:
            raise FaultError(f"no cluster attached; cannot target {name!r}")
        for node in self.cluster.nodes:
            if node.name == name:
                return node
        raise FaultError(
            f"unknown node {name!r}; have "
            f"{[n.name for n in self.cluster.nodes]}"
        )

    def _kernel(self, name: str) -> Kernel:
        try:
            return self.kernels[name]
        except KeyError:
            raise FaultError(
                f"unknown kernel target {name!r}; have "
                f"{sorted(self.kernels)}"
            ) from None

    def _disk(self, name: str) -> "Disk":
        try:
            return self.disks[name]
        except KeyError:
            raise FaultError(
                f"unknown disk target {name!r}; have {sorted(self.disks)}"
            ) from None

    def _find_thread(self, name: str) -> Optional["Thread"]:
        for kernel in self.kernels.values():
            for thread in kernel.threads:
                if thread.name == name and thread.alive:
                    return thread
        return None

    # -- per-kind handlers ---------------------------------------------------

    def _apply_node_crash(self, event: FaultEvent) -> str:
        node = self._node(event.target)
        before_kills = self.cluster.threads_killed
        before_evac = self.cluster.evacuations
        self.cluster.crash_node(node)
        return (f"evacuated={self.cluster.evacuations - before_evac} "
                f"killed={self.cluster.threads_killed - before_kills}")

    def _apply_node_restart(self, event: FaultEvent) -> str:
        node = self._node(event.target)
        self.cluster.restart_node(node)
        return "rejoined"

    def _apply_thread_kill(self, event: FaultEvent) -> str:
        thread = self._find_thread(event.target)
        if thread is None:
            return "skipped: no live thread by that name"
        thread.kernel.kill(thread)
        if self.cluster is not None:
            self.cluster._prune_exited()
        return "killed"

    def _install_quantum_map(self, kernel: Kernel,
                             mapper: Callable[[float], float],
                             duration: float) -> None:
        kernel.quantum_jitter = mapper

        def clear() -> None:
            # Only clear our own window; a later overlapping window may
            # have replaced the mapper already.
            if kernel.quantum_jitter is mapper:
                kernel.quantum_jitter = None

        self.engine.call_after(duration, clear, label="fault-window-end")

    def _apply_clock_skew(self, event: FaultEvent) -> str:
        kernel = self._kernel(event.target)
        factor = event.params["factor"]
        self._install_quantum_map(
            kernel, lambda quantum: quantum * factor, event.params["duration"]
        )
        return f"quantum x{factor:g} for {event.params['duration']:g}ms"

    def _apply_timer_jitter(self, event: FaultEvent) -> str:
        kernel = self._kernel(event.target)
        amplitude = event.params["amplitude_ms"]
        noise = self._prng.spawn()

        def jitter(quantum: float) -> float:
            return max(_EPS, quantum + (noise.uniform() * 2 - 1) * amplitude)

        self._install_quantum_map(kernel, jitter, event.params["duration"])
        return (f"quantum +/-{amplitude:g}ms for "
                f"{event.params['duration']:g}ms")

    def _install_ipc_model(self, kernel: Kernel, model: IpcFaultModel,
                           duration: float) -> None:
        kernel.ipc_faults = model

        def clear() -> None:
            if kernel.ipc_faults is model:
                kernel.ipc_faults = None

        self.engine.call_after(duration, clear, label="fault-window-end")

    def _apply_ipc_drop(self, event: FaultEvent) -> str:
        kernel = self._kernel(event.target)
        model = IpcFaultModel(
            self._prng.spawn(),
            drop_rate=event.params["drop_rate"],
            port=event.params.get("port"),
            retry=RetryPolicy(max_attempts=event.params["max_attempts"]),
        )
        self._install_ipc_model(kernel, model, event.params["duration"])
        return (f"drop_rate={event.params['drop_rate']:g} for "
                f"{event.params['duration']:g}ms")

    def _apply_ipc_delay(self, event: FaultEvent) -> str:
        kernel = self._kernel(event.target)
        model = IpcFaultModel(
            self._prng.spawn(),
            delay_ms=event.params["delay_ms"],
            jitter_ms=event.params["jitter_ms"],
            port=event.params.get("port"),
        )
        self._install_ipc_model(kernel, model, event.params["duration"])
        return (f"delay={event.params['delay_ms']:g}ms for "
                f"{event.params['duration']:g}ms")

    def _apply_disk_errors(self, event: FaultEvent) -> str:
        disk = self._disk(event.target)
        rate = event.params["error_rate"]
        dice = self._prng.spawn()

        def fail(request: "DiskRequest") -> bool:
            return dice.uniform() < rate

        disk.fault_policy = fail

        def clear() -> None:
            if disk.fault_policy is fail:
                disk.fault_policy = None

        self.engine.call_after(event.params["duration"], clear,
                               label="fault-window-end")
        return (f"error_rate={rate:g} for {event.params['duration']:g}ms")

    _HANDLERS: Dict[str, Callable[["FaultInjector", FaultEvent], str]] = {
        FaultKind.NODE_CRASH: _apply_node_crash,
        FaultKind.NODE_RESTART: _apply_node_restart,
        FaultKind.THREAD_KILL: _apply_thread_kill,
        FaultKind.CLOCK_SKEW: _apply_clock_skew,
        FaultKind.TIMER_JITTER: _apply_timer_jitter,
        FaultKind.IPC_DROP: _apply_ipc_drop,
        FaultKind.IPC_DELAY: _apply_ipc_delay,
        FaultKind.DISK_ERRORS: _apply_disk_errors,
    }

    # -- reporting -----------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Typed state tree for checkpointing (see ``repro.checkpoint``).

        Captures the plan digest, the injector's own PRNG position (the
        stream that seeds per-fault noise generators), the armed flag,
        and the full application log.
        """
        return {
            "plan": self.plan.to_dict(),
            "prng": self._prng.snapshot_state(),
            "armed": self._armed,
            "applied": [{"time": time, "detail": text}
                        for time, text in self.applied],
        }

    def applied_log(self) -> List[str]:
        """Stable rendering of every applied fault (for comparisons)."""
        return [f"t={time:g} {text}" for time, text in self.applied]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FaultInjector events={len(self.plan)} "
                f"applied={len(self.applied)} armed={self._armed}>")
