"""Checkpoint notification hooks (import-gated observer seam).

The checkpoint layer must never *require* telemetry -- the acceptance
contract is that a run which never imports :mod:`repro.telemetry`
behaves bit-identically.  So instead of importing this module,
``repro.checkpoint.capture``/``restore`` look it up with
``sys.modules.get("repro.telemetry.hooks")`` and call
:func:`emit_checkpoint` only when telemetry was *already* imported by
someone else.  Subscribers (normally :class:`~repro.telemetry.probe.
Telemetry` hubs via ``observe_checkpoints``) receive
``on_checkpoint(kind, time, checksum, path)`` callbacks.
"""

from __future__ import annotations

from typing import Any, List, Optional

__all__ = ["subscribe", "unsubscribe", "subscribers", "emit_checkpoint"]

_SUBSCRIBERS: List[Any] = []


def subscribe(observer: Any) -> None:
    """Register an observer exposing ``on_checkpoint`` (idempotent)."""
    if observer not in _SUBSCRIBERS:
        _SUBSCRIBERS.append(observer)


def unsubscribe(observer: Any) -> None:
    """Remove an observer (no-op when absent)."""
    try:
        _SUBSCRIBERS.remove(observer)
    except ValueError:
        pass


def subscribers() -> List[Any]:
    """Current observers, in subscription order (a fresh list)."""
    return list(_SUBSCRIBERS)


def emit_checkpoint(kind: str, time: float, checksum: Optional[str],
                    path: Optional[str] = None) -> None:
    """Notify every observer of a checkpoint ``save`` or ``restore``."""
    for observer in list(_SUBSCRIBERS):
        observer.on_checkpoint(kind, time, checksum, path)
