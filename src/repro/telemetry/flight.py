"""Crash flight recorder: checksummed debug bundles for shard failures.

Every obs frame already carries a bounded per-core ring of recent
replay entries and completed spans (see
:mod:`repro.telemetry.aggregate`), shipped to the parent at every
epoch barrier.  When a sharded run dies --
:class:`~repro.errors.ShardError` (including
:class:`~repro.errors.FrameCorruptError`), a determinism-race
sanitizer trap, or an invariant violation -- the engine dumps those
rings, the latest global metrics, and the supervisor's recovery
timeline into a single JSON **flight bundle**:

* the bundle body is canonical JSON (sorted keys, compact separators)
  with a ``sha256`` over itself, so a bundle shipped around in a bug
  report is tamper-evident;
* rings live parent-side, so the bundle survives workers that died by
  SIGKILL and never got to flush anything;
* :func:`load_bundle` verifies the digest and raises on mismatch --
  the same contract as the checkpoint files.

The bundle deliberately contains only plain data already shipped over
the barrier protocol: producing it cannot perturb the (already dead)
run, and reproducing the failure needs nothing but the plan identity
inside it.
"""

from __future__ import annotations

import hashlib
import json
import os
import traceback
from typing import Any, Dict, Optional

from repro.errors import ReproError

__all__ = ["BUNDLE_FORMAT", "BUNDLE_VERSION", "build_bundle",
           "load_bundle", "summarize_bundle", "write_bundle"]

BUNDLE_FORMAT = "repro-flight-bundle"
BUNDLE_VERSION = 1


def _dumps(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _digest(body: Dict[str, Any]) -> str:
    return hashlib.sha256(_dumps(body).encode("utf-8")).hexdigest()


def build_bundle(error: BaseException, *,
                 plan_checksum: str,
                 time: float,
                 rings: Any,
                 metrics: Optional[Dict[str, Any]] = None,
                 recovery: Optional[Dict[str, Any]] = None,
                 context: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Assemble a flight bundle for ``error`` (adds the digest)."""
    body: Dict[str, Any] = {
        "format": BUNDLE_FORMAT,
        "version": BUNDLE_VERSION,
        "error": {
            "type": type(error).__name__,
            "message": str(error),
            "traceback": traceback.format_exception(
                type(error), error, error.__traceback__),
        },
        "plan": plan_checksum,
        "time": float(time),
        "rings": rings,
        "metrics": metrics or {},
        "recovery": recovery or {},
        "context": context or {},
    }
    body["sha256"] = _digest({key: value for key, value in body.items()
                              if key != "sha256"})
    return body


def write_bundle(directory: str, bundle: Dict[str, Any]) -> str:
    """Write a bundle as ``flight-<ms>-<digest12>.json``; returns the path."""
    os.makedirs(directory, exist_ok=True)
    stamp = f"{bundle['time']:.0f}"
    name = f"flight-{stamp}-{bundle['sha256'][:12]}.json"
    path = os.path.join(directory, name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(_dumps(bundle) + "\n")
    return path


def load_bundle(path: str) -> Dict[str, Any]:
    """Read and digest-verify a flight bundle."""
    with open(path, "r", encoding="utf-8") as handle:
        bundle = json.load(handle)
    if bundle.get("format") != BUNDLE_FORMAT:
        raise ReproError(
            f"{path}: not a {BUNDLE_FORMAT} file "
            f"(format={bundle.get('format')!r})")
    expected = bundle.get("sha256")
    actual = _digest({key: value for key, value in bundle.items()
                      if key != "sha256"})
    if actual != expected:
        raise ReproError(
            f"{path}: flight bundle checksum mismatch: recorded "
            f"{expected!r}, recomputed {actual!r}")
    return bundle


def summarize_bundle(bundle: Dict[str, Any]) -> Dict[str, Any]:
    """Small human-facing digest of a (verified) bundle."""
    rings = bundle.get("rings") or []
    recovery = bundle.get("recovery") or {}
    return {
        "error": bundle["error"]["type"],
        "message": bundle["error"]["message"],
        "time": bundle["time"],
        "plan": bundle["plan"],
        "cores": len(rings),
        "ring_entries": sum(len(ring.get("ring", {}).get("entries", []))
                            for ring in rings),
        "ring_spans": sum(len(ring.get("ring", {}).get("spans", []))
                          for ring in rings),
        "recovery_events": len(recovery.get("events", [])),
        "degraded": bool(recovery.get("degraded")),
        "sha256": bundle["sha256"],
    }
