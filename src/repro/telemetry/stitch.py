"""Cross-shard trace stitching: one canonical Chrome trace per run.

Each :class:`~repro.shard.core.ShardCore` traces into a private
:class:`~repro.telemetry.spans.SpanTracer` whose span ids are local to
the core.  This module merges those per-core dumps into one Chrome
trace-event payload:

* **Clock alignment is free.**  Every core's timestamps are virtual
  milliseconds of the same simulated universe, and the barrier
  protocol guarantees no cross-core effect is visible before its
  barrier instant -- so per-core spans can be interleaved directly on
  the canonical ``(start time, core, local sid)`` order with no skew
  correction.  Barrier instants are drawn on a dedicated track as the
  alignment witnesses.
* **Span ids are remapped.**  Local sids are reassigned from a single
  global counter in the canonical order above; parent links are
  remapped per core, so nesting survives the merge.
* **Flow events stitch the seams.**  The shard layer records
  ``shard.tx.<kind>`` / ``shard.rx.<kind>`` instants when a barrier
  payload is emitted and applied; matching ``(src, seq)`` pairs become
  Chrome flow events (``ph:"s"`` at the emission, ``ph:"f"`` at the
  application), so IPC call/send/reply edges and migrate/evacuate
  spawns render as arrows across cores.
* **Recovery is a separate annex.**  Supervisor events
  (``fault.detected``, ``worker.restart``, ``epoch.retry``,
  ``backend.degrade``) are instants on a dedicated recovery process.
  They describe *host* fate, which legitimately differs between
  supervised and bare runs of the same universe, so the metadata
  carries two digests: ``sha256`` over the canonical events only
  (identical across backends) and ``recovery_sha256`` over the annex.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.telemetry.exporters import sha256_text

__all__ = ["STITCH_FORMAT", "STITCH_VERSION", "stitch_trace",
           "stitched_chrome"]

STITCH_FORMAT = "repro-telemetry-stitched"
STITCH_VERSION = 1

#: pid layout: 0 = run-global tracks, 1..N = cores, N+1 = recovery.
_GLOBAL_PID = 0


def _dumps(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _flow_id(src: int, seq: int) -> int:
    """Stable flow-event id for a payload's ``(src, seq)`` identity."""
    return src * 1_000_000 + seq


class _TidAllocator:
    """Globally unique Chrome tids (one per (pid, track))."""

    def __init__(self) -> None:
        self._next = 0
        self._tids: Dict[Tuple[int, str], int] = {}
        self.meta: List[Dict[str, Any]] = []

    def tid(self, pid: int, track: str) -> int:
        key = (pid, track)
        if key not in self._tids:
            self._tids[key] = self._next
            self.meta.append({
                "ph": "M", "pid": pid, "tid": self._next, "ts": 0,
                "name": "thread_name", "args": {"name": track},
            })
            self._next += 1
        return self._tids[key]


def stitch_trace(dumps: List[Dict[str, Any]], *,
                 barriers: Optional[List[Dict[str, Any]]] = None,
                 alerts: Optional[List[Dict[str, Any]]] = None,
                 recovery: Optional[List[Dict[str, Any]]] = None,
                 end_time: Optional[float] = None) -> Dict[str, Any]:
    """Merge per-core span dumps into one Chrome trace payload.

    ``dumps`` holds one ``{"core", "spans", "open_spans"}`` record per
    core (the backend's ``obs_dumps()``); ``barriers`` the aggregator's
    barrier instants; ``alerts`` the SLO evaluator's breach events
    (canonical); ``recovery`` the supervisor's event log (annex).
    Open spans are clamped to ``end_time`` and flagged
    ``stitch_open`` -- the dump is a pure read, the core's tracer is
    never finalized by stitching.
    """
    dumps = sorted(dumps, key=lambda dump: dump["core"])
    tids = _TidAllocator()
    events: List[Dict[str, Any]] = []
    process_meta: List[Dict[str, Any]] = [{
        "ph": "M", "pid": _GLOBAL_PID, "tid": 0, "ts": 0,
        "name": "process_name", "args": {"name": "repro.shard"},
    }]

    # -- collect (core, span) pairs in the canonical merge order -----------
    entries: List[Tuple[float, int, int, Dict[str, Any], bool]] = []
    for dump in dumps:
        core = dump["core"]
        process_meta.append({
            "ph": "M", "pid": core + 1, "tid": 0, "ts": 0,
            "name": "process_name", "args": {"name": f"core{core}"},
        })
        for span in dump.get("spans", []):
            entries.append((span["start"], core, span["sid"], span, False))
        for span in dump.get("open_spans", []):
            entries.append((span["start"], core, span["sid"], span, True))
    entries.sort(key=lambda entry: (entry[0], entry[1], entry[2]))

    sid_map: Dict[Tuple[int, int], int] = {}
    for gid, (_, core, sid, _, _) in enumerate(entries):
        sid_map[(core, sid)] = gid

    tx_events: Dict[Tuple[int, int], Dict[str, Any]] = {}
    rx_events: Dict[Tuple[int, int], Dict[str, Any]] = {}
    span_events: List[Dict[str, Any]] = []
    for start, core, sid, span, is_open in entries:
        pid = core + 1
        tid = tids.tid(pid, span["track"])
        gid = sid_map[(core, sid)]
        parent = sid_map.get((core, span["parent"]))
        attrs = dict(span.get("attrs", {}))
        if is_open:
            attrs["stitch_open"] = True
        args = {"sid": gid, "parent": parent, "core": core, **attrs}
        end = span["end"]
        if end is None:
            end = end_time if end_time is not None else start
        name = span["name"]
        if end == start:
            event = {"ph": "i", "s": "t", "pid": pid, "tid": tid,
                     "ts": start * 1000.0, "name": name,
                     "cat": span["category"], "args": args}
            if name.startswith("shard.tx."):
                tx_events[(attrs["src"], attrs["seq"])] = event
            elif name.startswith("shard.rx."):
                rx_events[(attrs["src"], attrs["seq"])] = event
        else:
            event = {"ph": "X", "pid": pid, "tid": tid,
                     "ts": start * 1000.0,
                     "dur": (end - start) * 1000.0,
                     "name": name, "cat": span["category"], "args": args}
        span_events.append(event)
    events.extend(span_events)

    # -- flow events: payload emission -> barrier application --------------
    for key in sorted(set(tx_events) & set(rx_events)):
        tx, rx = tx_events[key], rx_events[key]
        kind = tx["name"][len("shard.tx."):]
        flow = _flow_id(*key)
        events.append({
            "ph": "s", "id": flow, "pid": tx["pid"], "tid": tx["tid"],
            "ts": tx["ts"], "name": f"shard.flow.{kind}", "cat": "shard",
            "args": {"src": key[0], "seq": key[1]},
        })
        events.append({
            "ph": "f", "bp": "e", "id": flow, "pid": rx["pid"],
            "tid": rx["tid"], "ts": rx["ts"],
            "name": f"shard.flow.{kind}", "cat": "shard",
            "args": {"src": key[0], "seq": key[1]},
        })

    # -- run-global tracks --------------------------------------------------
    for instant in barriers or []:
        events.append({
            "ph": "i", "s": "t", "pid": _GLOBAL_PID,
            "tid": tids.tid(_GLOBAL_PID, "barrier"),
            "ts": instant["time"] * 1000.0, "name": "shard.barrier",
            "cat": "shard", "args": {"payloads": instant["payloads"]},
        })
    for alert in alerts or []:
        events.append({
            "ph": "i", "s": "t", "pid": _GLOBAL_PID,
            "tid": tids.tid(_GLOBAL_PID, "slo"),
            "ts": alert["time"] * 1000.0,
            "name": f"slo.{alert['rule']}", "cat": "slo",
            "args": {key: value for key, value in alert.items()
                     if key not in ("time", "rule")},
        })

    canonical = process_meta + tids.meta + events

    # -- recovery annex ------------------------------------------------------
    annex: List[Dict[str, Any]] = []
    recovery = list(recovery or [])
    if recovery:
        recovery_pid = len(dumps) + 1
        annex.append({
            "ph": "M", "pid": recovery_pid, "tid": 0, "ts": 0,
            "name": "process_name", "args": {"name": "supervisor"},
        })
        annex.append({
            "ph": "M", "pid": recovery_pid, "tid": 0, "ts": 0,
            "name": "thread_name", "args": {"name": "recovery"},
        })
        for event in recovery:
            annex.append({
                "ph": "i", "s": "t", "pid": recovery_pid, "tid": 0,
                "ts": float(event.get("time", 0.0)) * 1000.0,
                "name": f"shard.{event['kind']}", "cat": "recovery",
                "args": {key: value for key, value in event.items()
                         if key not in ("kind", "time")},
            })

    return {
        "displayTimeUnit": "ms",
        "metadata": {
            "format": STITCH_FORMAT,
            "version": STITCH_VERSION,
            "cores": len(dumps),
            "sha256": sha256_text(_dumps(canonical)),
            "recovery_sha256": sha256_text(_dumps(annex)),
        },
        "traceEvents": canonical + annex,
    }


def stitched_chrome(dumps: List[Dict[str, Any]], **kwargs: Any) -> str:
    """:func:`stitch_trace` serialized as canonical one-line JSON."""
    return _dumps(stitch_trace(dumps, **kwargs)) + "\n"
