"""Telemetry CLI: ``python -m repro.telemetry [report]``.

Two entry styles share this module:

* The legacy flat invocation (no subcommand) builds a checkpoint
  recipe, instruments it with a fresh
  :class:`~repro.telemetry.probe.Telemetry` hub, runs it to a virtual
  deadline, and exports the trace in any of the three formats.  Used
  by the CI telemetry-smoke job, which runs it twice with the same
  seed and asserts the Chrome exports are byte-identical.
* ``report`` drives a sharded run with the observability plane on and
  renders the aggregated run report (markdown to stdout; ``--json``/
  ``--md``/``--trace``/``--prom`` write checksummed artifacts).  With
  ``--bundle PATH`` it instead verifies and summarizes a crash
  flight-recorder bundle.

Exit status is non-zero when ``--validate`` finds schema problems in
the Chrome export, when a ``report`` run breaches its SLO policy, or
when a flight bundle fails its checksum.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.checkpoint.registry import build_recipe, recipe_names
from repro.telemetry.exporters import (
    export_chrome,
    export_jsonl,
    export_prometheus,
    validate_chrome_trace,
    write_checksummed,
)
from repro.telemetry.probe import Telemetry


def _report_main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry report",
        description="Aggregate a sharded run's observability plane "
                    "into a run report (or summarize a flight bundle).")
    parser.add_argument("--bundle", metavar="PATH",
                        help="verify + summarize a flight-recorder "
                             "bundle instead of running a plan")
    parser.add_argument("--plan", choices=("mix", "mix-ops", "spin"),
                        default="mix")
    parser.add_argument("--cores", type=int, default=4)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--until", type=float, default=5000.0)
    parser.add_argument("--backend", default="inline",
                        help="single/inline/mp (default: %(default)s)")
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--supervise", action="store_true",
                        help="supervised mp run (requires --backend mp)")
    parser.add_argument("--host-faults", metavar="PLAN",
                        help="host-fault preset/JSON file (requires "
                             "--supervise)")
    parser.add_argument("--json", metavar="PATH",
                        help="write the report document as JSON")
    parser.add_argument("--md", metavar="PATH",
                        help="write the markdown report")
    parser.add_argument("--trace", metavar="PATH",
                        help="write the stitched Chrome trace")
    parser.add_argument("--prom", metavar="PATH",
                        help="write aggregated metrics as Prometheus "
                             "text")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the markdown dump on stdout")
    args = parser.parse_args(argv)

    if args.bundle:
        from repro.telemetry.flight import load_bundle, summarize_bundle

        try:
            bundle = load_bundle(args.bundle)
        except Exception as exc:
            print(f"INVALID bundle: {exc}", file=sys.stderr)
            return 1
        print(json.dumps(summarize_bundle(bundle), indent=2,
                         sort_keys=True))
        return 0

    from repro.shard.engine import ShardedEngine
    from repro.shard.hostfaults import load_host_faults
    from repro.shard.plan import mix_plan, spin_plan
    from repro.telemetry.obsreport import render_markdown

    if args.host_faults and not args.supervise:
        parser.error("--host-faults requires --supervise")
    makers = {
        "mix": lambda: mix_plan(seed=args.seed, cores=args.cores),
        "mix-ops": lambda: mix_plan(seed=args.seed, cores=args.cores,
                                    with_ops=True),
        "spin": lambda: spin_plan(seed=args.seed, cores=args.cores),
    }
    plan = makers[args.plan]()
    host_faults = (load_host_faults(args.host_faults, args.shards)
                   if args.host_faults else None)
    with ShardedEngine(plan, shards=args.shards, backend=args.backend,
                       supervise=args.supervise, host_faults=host_faults,
                       obs=True) as engine:
        engine.advance(args.until)
        report = engine.obs_report()
        trace = engine.stitched_trace()
        view = engine.metrics_view()
    markdown = render_markdown(report)
    if not args.quiet:
        print(markdown, end="")
    slo = report["canonical"]["slo"]
    print(f"canonical sha256: {report['canonical_sha256']}",
          file=sys.stderr)
    if args.json:
        digest = write_checksummed(
            args.json, json.dumps(report, sort_keys=True,
                                  separators=(",", ":")) + "\n")
        print(f"json {args.json} sha256={digest}", file=sys.stderr)
    if args.md:
        digest = write_checksummed(args.md, markdown)
        print(f"md {args.md} sha256={digest}", file=sys.stderr)
    if args.trace:
        digest = write_checksummed(args.trace, trace)
        print(f"trace {args.trace} sha256={digest}", file=sys.stderr)
    if args.prom:
        digest = write_checksummed(args.prom, export_prometheus(view))
        print(f"prom {args.prom} sha256={digest}", file=sys.stderr)
    return 0 if slo["ok"] else 2


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "report":
        return _report_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Trace a recipe run and export spans/metrics.",
    )
    parser.add_argument("--recipe", default="chaos-fairness",
                        help="registered recipe name (default: %(default)s)")
    parser.add_argument("--seed", type=int, default=2718,
                        help="recipe seed (default: %(default)s)")
    parser.add_argument("--run-until", type=float, default=60_000.0,
                        metavar="MS",
                        help="virtual deadline in ms (default: %(default)s)")
    parser.add_argument("--max-spans", type=int, default=1_000_000,
                        help="span buffer bound (default: %(default)s)")
    parser.add_argument("--chrome", metavar="PATH",
                        help="write Chrome trace-event JSON (Perfetto)")
    parser.add_argument("--jsonl", metavar="PATH",
                        help="write the JSONL event stream")
    parser.add_argument("--prom", metavar="PATH",
                        help="write the Prometheus text dump")
    parser.add_argument("--validate", action="store_true",
                        help="schema-check the Chrome export; non-zero "
                             "exit on problems")
    parser.add_argument("--list-recipes", action="store_true",
                        help="list registered recipes and exit")
    args = parser.parse_args(argv)

    if args.list_recipes:
        for name in recipe_names():
            print(name)
        return 0

    handle = build_recipe(args.recipe, {"seed": args.seed})
    telemetry = Telemetry(max_spans=args.max_spans)
    telemetry.instrument_handle(handle)
    handle.advance(args.run_until)
    telemetry.finalize(handle.now)

    tracer, registry = telemetry.tracer, telemetry.registry
    print(f"recipe={args.recipe} seed={args.seed} t={handle.now:g}ms")
    print(f"spans={len(tracer)} dropped={tracer.dropped_spans} "
          f"metrics={len(registry)}")
    for (category, name), count in sorted(tracer.counts().items()):
        print(f"  {category:<11s} {name:<22s} {count}")

    status = 0
    chrome_text = None
    if args.chrome or args.validate:
        chrome_text = export_chrome(tracer)
    if args.validate:
        assert chrome_text is not None
        problems = validate_chrome_trace(chrome_text)
        if problems:
            for problem in problems:
                print(f"INVALID: {problem}", file=sys.stderr)
            status = 1
        else:
            print("chrome trace: schema OK")
    if args.chrome:
        assert chrome_text is not None
        digest = write_checksummed(args.chrome, chrome_text)
        print(f"chrome {args.chrome} sha256={digest}")
    if args.jsonl:
        digest = write_checksummed(args.jsonl, export_jsonl(tracer, registry))
        print(f"jsonl {args.jsonl} sha256={digest}")
    if args.prom:
        digest = write_checksummed(args.prom, export_prometheus(registry))
        print(f"prom {args.prom} sha256={digest}")
    return status


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
