"""One-shot trace-a-recipe CLI: ``python -m repro.telemetry``.

Builds a checkpoint recipe, instruments it with a fresh
:class:`~repro.telemetry.probe.Telemetry` hub, runs it to a virtual
deadline, and exports the trace in any of the three formats.  Used by
the CI telemetry-smoke job, which runs it twice with the same seed and
asserts the Chrome exports are byte-identical.

Exit status is non-zero when ``--validate`` finds schema problems in
the Chrome export.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.checkpoint.registry import build_recipe, recipe_names
from repro.telemetry.exporters import (
    export_chrome,
    export_jsonl,
    export_prometheus,
    validate_chrome_trace,
    write_checksummed,
)
from repro.telemetry.probe import Telemetry


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Trace a recipe run and export spans/metrics.",
    )
    parser.add_argument("--recipe", default="chaos-fairness",
                        help="registered recipe name (default: %(default)s)")
    parser.add_argument("--seed", type=int, default=2718,
                        help="recipe seed (default: %(default)s)")
    parser.add_argument("--run-until", type=float, default=60_000.0,
                        metavar="MS",
                        help="virtual deadline in ms (default: %(default)s)")
    parser.add_argument("--max-spans", type=int, default=1_000_000,
                        help="span buffer bound (default: %(default)s)")
    parser.add_argument("--chrome", metavar="PATH",
                        help="write Chrome trace-event JSON (Perfetto)")
    parser.add_argument("--jsonl", metavar="PATH",
                        help="write the JSONL event stream")
    parser.add_argument("--prom", metavar="PATH",
                        help="write the Prometheus text dump")
    parser.add_argument("--validate", action="store_true",
                        help="schema-check the Chrome export; non-zero "
                             "exit on problems")
    parser.add_argument("--list-recipes", action="store_true",
                        help="list registered recipes and exit")
    args = parser.parse_args(argv)

    if args.list_recipes:
        for name in recipe_names():
            print(name)
        return 0

    handle = build_recipe(args.recipe, {"seed": args.seed})
    telemetry = Telemetry(max_spans=args.max_spans)
    telemetry.instrument_handle(handle)
    handle.advance(args.run_until)
    telemetry.finalize(handle.now)

    tracer, registry = telemetry.tracer, telemetry.registry
    print(f"recipe={args.recipe} seed={args.seed} t={handle.now:g}ms")
    print(f"spans={len(tracer)} dropped={tracer.dropped_spans} "
          f"metrics={len(registry)}")
    for (category, name), count in sorted(tracer.counts().items()):
        print(f"  {category:<11s} {name:<22s} {count}")

    status = 0
    chrome_text = None
    if args.chrome or args.validate:
        chrome_text = export_chrome(tracer)
    if args.validate:
        assert chrome_text is not None
        problems = validate_chrome_trace(chrome_text)
        if problems:
            for problem in problems:
                print(f"INVALID: {problem}", file=sys.stderr)
            status = 1
        else:
            print("chrome trace: schema OK")
    if args.chrome:
        assert chrome_text is not None
        digest = write_checksummed(args.chrome, chrome_text)
        print(f"chrome {args.chrome} sha256={digest}")
    if args.jsonl:
        digest = write_checksummed(args.jsonl, export_jsonl(tracer, registry))
        print(f"jsonl {args.jsonl} sha256={digest}")
    if args.prom:
        digest = write_checksummed(args.prom, export_prometheus(registry))
        print(f"prom {args.prom} sha256={digest}")
    return status


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
