"""Host-clock scheduler profiling (the paper's overhead table).

Section 5.1 of the paper compares lottery scheduling's overhead with
unmodified Mach by costing the scheduling operations themselves: the
random draw, run-queue maintenance, and compensation-ticket updates.
:class:`ProfiledPolicy` reproduces that attribution for any
:class:`~repro.schedulers.base.SchedulingPolicy` by timing each policy
operation with ``time.perf_counter`` while delegating behaviour
unchanged:

* **draw** -- ``select`` (includes the winner's dequeue, exactly the
  work a lottery performs per decision);
* **queue** -- standalone ``enqueue``/``dequeue`` calls (run-queue
  maintenance as threads come and go);
* **compensation** -- ``quantum_end`` and ``thread_exited`` (ticket
  adjustment bookkeeping).

Host-clock readings never feed back into the simulation -- the wrapper
returns the inner policy's results untouched, so the dispatch stream
with profiling enabled is bit-identical to the stream without it
(asserted by the tests).  This module lives in the ``telemetry`` zone
precisely because RPR002 bans wall-clock access in sim/kernel/
scheduler code; the profiler is the sanctioned place to hold the
stopwatch.
"""

from __future__ import annotations

import time as _time
from typing import Any, Callable, Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.thread import Thread

__all__ = ["ProfiledPolicy", "attach_profiler"]

#: The policy operations the profiler times, in report order.
PROFILED_OPS = ("select", "enqueue", "dequeue", "quantum_end",
                "thread_exited")


class ProfiledPolicy:
    """Wraps a scheduling policy, timing every operation on the host
    clock while delegating behaviour unchanged."""

    def __init__(self, inner: Any,
                 clock: Callable[[], float] = _time.perf_counter) -> None:
        # Bypass __setattr__-style surprises: plain attributes first.
        self.inner = inner
        self._clock = clock
        self.seconds: Dict[str, float] = {op: 0.0 for op in PROFILED_OPS}
        self.calls: Dict[str, int] = {op: 0 for op in PROFILED_OPS}

    # -- timed policy surface ------------------------------------------------

    def select(self) -> Optional["Thread"]:
        return self._timed("select", self.inner.select)

    def enqueue(self, thread: "Thread") -> None:
        return self._timed("enqueue", self.inner.enqueue, thread)

    def dequeue(self, thread: "Thread") -> None:
        return self._timed("dequeue", self.inner.dequeue, thread)

    def quantum_end(self, thread: "Thread", used: float, quantum: float,
                    still_runnable: bool) -> None:
        return self._timed("quantum_end", self.inner.quantum_end,
                           thread, used, quantum, still_runnable)

    def thread_exited(self, thread: "Thread") -> None:
        return self._timed("thread_exited", self.inner.thread_exited, thread)

    # -- transparent delegation ----------------------------------------------

    @property
    def name(self) -> str:
        return self.inner.name

    @property
    def uses_tickets(self) -> bool:
        return self.inner.uses_tickets

    def attach(self, kernel: "Kernel") -> None:
        self.inner.attach(kernel)

    def runnable_count(self) -> int:
        return self.inner.runnable_count()

    def runnable_threads(self) -> List["Thread"]:
        return self.inner.runnable_threads()

    def snapshot_state(self) -> dict:
        return self.inner.snapshot_state()

    @property
    def draw_hook(self) -> Any:
        # Forwarded so telemetry's hasattr/set reaches the real policy
        # (setting it on the wrapper would observe nothing).
        return self.inner.draw_hook

    @draw_hook.setter
    def draw_hook(self, hook: Any) -> None:
        self.inner.draw_hook = hook

    def __getattr__(self, attr: str) -> Any:
        # Anything not explicitly wrapped (prng, compensation, ledger,
        # draw_stats, ...) resolves on the inner policy.
        return getattr(self.inner, attr)

    # -- report --------------------------------------------------------------

    def report(self) -> Dict[str, Any]:
        """Attribution in microseconds, mapped to the paper's buckets."""
        micros = {op: self.seconds[op] * 1e6 for op in PROFILED_OPS}
        draws = max(1, self.calls["select"])
        return {
            "policy": self.name,
            "calls": dict(self.calls),
            "us": {op: micros[op] for op in PROFILED_OPS},
            "draw_us": micros["select"],
            "queue_us": micros["enqueue"] + micros["dequeue"],
            "compensation_us": (micros["quantum_end"]
                                + micros["thread_exited"]),
            "draw_us_per_select": micros["select"] / draws,
        }

    # -- internals -----------------------------------------------------------

    def _timed(self, op: str, fn: Callable[..., Any], *args: Any) -> Any:
        began = self._clock()
        try:
            return fn(*args)
        finally:
            self.seconds[op] += self._clock() - began
            self.calls[op] += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        total = sum(self.seconds.values()) * 1e6
        return f"<ProfiledPolicy {self.name!r} total={total:.0f}us>"


def attach_profiler(kernel: "Kernel") -> ProfiledPolicy:
    """Swap a kernel's policy for a profiled wrapper in place.

    Safe after construction: ``attach`` already ran on the inner
    policy, and the kernel only calls the policy surface the wrapper
    forwards.  Returns the wrapper (call :meth:`ProfiledPolicy.report`
    when the run ends).
    """
    profiled = ProfiledPolicy(kernel.policy)
    kernel.policy = profiled
    return profiled
