"""Trace and metric exporters: JSONL, Chrome trace-event JSON, Prometheus.

Every exporter is deterministic byte-for-byte: keys are sorted, floats
use Python's shortest-repr serialization, no wall-clock or hostname
leaks into the output, and each format embeds a sha256 checksum over
its own payload so a consumer can verify integrity -- and two runs of
the same seed can be compared by digest alone.

Formats
-------
* **JSONL** (:func:`export_jsonl`): one JSON object per line -- a
  header, each span, each metric, then a checksum footer over the
  preceding lines.  :func:`parse_jsonl` round-trips it.
* **Chrome trace-event JSON** (:func:`export_chrome`): the
  ``traceEvents`` array format loadable in Perfetto / ``chrome://
  tracing``.  Spans become ``ph:"X"`` complete events (timestamps in
  microseconds), instants become ``ph:"i"``; span ids and parents ride
  in ``args`` so :func:`parse_chrome` can rebuild the span tree.
* **Prometheus text** (:func:`export_prometheus`): the plain text
  exposition format (HELP/TYPE comments, ``_bucket``/``_sum``/
  ``_count`` series for histograms) with a trailing checksum comment.

:func:`write_checksummed` writes any export next to a ``.sha256``
sidecar file.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.telemetry.registry import MetricRegistry, parse_full_name
from repro.telemetry.spans import Span, SpanTracer

__all__ = [
    "sha256_text",
    "export_jsonl",
    "parse_jsonl",
    "export_chrome",
    "parse_chrome",
    "validate_chrome_trace",
    "export_prometheus",
    "write_checksummed",
]

JSONL_FORMAT = "repro-telemetry-jsonl"
JSONL_VERSION = 1


def sha256_text(text: str) -> str:
    """Hex sha256 of UTF-8 encoded text."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _dumps(obj: Any) -> str:
    """Canonical one-line JSON: sorted keys, compact separators."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


# -- JSONL --------------------------------------------------------------------

def export_jsonl(tracer: SpanTracer,
                 registry: Optional[MetricRegistry] = None) -> str:
    """Serialize spans (and optionally metrics) as checksummed JSONL."""
    lines = [_dumps({
        "kind": "header",
        "format": JSONL_FORMAT,
        "version": JSONL_VERSION,
        "spans": len(tracer.spans),
        "dropped_spans": tracer.dropped_spans,
    })]
    for span in tracer.spans:
        lines.append(_dumps({"kind": "span", **span.to_dict()}))
    if registry is not None:
        for name, snapshot in registry.as_dict().items():
            lines.append(_dumps({"kind": "metric", "name": name,
                                 "data": snapshot}))
    body = "\n".join(lines)
    lines.append(_dumps({"kind": "checksum", "sha256": sha256_text(body)}))
    return "\n".join(lines) + "\n"


def parse_jsonl(text: str) -> Tuple[List[Span], Dict[str, Dict[str, Any]]]:
    """Parse and verify a JSONL export; returns (spans, metrics)."""
    lines = text.splitlines()
    if not lines:
        raise ReproError("empty JSONL trace")
    header = json.loads(lines[0])
    if header.get("format") != JSONL_FORMAT:
        raise ReproError(
            f"not a {JSONL_FORMAT} stream: header {header.get('format')!r}"
        )
    footer = json.loads(lines[-1])
    if footer.get("kind") != "checksum":
        raise ReproError("JSONL trace is missing its checksum footer")
    expected = sha256_text("\n".join(lines[:-1]))
    if footer.get("sha256") != expected:
        raise ReproError(
            f"JSONL checksum mismatch: footer {footer.get('sha256')!r}, "
            f"recomputed {expected!r}"
        )
    spans: List[Span] = []
    metrics: Dict[str, Dict[str, Any]] = {}
    for line in lines[1:-1]:
        record = json.loads(line)
        kind = record.pop("kind", None)
        if kind == "span":
            spans.append(Span.from_dict(record))
        elif kind == "metric":
            metrics[record["name"]] = record["data"]
    return spans, metrics


# -- Chrome trace-event JSON --------------------------------------------------

def _chrome_events(tracer: SpanTracer) -> List[Dict[str, Any]]:
    events: List[Dict[str, Any]] = [{
        "ph": "M", "pid": 0, "tid": 0, "ts": 0,
        "name": "process_name", "args": {"name": "repro"},
    }]
    tids: Dict[str, int] = {}
    for index, track in enumerate(tracer.tracks()):
        tids[track] = index
        events.append({
            "ph": "M", "pid": 0, "tid": index, "ts": 0,
            "name": "thread_name", "args": {"name": track},
        })
    for span in tracer.spans:
        tid = tids.setdefault(span.track, len(tids))
        args = {"sid": span.sid, "parent": span.parent, **span.attrs}
        if span.instant:
            events.append({
                "ph": "i", "s": "t", "pid": 0, "tid": tid,
                "ts": span.start * 1000.0, "name": span.name,
                "cat": span.category, "args": args,
            })
        else:
            end = span.end if span.end is not None else span.start
            events.append({
                "ph": "X", "pid": 0, "tid": tid,
                "ts": span.start * 1000.0,
                "dur": (end - span.start) * 1000.0,
                "name": span.name, "cat": span.category, "args": args,
            })
    return events


def export_chrome(tracer: SpanTracer) -> str:
    """Serialize the trace as Chrome trace-event JSON (Perfetto-ready)."""
    events = _chrome_events(tracer)
    checksum = sha256_text(_dumps(events))
    payload = {
        "displayTimeUnit": "ms",
        "metadata": {
            "format": "repro-telemetry-chrome",
            "version": JSONL_VERSION,
            "dropped_spans": tracer.dropped_spans,
            "sha256": checksum,
        },
        "traceEvents": events,
    }
    return _dumps(payload) + "\n"


def parse_chrome(text: str) -> List[Span]:
    """Rebuild spans from a Chrome export (verifies the checksum)."""
    payload = json.loads(text)
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ReproError("Chrome trace has no traceEvents array")
    metadata = payload.get("metadata", {})
    expected = metadata.get("sha256")
    if expected is not None:
        actual = sha256_text(_dumps(events))
        if actual != expected:
            raise ReproError(
                f"Chrome trace checksum mismatch: metadata {expected!r}, "
                f"recomputed {actual!r}"
            )
    tracks: Dict[int, str] = {}
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            tracks[event["tid"]] = event["args"]["name"]
    spans: List[Span] = []
    for event in events:
        ph = event.get("ph")
        if ph not in ("X", "i"):
            continue
        args = dict(event.get("args", {}))
        sid = args.pop("sid")
        parent = args.pop("parent", None)
        start = event["ts"] / 1000.0
        end = start + (event.get("dur", 0.0) / 1000.0 if ph == "X" else 0.0)
        spans.append(Span(
            sid=sid, parent=parent,
            track=tracks.get(event["tid"], str(event["tid"])),
            name=event["name"], category=event.get("cat", ""),
            start=start, end=end, attrs=args,
        ))
    spans.sort(key=lambda s: s.sid)
    return spans


def validate_chrome_trace(text: str) -> List[str]:
    """Schema-check a Chrome export; returns a list of problems (empty
    means loadable)."""
    problems: List[str] = []
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        return [f"not JSON: {exc}"]
    if not isinstance(payload, dict):
        return ["top level must be an object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be an array"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "i", "M", "B", "E", "s", "t", "f"):
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: missing integer {key!r}")
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: missing name")
        if ph in ("X", "i", "s", "t", "f"):
            if not isinstance(event.get("ts"), (int, float)):
                problems.append(f"{where}: missing numeric ts")
        if ph in ("s", "t", "f"):
            if not isinstance(event.get("id"), int):
                problems.append(f"{where}: flow event missing integer id")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)):
                problems.append(f"{where}: X event missing numeric dur")
            elif dur < 0:
                problems.append(f"{where}: negative dur {dur!r}")
        if ph == "i" and event.get("s") not in ("t", "p", "g"):
            problems.append(f"{where}: instant scope must be t/p/g")
    return problems


# -- Prometheus text ----------------------------------------------------------

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _sanitize_metric_name(name: str) -> str:
    """Coerce into ``[a-zA-Z_:][a-zA-Z0-9_:]*`` (the exposition-format
    grammar): every illegal character becomes ``_``.  Internal metric
    names like the supervisor's ``shard.restart`` need this -- a
    Prometheus scraper rejects the whole page on one bad name."""
    if _NAME_OK.match(name):
        return name
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not re.match(r"[a-zA-Z_:]", cleaned[0]):
        cleaned = "_" + cleaned
    return cleaned


def _sanitize_label_name(name: str) -> str:
    """Label grammar is narrower than metric names (no colon)."""
    if _LABEL_OK.match(name):
        return name
    cleaned = re.sub(r"[^a-zA-Z0-9_]", "_", name)
    if not cleaned or not re.match(r"[a-zA-Z_]", cleaned[0]):
        cleaned = "_" + cleaned
    return cleaned


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _render_labels(labels: Dict[str, str],
                   extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = [(_sanitize_label_name(key), _escape_label_value(str(value)))
             for key, value in labels.items()]
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    rendered = ",".join(f'{key}="{value}"' for key, value in pairs)
    return "{" + rendered + "}"


def _fmt(value: float) -> str:
    """Prometheus sample value: integral floats render without '.0'."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def export_prometheus(registry: Any) -> str:
    """Serialize the registry in the Prometheus text exposition format.

    Accepts a :class:`~repro.telemetry.registry.MetricRegistry` or the
    aggregated :class:`~repro.telemetry.aggregate.GlobalMetricsView`
    (anything with an ``instruments()`` iterator of instrument-shaped
    objects).  Metric and label names are sanitized to the exposition
    grammar; label values are escaped; ``# HELP``/``# TYPE`` family
    lines are emitted once per sanitized family (histograms advertise
    the family that owns the ``_bucket``/``_sum``/``_count`` series).
    """
    lines: List[str] = []
    typed: set = set()
    for instrument in registry.instruments():
        raw_name, labels = parse_full_name(instrument.full_name)
        name = _sanitize_metric_name(raw_name)
        if name not in typed:
            typed.add(name)
            if instrument.help:
                lines.append(f"# HELP {name} {_escape_help(instrument.help)}")
            lines.append(f"# TYPE {name} {instrument.kind}")
        if instrument.kind == "histogram":
            histogram = instrument.histogram
            cumulative = 0
            for _, bin_end, count in histogram.bins():
                cumulative += count
                rendered = _render_labels(labels, ("le", f"{bin_end:g}"))
                lines.append(f"{name}_bucket{rendered} {cumulative}")
            rendered = _render_labels(labels, ("le", "+Inf"))
            lines.append(f"{name}_bucket{rendered} {histogram.count}")
            total = histogram.mean() * histogram.count
            lines.append(f"{name}_sum{_render_labels(labels)} {_fmt(total)}")
            lines.append(
                f"{name}_count{_render_labels(labels)} {histogram.count}")
        else:
            lines.append(
                f"{name}{_render_labels(labels)} {_fmt(instrument.value)}")
    body = "\n".join(lines)
    lines.append(f"# sha256 {sha256_text(body)}")
    return "\n".join(lines) + "\n"


# -- files --------------------------------------------------------------------

def write_checksummed(path: str, text: str) -> str:
    """Write an export plus a ``.sha256`` sidecar; returns the digest."""
    digest = sha256_text(text)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    with open(path + ".sha256", "w", encoding="utf-8") as handle:
        handle.write(f"{digest}  {os.path.basename(path)}\n")
    return digest
