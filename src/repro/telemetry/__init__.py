"""Deterministic observability: span tracing, metrics, profiling.

The subsystem extends the repo's determinism contract to telemetry:
every span and metric is a pure function of virtual-time events, so
two runs of the same seed export byte-identical traces.  Attachment is
strictly optional -- a simulation that never imports this package (or
imports it but leaves the hub detached) behaves bit-identically.

On top of the per-process hubs sits the **cross-shard observability
plane** for the sharded engine: barrier-mediated metric aggregation
(:mod:`~repro.telemetry.aggregate`), stitched cross-core Chrome traces
(:mod:`~repro.telemetry.stitch`), deterministic SLO watchdogs
(:mod:`~repro.telemetry.slo`), the crash flight recorder
(:mod:`~repro.telemetry.flight`), and the run report
(:mod:`~repro.telemetry.obsreport`).

See ``docs/OBSERVABILITY.md`` for the span model, exporter formats,
and the Perfetto loading recipe; ``python -m repro.telemetry`` for the
one-shot trace-a-recipe CLI; and ``python -m repro.telemetry report``
for the sharded run report.
"""

from repro.telemetry.aggregate import (
    GlobalMetricsView,
    MergedHistogram,
    MergedScalar,
    ObsAggregator,
    fairness_summary,
    merge_frames,
    percentile_from_bins,
)
from repro.telemetry.exporters import (
    export_chrome,
    export_jsonl,
    export_prometheus,
    parse_chrome,
    parse_jsonl,
    sha256_text,
    validate_chrome_trace,
    write_checksummed,
)
from repro.telemetry.flight import (
    build_bundle,
    load_bundle,
    summarize_bundle,
    write_bundle,
)
from repro.telemetry.obsreport import build_report, render_markdown
from repro.telemetry.probe import KernelProbe, Telemetry, share_band
from repro.telemetry.profiler import ProfiledPolicy, attach_profiler
from repro.telemetry.registry import (
    Counter,
    Gauge,
    HistogramInstrument,
    MetricRegistry,
    parse_full_name,
)
from repro.telemetry.slo import SloEvaluator, SloPolicy, evaluate_slo
from repro.telemetry.spans import Span, SpanTracer
from repro.telemetry.stitch import stitch_trace, stitched_chrome

__all__ = [
    "Counter",
    "Gauge",
    "GlobalMetricsView",
    "HistogramInstrument",
    "KernelProbe",
    "MergedHistogram",
    "MergedScalar",
    "MetricRegistry",
    "ObsAggregator",
    "ProfiledPolicy",
    "SloEvaluator",
    "SloPolicy",
    "Span",
    "SpanTracer",
    "Telemetry",
    "attach_profiler",
    "build_bundle",
    "build_report",
    "evaluate_slo",
    "export_chrome",
    "export_jsonl",
    "export_prometheus",
    "fairness_summary",
    "load_bundle",
    "merge_frames",
    "parse_chrome",
    "parse_full_name",
    "parse_jsonl",
    "percentile_from_bins",
    "render_markdown",
    "sha256_text",
    "share_band",
    "stitch_trace",
    "stitched_chrome",
    "summarize_bundle",
    "validate_chrome_trace",
    "write_bundle",
    "write_checksummed",
]
