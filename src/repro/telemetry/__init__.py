"""Deterministic observability: span tracing, metrics, profiling.

The subsystem extends the repo's determinism contract to telemetry:
every span and metric is a pure function of virtual-time events, so
two runs of the same seed export byte-identical traces.  Attachment is
strictly optional -- a simulation that never imports this package (or
imports it but leaves the hub detached) behaves bit-identically.

See ``docs/OBSERVABILITY.md`` for the span model, exporter formats,
and the Perfetto loading recipe, and ``python -m repro.telemetry`` for
the one-shot trace-a-recipe CLI.
"""

from repro.telemetry.exporters import (
    export_chrome,
    export_jsonl,
    export_prometheus,
    parse_chrome,
    parse_jsonl,
    sha256_text,
    validate_chrome_trace,
    write_checksummed,
)
from repro.telemetry.probe import KernelProbe, Telemetry, share_band
from repro.telemetry.profiler import ProfiledPolicy, attach_profiler
from repro.telemetry.registry import (
    Counter,
    Gauge,
    HistogramInstrument,
    MetricRegistry,
)
from repro.telemetry.spans import Span, SpanTracer

__all__ = [
    "Counter",
    "Gauge",
    "HistogramInstrument",
    "KernelProbe",
    "MetricRegistry",
    "ProfiledPolicy",
    "Span",
    "SpanTracer",
    "Telemetry",
    "attach_profiler",
    "export_chrome",
    "export_jsonl",
    "export_prometheus",
    "parse_chrome",
    "parse_jsonl",
    "sha256_text",
    "share_band",
    "validate_chrome_trace",
    "write_checksummed",
]
