"""Run reports over the cross-shard observability plane.

:func:`build_report` turns an aggregated run (global metrics view,
fairness summary, SLO verdicts, stitched-trace digest, recovery
timeline) into one JSON document, and :func:`render_markdown` renders
it for humans.  The document is split the same way the stitched trace
is:

* ``canonical`` -- everything that is a pure function of the simulated
  universe (metrics, fairness, SLO verdicts, the canonical trace
  digest).  ``canonical_sha256`` is computed over this section alone,
  so it is byte-identical across ``single``/``inline``/``mp``/
  supervised backends of the same plan and seed -- the cross-backend
  acceptance digest.
* ``recovery`` -- the supervisor's host-fate annex (restarts, retries,
  degradation), which legitimately differs between a bare and a
  fault-injected run of the same universe.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional

__all__ = ["REPORT_FORMAT", "REPORT_VERSION", "build_report",
           "render_markdown"]

REPORT_FORMAT = "repro-obs-report"
REPORT_VERSION = 1


def _dumps(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _round6(value: float) -> float:
    """Stabilize derived ratios for display (the merge itself is exact)."""
    return round(float(value), 6)


def build_report(*, plan_checksum: str, time: float,
                 metrics: Dict[str, Any],
                 fairness: Dict[str, Any],
                 slo: Dict[str, Any],
                 trace_sha256: str,
                 slices: int,
                 barriers: int,
                 recovery: Optional[Dict[str, Any]] = None,
                 context: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Assemble the report document (adds ``canonical_sha256``)."""
    canonical = {
        "format": REPORT_FORMAT,
        "version": REPORT_VERSION,
        "plan": plan_checksum,
        "time": float(time),
        "slices": int(slices),
        "barriers": int(barriers),
        "metrics": metrics,
        "fairness": fairness,
        "slo": slo,
        "trace_sha256": trace_sha256,
    }
    document = {
        "canonical": canonical,
        "canonical_sha256": hashlib.sha256(
            _dumps(canonical).encode("utf-8")).hexdigest(),
        "recovery": recovery or {"degraded": False, "restarts": [],
                                 "retries": [], "faults_armed": 0,
                                 "events": []},
        "context": context or {},
    }
    return document


def _metric_rows(metrics: Dict[str, Any]) -> List[str]:
    rows = ["| metric | kind | value |", "| --- | --- | --- |"]
    for full_name in sorted(metrics):
        snapshot = metrics[full_name]
        if snapshot["kind"] == "histogram":
            value = (f"count={snapshot['count']} "
                     f"mean={_round6(snapshot['mean'])}")
        else:
            value = f"{_round6(snapshot['value'])}"
        rows.append(f"| `{full_name}` | {snapshot['kind']} | {value} |")
    return rows


def render_markdown(document: Dict[str, Any]) -> str:
    """Human-facing Markdown for a report document."""
    canonical = document["canonical"]
    fairness = canonical["fairness"]
    slo = canonical["slo"]
    recovery = document.get("recovery", {})
    lines = [
        "# Sharded run report",
        "",
        f"- plan: `{canonical['plan']}`",
        f"- virtual time: {canonical['time']:g} ms over "
        f"{canonical['barriers']} barriers ({canonical['slices']} slices)",
        f"- canonical sha256: `{document['canonical_sha256']}`",
        f"- stitched trace sha256: `{canonical['trace_sha256']}`",
        "",
        "## Fairness",
        "",
        f"- alive threads: {fairness['alive']} "
        f"(funded: {fairness['funded']})",
        f"- tickets alive: {_round6(fairness['tickets_total'])}",
        f"- cpu consumed: {_round6(fairness['cpu_ms_total'])} ms",
        f"- max abs error: {_round6(fairness['max_abs_error'])}",
        f"- max rel error: {_round6(fairness['max_rel_error'])}",
        "",
        "| thread | core | tickets | entitlement | usage | rel error |",
        "| --- | --- | --- | --- | --- | --- |",
    ]
    for entry in fairness["threads"]:
        lines.append(
            f"| {entry['name']} | {entry['core']} "
            f"| {_round6(entry['tickets'])} "
            f"| {_round6(entry['entitlement'])} "
            f"| {_round6(entry['usage'])} "
            f"| {_round6(entry['rel_error'])} |")
    verdict = "PASS" if slo["ok"] else f"FAIL ({len(slo['breaches'])})"
    lines += [
        "",
        "## SLO verdicts",
        "",
        f"- verdict: **{verdict}** over {slo['checks']} checks",
    ]
    if slo["breaches"]:
        lines += ["", "| rule | time | subject | value | bound |",
                  "| --- | --- | --- | --- | --- |"]
        for breach in slo["breaches"]:
            lines.append(
                f"| {breach['rule']} | {breach['time']:g} "
                f"| {breach['subject']} | {_round6(breach['value'])} "
                f"| {_round6(breach['bound'])} |")
    lines += ["", "## Global metrics", ""]
    lines += _metric_rows(canonical["metrics"])
    lines += ["", "## Recovery timeline", ""]
    events = recovery.get("events", [])
    if not events:
        lines.append("No recovery events (unsupervised or undisturbed run).")
    else:
        lines += [
            f"- degraded: {recovery.get('degraded', False)}",
            f"- restarts: {recovery.get('restarts', [])}",
            f"- retries: {recovery.get('retries', [])}",
            "",
            "| time | epoch | event | shard |",
            "| --- | --- | --- | --- |",
        ]
        for event in events:
            shard = event.get("shard")
            lines.append(
                f"| {event.get('time', 0):g} | {event.get('epoch')} "
                f"| {event['kind']} "
                f"| {'-' if shard is None else shard} |")
    return "\n".join(lines) + "\n"
