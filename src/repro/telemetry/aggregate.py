"""Barrier-mediated cross-shard metric aggregation.

The sharded engine (``repro.shard``) gives every core a private
:class:`~repro.telemetry.probe.Telemetry` hub, so per-core metrics are
deterministic but *local*.  This module folds them into one global
view at every epoch barrier:

* Each :class:`~repro.shard.core.ShardCore` snapshots an **obs frame**
  -- its cumulative :class:`~repro.telemetry.registry.MetricRegistry`
  contents, per-thread accounting, shard counters, and a bounded ring
  of recent replay entries/spans -- as plain JSON data.  Frames ride
  the same pipes as barrier payloads under the ``mp`` backends and are
  JSON-round-tripped in-process, so no object identity ever crosses a
  core boundary.
* Frames are **cumulative**, not deltas: a frame is a pure function of
  the core's history, so supervisor respawn-and-replay recovery (and
  full inline degradation) reproduces it bit-exactly and re-observing
  a slice is idempotent.  Deltas, where needed (the SLO sliding
  windows), are computed on the aggregated side by differencing
  consecutive slices.
* :class:`ObsAggregator` stores one slice per barrier in canonical
  ``(time, core)`` order and merges the latest frames into a global
  registry view: counters and gauges sum, histograms merge bin-wise
  (same fixed widths on every core), and derived gauges -- global
  fairness error and ticket-conservation totals -- are appended.

Everything here is observation-only: aggregation reads frames that the
cores already produced and never feeds anything back, so a run with
``obs`` enabled has the same canonical history as one without.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.telemetry.registry import parse_full_name

__all__ = [
    "FRAME_FORMAT",
    "FRAME_VERSION",
    "GlobalMetricsView",
    "MergedHistogram",
    "MergedScalar",
    "ObsAggregator",
    "fairness_summary",
    "merge_frames",
    "percentile_from_bins",
]

FRAME_FORMAT = "repro-obs-frame"
FRAME_VERSION = 1

#: Default capacity of the per-core flight-recorder rings (recent
#: replay entries and recent completed spans shipped in every frame).
RING_ENTRIES = 32
RING_SPANS = 16


def percentile_from_bins(bins: List[List[float]], q: float) -> float:
    """Nearest-rank percentile over merged histogram bins.

    Raw observations do not cross core boundaries (frames carry bins
    only), so the percentile is resolved to the upper edge of the bin
    containing the ``q``-th ranked observation -- deterministic and
    conservative (never under-reports a latency bound).
    """
    if not 0 <= q <= 100:
        raise ReproError(f"percentile out of range: {q}")
    total = sum(int(count) for _, _, count in bins)
    if total == 0:
        return 0.0
    rank = max(1, int(-(-q * total // 100)))  # ceil(q/100 * total), >= 1
    seen = 0
    for _, end, count in bins:
        seen += int(count)
        if seen >= rank:
            return float(end)
    return float(bins[-1][1])


class MergedScalar:
    """A counter/gauge summed across cores (registry-instrument shaped)."""

    __slots__ = ("full_name", "kind", "help", "value")

    def __init__(self, full_name: str, kind: str, value: float,
                 help: str = "") -> None:
        self.full_name = full_name
        self.kind = kind
        self.value = value
        self.help = help

    def snapshot_state(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class _BinView:
    """Duck-typed ``repro.metrics.Histogram`` over merged bins, so the
    Prometheus exporter renders global histograms unchanged."""

    __slots__ = ("_bins", "count", "_mean")

    def __init__(self, bins: List[Tuple[float, float, int]], count: int,
                 mean: float) -> None:
        self._bins = bins
        self.count = count
        self._mean = mean

    def bins(self) -> List[Tuple[float, float, int]]:
        return list(self._bins)

    def mean(self) -> float:
        return self._mean


class MergedHistogram:
    """A histogram merged bin-wise across cores."""

    kind = "histogram"

    __slots__ = ("full_name", "help", "histogram")

    def __init__(self, full_name: str, bins: List[Tuple[float, float, int]],
                 count: int, mean: float, help: str = "") -> None:
        self.full_name = full_name
        self.help = help
        self.histogram = _BinView(bins, count, mean)

    @property
    def count(self) -> int:
        return self.histogram.count

    def mean(self) -> float:
        return self.histogram.mean()

    def percentile(self, q: float) -> float:
        return percentile_from_bins(
            [list(b) for b in self.histogram.bins()], q)

    def snapshot_state(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "count": self.count,
            "mean": self.mean(),
            "bins": [[start, end, count]
                     for start, end, count in self.histogram.bins()],
        }


class GlobalMetricsView:
    """Registry-shaped read-only view over merged instruments.

    Exposes exactly the surface the exporters consume
    (:meth:`instruments`, :meth:`as_dict`, :meth:`get`), so
    :func:`repro.telemetry.exporters.export_prometheus` serves the
    global registry without knowing it is an aggregate.
    """

    def __init__(self, instruments: Dict[str, Any]) -> None:
        self._instruments = instruments

    def instruments(self) -> List[Any]:
        return [self._instruments[name]
                for name in sorted(self._instruments)]

    def get(self, full_name: str) -> Optional[Any]:
        return self._instruments.get(full_name)

    def as_dict(self) -> Dict[str, Dict[str, Any]]:
        return {instrument.full_name: instrument.snapshot_state()
                for instrument in self.instruments()}

    def __len__(self) -> int:
        return len(self._instruments)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<GlobalMetricsView instruments={len(self._instruments)}>"


def _merge_histogram(full_name: str,
                     snapshots: List[Dict[str, Any]]) -> MergedHistogram:
    bins: Dict[float, List[float]] = {}
    count = 0
    weighted = 0.0
    for snapshot in snapshots:
        count += int(snapshot["count"])
        weighted += float(snapshot["mean"]) * int(snapshot["count"])
        for start, end, n in snapshot["bins"]:
            slot = bins.setdefault(float(start), [float(start),
                                                  float(end), 0])
            slot[2] += int(n)
    ordered = [(s, e, int(n)) for s, e, n in
               (bins[key] for key in sorted(bins))]
    mean = weighted / count if count else 0.0
    return MergedHistogram(full_name, ordered, count, mean)


def merge_frames(frames: List[Dict[str, Any]]) -> GlobalMetricsView:
    """Fold per-core frames (canonical core order) into a global view.

    Counters and gauges sum; histograms merge bin-wise (identical fixed
    widths per instrument on every core, enforced by the per-core
    registries).  Kind conflicts across cores are wiring bugs and
    raise.
    """
    grouped: Dict[str, List[Dict[str, Any]]] = {}
    for frame in sorted(frames, key=lambda f: f["core"]):
        for full_name, snapshot in frame.get("metrics", {}).items():
            grouped.setdefault(full_name, []).append(snapshot)
    merged: Dict[str, Any] = {}
    for full_name, snapshots in grouped.items():
        kinds = {snapshot["kind"] for snapshot in snapshots}
        if len(kinds) != 1:
            raise ReproError(
                f"metric {full_name!r} has conflicting kinds across "
                f"cores: {sorted(kinds)}")
        kind = kinds.pop()
        if kind == "histogram":
            merged[full_name] = _merge_histogram(full_name, snapshots)
        else:
            value = 0.0
            for snapshot in snapshots:
                value += float(snapshot["value"])
            merged[full_name] = MergedScalar(full_name, kind, value)
    for gauge in _derived_gauges(frames):
        merged[gauge.full_name] = gauge
    return GlobalMetricsView(merged)


def fairness_summary(frames: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Proportional-share fairness over the latest frames.

    Entitlement and usage are normalized **within each core**: every
    core runs its own lottery, so a thread's entitlement is its ticket
    share of the alive tickets *on its core* and its usage is its
    share of the CPU *its core* consumed.  (Cross-core ticket stakes
    never race each other -- a global normalization would grade the
    placement, not the scheduler.)  The paper's claim is that these
    converge for competing threads, so the maximum and mean absolute
    error (and the maximum relative error over funded threads) are the
    headline gauges; ``tickets_total``/``cpu_ms_total`` stay global,
    serving the ticket-conservation gauges.
    """
    threads: List[Dict[str, Any]] = []
    for frame in sorted(frames, key=lambda f: f["core"]):
        for entry in frame.get("threads", []):
            threads.append({**entry, "core": frame["core"]})
    alive = [t for t in threads if t["alive"]]
    core_tickets: Dict[int, float] = {}
    core_cpu: Dict[int, float] = {}
    for t in alive:
        core_tickets[t["core"]] = (core_tickets.get(t["core"], 0.0)
                                   + t["tickets"])
    for t in threads:
        core_cpu[t["core"]] = core_cpu.get(t["core"], 0.0) + t["cpu_ms"]
    per_thread: List[Dict[str, Any]] = []
    max_abs = 0.0
    sum_abs = 0.0
    max_rel = 0.0
    funded = 0
    for t in alive:
        tickets_on_core = core_tickets.get(t["core"], 0.0)
        cpu_on_core = core_cpu.get(t["core"], 0.0)
        entitlement = (t["tickets"] / tickets_on_core
                       if tickets_on_core else 0.0)
        usage = (t["cpu_ms"] / cpu_on_core) if cpu_on_core else 0.0
        abs_error = abs(usage - entitlement)
        rel_error = (abs_error / entitlement) if entitlement > 0 else 0.0
        if entitlement > 0:
            funded += 1
            max_abs = max(max_abs, abs_error)
            sum_abs += abs_error
            max_rel = max(max_rel, rel_error)
        per_thread.append({
            "core": t["core"], "tid": t["tid"], "name": t["name"],
            "tickets": t["tickets"], "cpu_ms": t["cpu_ms"],
            "entitlement": entitlement, "usage": usage,
            "abs_error": abs_error, "rel_error": rel_error,
        })
    per_thread.sort(key=lambda t: (t["core"], t["tid"]))
    return {
        "threads": per_thread,
        "alive": len(alive),
        "funded": funded,
        "tickets_total": sum(t["tickets"] for t in alive),
        "cpu_ms_total": sum(t["cpu_ms"] for t in threads),
        "max_abs_error": max_abs,
        "mean_abs_error": (sum_abs / funded) if funded else 0.0,
        "max_rel_error": max_rel,
    }


def _derived_gauges(frames: List[Dict[str, Any]]) -> List[MergedScalar]:
    """Global gauges computed at merge time (fairness + conservation)."""
    fairness = fairness_summary(frames)
    shard_totals = {"payloads_applied": 0, "migrations_out": 0,
                    "evacuations": 0, "casualties": 0}
    for frame in frames:
        shard = frame.get("shard", {})
        for key in shard_totals:
            shard_totals[key] += int(shard.get(key, 0))
    gauges = [
        MergedScalar("repro_obs_fairness_abs_error_max", "gauge",
                     fairness["max_abs_error"],
                     help="Global max |cpu share - ticket share|."),
        MergedScalar("repro_obs_fairness_abs_error_mean", "gauge",
                     fairness["mean_abs_error"],
                     help="Global mean |cpu share - ticket share|."),
        MergedScalar("repro_obs_fairness_rel_error_max", "gauge",
                     fairness["max_rel_error"],
                     help="Global max relative fairness error."),
        MergedScalar("repro_obs_tickets_alive", "gauge",
                     fairness["tickets_total"],
                     help="Ticket conservation: global alive nominal "
                          "funding."),
        MergedScalar("repro_obs_threads_alive", "gauge",
                     float(fairness["alive"]),
                     help="Alive threads across all cores."),
        MergedScalar("repro_obs_cpu_ms", "gauge",
                     fairness["cpu_ms_total"],
                     help="Virtual CPU ms consumed across all cores."),
    ]
    for key, value in sorted(shard_totals.items()):
        gauges.append(MergedScalar(
            f"repro_obs_shard_{key}", "gauge", float(value),
            help=f"Sum of per-core shard counter {key!r}."))
    return gauges


class ObsAggregator:
    """Per-barrier observability slices and their global merge.

    One slice is recorded per engine slice (epoch or stop point) in
    canonical order; frames inside a slice are sorted by core -- the
    ``(time, core)`` merge order of the sharding protocol.  Observing
    the same slice time again (a stop-point re-run) replaces the slice,
    keeping observation idempotent.
    """

    def __init__(self) -> None:
        self._slices: List[Dict[str, Any]] = []

    # -- recording ------------------------------------------------------------

    def observe(self, time: float, frames: List[Dict[str, Any]],
                payloads: int = 0, kind: str = "epoch") -> None:
        if not frames:
            return
        ordered = sorted(frames, key=lambda frame: frame["core"])
        record = {"seq": len(self._slices), "time": float(time),
                  "kind": kind, "payloads": int(payloads),
                  "frames": ordered}
        if self._slices and self._slices[-1]["time"] == record["time"]:
            record["seq"] = self._slices[-1]["seq"]
            self._slices[-1] = record
        else:
            self._slices.append(record)

    # -- views ----------------------------------------------------------------

    @property
    def slices(self) -> List[Dict[str, Any]]:
        return list(self._slices)

    def latest_frames(self) -> List[Dict[str, Any]]:
        if not self._slices:
            return []
        return list(self._slices[-1]["frames"])

    def merged_metrics(self) -> GlobalMetricsView:
        return merge_frames(self.latest_frames())

    def fairness(self) -> Dict[str, Any]:
        return fairness_summary(self.latest_frames())

    def barrier_instants(self) -> List[Dict[str, Any]]:
        """(time, payloads) per epoch slice, for the stitched trace."""
        return [{"time": record["time"], "payloads": record["payloads"]}
                for record in self._slices if record["kind"] == "epoch"]

    def rings(self) -> List[Dict[str, Any]]:
        """Latest per-core flight-recorder rings (canonical core order)."""
        return [{"core": frame["core"], "time": frame["time"],
                 "ring": frame.get("ring", {})}
                for frame in self.latest_frames()]

    def __len__(self) -> int:
        return len(self._slices)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ObsAggregator slices={len(self._slices)} "
                f"cores={len(self.latest_frames())}>")
