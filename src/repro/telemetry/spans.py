"""Span-based tracing over virtual time.

A :class:`Span` is a named interval on a *track* (one per kernel, plus
synthetic tracks such as ``cluster`` or ``checkpoint``), carrying a
category, JSON-typed attributes, and an optional parent.  Spans nest:
each track keeps a stack of open spans, and a span begun while another
is open becomes its child, so a lottery draw recorded during a quantum
appears inside that quantum in the trace viewer.

All timestamps are **virtual milliseconds** from the discrete-event
engine -- never the host clock -- so two runs of the same seed produce
byte-identical traces (the determinism contract of
``docs/DETERMINISM.md`` extends to observability).  Span ids are
allocated in completion order from a process-local counter seeded at
zero, which the same contract makes reproducible.

The buffer is bounded with drop-oldest semantics, mirroring
:class:`~repro.kernel.trace.SchedulerTrace`: completed spans beyond
``max_spans`` evict the oldest completed span and increment
``dropped_spans`` (or raise in ``strict`` mode).  Open spans live on
the per-track stacks and are only buffered once finished.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.errors import ReproError

__all__ = ["Span", "SpanTracer"]


@dataclass(slots=True)
class Span:
    """One traced interval (or instant, when ``end == start``)."""

    #: Monotonically increasing id, allocated at begin time.
    sid: int
    #: Parent span id (nesting), or None for a root span.
    parent: Optional[int]
    #: Track name (one per kernel/node, or a synthetic stream).
    track: str
    #: Event name, e.g. ``"quantum"`` or ``"lottery.draw"``.
    name: str
    #: Coarse grouping: kernel, scheduler, ipc, cluster, fault, checkpoint.
    category: str
    #: Start time, virtual ms.
    start: float
    #: End time, virtual ms; None while still open.
    end: Optional[float] = None
    #: JSON-typed attributes (strings, numbers, bools, None).
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in virtual ms (0 for instants and open spans)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def instant(self) -> bool:
        """True for zero-duration point events."""
        return self.end == self.start

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (stable key set)."""
        return {
            "sid": self.sid,
            "parent": self.parent,
            "track": self.track,
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        """Inverse of :meth:`to_dict` (exporter round-trips)."""
        return cls(
            sid=int(data["sid"]),
            parent=data["parent"],
            track=str(data["track"]),
            name=str(data["name"]),
            category=str(data["category"]),
            start=float(data["start"]),
            end=None if data["end"] is None else float(data["end"]),
            attrs=dict(data.get("attrs", {})),
        )


class SpanTracer:
    """Collects spans with per-track nesting and a bounded buffer.

    Parameters
    ----------
    max_spans:
        Completed-span buffer capacity; oldest spans are evicted beyond
        it (``dropped_spans`` counts the losses).
    strict:
        Raise :class:`~repro.errors.ReproError` instead of dropping.
    """

    def __init__(self, max_spans: int = 1_000_000, strict: bool = False) -> None:
        if max_spans <= 0:
            raise ReproError(f"max_spans must be positive: {max_spans}")
        self.max_spans = max_spans
        self.strict = strict
        self._spans: Deque[Span] = deque()
        self._stacks: Dict[str, List[Span]] = {}
        self._next_sid = 0
        #: Completed spans evicted by the bound.
        self.dropped_spans = 0

    # -- recording -----------------------------------------------------------

    def begin(self, track: str, name: str, category: str, start: float,
              attrs: Optional[Dict[str, Any]] = None) -> Span:
        """Open a span; it nests under the track's current open span."""
        stack = self._stacks.setdefault(track, [])
        parent = stack[-1].sid if stack else None
        span = Span(sid=self._alloc_sid(), parent=parent, track=track,
                    name=name, category=category, start=start,
                    attrs=dict(attrs or {}))
        stack.append(span)
        return span

    def end(self, span: Span, end: float,
            attrs: Optional[Dict[str, Any]] = None) -> Span:
        """Close an open span at virtual time ``end`` and buffer it."""
        if span.end is not None:
            raise ReproError(f"span {span.sid} ({span.name!r}) already ended")
        if end < span.start:
            raise ReproError(
                f"span {span.sid} ({span.name!r}) would end before it "
                f"started: start={span.start:g}ms, end={end:g}ms"
            )
        span.end = end
        if attrs:
            span.attrs.update(attrs)
        stack = self._stacks.get(span.track, [])
        if span in stack:
            stack.remove(span)
        self._buffer(span)
        return span

    def event(self, track: str, name: str, category: str, time: float,
              attrs: Optional[Dict[str, Any]] = None) -> Span:
        """Record an instant (zero-duration span) on a track."""
        stack = self._stacks.get(track, [])
        parent = stack[-1].sid if stack else None
        span = Span(sid=self._alloc_sid(), parent=parent, track=track,
                    name=name, category=category, start=time, end=time,
                    attrs=dict(attrs or {}))
        self._buffer(span)
        return span

    def complete(self, track: str, name: str, category: str, start: float,
                 end: float, attrs: Optional[Dict[str, Any]] = None) -> Span:
        """Record an already-finished interval (e.g. an RPC measured at
        reply time).  It does not nest under open spans -- intervals
        reported after the fact may straddle many of them."""
        if end < start:
            raise ReproError(
                f"complete span {name!r} has negative duration: "
                f"start={start:g}ms, end={end:g}ms"
            )
        span = Span(sid=self._alloc_sid(), parent=None, track=track,
                    name=name, category=category, start=start, end=end,
                    attrs=dict(attrs or {}))
        self._buffer(span)
        return span

    def finalize(self, time: float) -> int:
        """Close every open span at ``time`` (end of a run); returns the
        number closed."""
        closed = 0
        for track in sorted(self._stacks):
            stack = self._stacks[track]
            while stack:
                span = stack[-1]
                self.end(span, max(time, span.start), {"finalized": True})
                closed += 1
        return closed

    # -- views ---------------------------------------------------------------

    @property
    def spans(self) -> List[Span]:
        """Completed spans, oldest first (a fresh list)."""
        return list(self._spans)

    def open_spans(self, track: Optional[str] = None) -> List[Span]:
        """Currently open spans (innermost last), optionally per track."""
        if track is not None:
            return list(self._stacks.get(track, []))
        found: List[Span] = []
        for name in sorted(self._stacks):
            found.extend(self._stacks[name])
        return found

    def tracks(self) -> List[str]:
        """Track names in first-use order (stable across same-seed runs)."""
        seen: List[str] = []
        for span in self._spans:
            if span.track not in seen:
                seen.append(span.track)
        for track in self._stacks:
            if self._stacks[track] and track not in seen:
                seen.append(track)
        return seen

    def counts(self) -> Dict[Tuple[str, str], int]:
        """(category, name) -> completed span count."""
        out: Dict[Tuple[str, str], int] = {}
        for span in self._spans:
            key = (span.category, span.name)
            out[key] = out.get(key, 0) + 1
        return out

    def __len__(self) -> int:
        return len(self._spans)

    def snapshot_state(self) -> Dict[str, Any]:
        """Summary state tree (for checkpoint diffing; spans themselves
        are exported, not checkpointed)."""
        return {
            "max_spans": self.max_spans,
            "strict": self.strict,
            "next_sid": self._next_sid,
            "completed": len(self._spans),
            "dropped_spans": self.dropped_spans,
            "open": {track: len(stack)
                     for track, stack in sorted(self._stacks.items())
                     if stack},
        }

    # -- internals -----------------------------------------------------------

    def _alloc_sid(self) -> int:
        sid = self._next_sid
        self._next_sid += 1
        return sid

    def _buffer(self, span: Span) -> None:
        if len(self._spans) >= self.max_spans:
            if self.strict:
                raise ReproError(
                    f"span buffer overflow at {self.max_spans} spans "
                    f"(strict mode)"
                )
            self._spans.popleft()
            self.dropped_spans += 1
        self._spans.append(span)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SpanTracer spans={len(self._spans)} "
                f"open={len(self.open_spans())} "
                f"dropped={self.dropped_spans}>")
