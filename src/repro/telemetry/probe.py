"""The telemetry hub and its kernel probe.

:class:`Telemetry` owns one :class:`~repro.telemetry.spans.SpanTracer`
and one :class:`~repro.telemetry.registry.MetricRegistry` and wires
them into a running system:

* ``instrument_kernel`` attaches a :class:`KernelProbe` through the
  kernel's recorder mux (quantum spans, wake-to-dispatch latency) and
  installs the lottery policy's ``draw_hook`` (per-draw instants with
  the winner's funding and the total at stake);
* ``instrument_cluster`` / ``instrument_injector`` set the components'
  ``telemetry`` slots so migrations, evacuations, and fault windows
  are reported;
* ``instrument_handle`` walks a checkpoint recipe's
  :class:`~repro.checkpoint.registry.SimHandle` and instruments every
  component it recognises, plus checkpoint save/restore notifications
  via :mod:`repro.telemetry.hooks`.

Everything recorded is a pure function of virtual-time events, so
telemetry never perturbs scheduling: probes only read state, the draw
hook is observation-only by contract, and a system that never imports
this module behaves bit-identically to one that does but leaves it
detached.

The wake-to-dispatch latency histogram is keyed by the winning
thread's *ticket share band* (its nominal funding over the live total)
-- the paper's core claim is that response time scales inversely with
ticket allocation, and this instrument makes that visible per run.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.thread import Thread

from repro.telemetry.registry import MetricRegistry
from repro.telemetry.spans import SpanTracer

__all__ = ["KernelProbe", "Telemetry", "SHARE_BANDS", "share_band"]

#: Ticket-share bands for the latency histogram: (upper bound, label).
SHARE_BANDS: Tuple[Tuple[float, str], ...] = (
    (0.05, "0-5%"),
    (0.10, "5-10%"),
    (0.20, "10-20%"),
    (0.50, "20-50%"),
    (1.01, "50-100%"),
)

#: Bin width (virtual ms) of the latency histograms.
LATENCY_BIN_MS = 5.0


def share_band(share: float) -> str:
    """Label of the ticket-share band containing ``share`` (0..1)."""
    for bound, label in SHARE_BANDS:
        if share < bound:
            return label
    return SHARE_BANDS[-1][1]


class KernelProbe:
    """Recorder sink turning one kernel's event stream into spans.

    Each dispatch opens a ``quantum`` span on the probe's track; the
    span closes when the thread blocks or exits (at that event's time)
    or when the next dispatch arrives (at the last CPU slice's end --
    a preemption).  CPU slices update the close candidate, so quantum
    spans cover exactly the time the thread held the CPU.
    """

    def __init__(self, telemetry: "Telemetry", kernel: "Kernel",
                 track: str) -> None:
        self.telemetry = telemetry
        self.kernel = kernel
        self.track = track
        self._open_quantum = None
        self._quantum_tid: Optional[int] = None
        self._end_candidate = 0.0
        registry = telemetry.registry
        labels = {"track": track}
        self._dispatches = registry.counter(
            "repro_dispatches_total", labels,
            help="Thread dispatches (quanta started).")
        self._cpu_ms = registry.counter(
            "repro_cpu_ms_total", labels,
            help="Virtual CPU milliseconds consumed.")
        self._blocks = registry.counter(
            "repro_blocks_total", labels, help="Threads blocking.")
        self._wakes = registry.counter(
            "repro_wakes_total", labels, help="Threads waking.")
        self._exits = registry.counter(
            "repro_exits_total", labels, help="Threads exiting.")

    # -- recorder protocol ---------------------------------------------------

    def on_dispatch(self, thread: "Thread", time: float) -> None:
        self.close_open_quantum()
        self._dispatches.inc()
        share = self._share_of(thread)
        if thread.runnable_since is not None:
            latency = time - thread.runnable_since
            if latency >= 0:
                self.telemetry.registry.histogram(
                    "repro_wake_to_dispatch_ms", LATENCY_BIN_MS,
                    {"share": share_band(share)},
                    help="Runnable-to-dispatch latency by ticket share band.",
                ).record(latency)
        self._open_quantum = self.telemetry.tracer.begin(
            self.track, "quantum", "kernel", time,
            {"thread": thread.name, "tid": thread.tid,
             "share": round(share, 6)},
        )
        self._quantum_tid = thread.tid
        self._end_candidate = time

    def on_cpu(self, thread: "Thread", start: float, duration: float) -> None:
        self._cpu_ms.inc(duration)
        if self._quantum_tid == thread.tid:
            self._end_candidate = max(self._end_candidate, start + duration)

    def on_block(self, thread: "Thread", time: float) -> None:
        self._blocks.inc()
        if self._quantum_tid == thread.tid:
            self._close_quantum(time, "block")

    def on_wake(self, thread: "Thread", time: float) -> None:
        self._wakes.inc()

    def on_exit(self, thread: "Thread", time: float) -> None:
        self._exits.inc()
        if self._quantum_tid == thread.tid:
            self._close_quantum(time, "exit")

    # -- quantum span management --------------------------------------------

    def close_open_quantum(self) -> None:
        """Close a still-open quantum at its last CPU slice (preemption
        or end of run)."""
        if self._open_quantum is not None:
            self._close_quantum(self._end_candidate, "preempt")

    def _close_quantum(self, end: float, outcome: str) -> None:
        span = self._open_quantum
        if span is None:
            return
        self._open_quantum = None
        self._quantum_tid = None
        self.telemetry.tracer.end(span, max(end, span.start),
                                  {"outcome": outcome})

    # -- helpers -------------------------------------------------------------

    def _share_of(self, thread: "Thread") -> float:
        """Nominal ticket share of the thread among live threads."""
        total = 0.0
        for other in self.kernel.threads:
            if other.alive:
                total += other.nominal_funding()
        if total <= 0:
            return 0.0
        return thread.nominal_funding() / total


class Telemetry:
    """The observability hub: tracer + registry + instrumentation."""

    def __init__(self, max_spans: int = 1_000_000,
                 strict: bool = False) -> None:
        self.tracer = SpanTracer(max_spans=max_spans, strict=strict)
        self.registry = MetricRegistry()
        #: (kernel, probe) pairs in attach order.
        self._probes: List[Tuple[Any, KernelProbe]] = []
        self._instrumented_policies: List[Any] = []
        self._observing_checkpoints = False

    # -- wiring --------------------------------------------------------------

    def instrument_kernel(self, kernel: "Kernel",
                          track: str = "kernel") -> KernelProbe:
        """Attach a probe to a kernel (mux-safe) and hook its policy."""
        probe = KernelProbe(self, kernel, track)
        kernel.attach_recorder(probe)
        kernel.telemetry = self
        policy = kernel.policy
        if hasattr(policy, "draw_hook"):
            policy.draw_hook = self._make_draw_hook(track)
            self._instrumented_policies.append(policy)
        self._probes.append((kernel, probe))
        return probe

    def instrument_cluster(self, cluster: Any) -> None:
        """Instrument every node's kernel, plus migration reporting."""
        cluster.telemetry = self
        for node in cluster.nodes:
            self.instrument_kernel(node.kernel, track=node.name)

    def instrument_injector(self, injector: Any) -> None:
        """Report applied faults as ``fault`` spans."""
        injector.telemetry = self

    def instrument_handle(self, handle: Any) -> "Telemetry":
        """Instrument every recognised component of a recipe's
        :class:`~repro.checkpoint.registry.SimHandle`; returns self."""
        from repro.distributed.cluster import Cluster
        from repro.faults.injector import FaultInjector
        from repro.kernel.kernel import Kernel

        for name, component in handle.components.items():
            if isinstance(component, Cluster):
                self.instrument_cluster(component)
            elif isinstance(component, Kernel):
                self.instrument_kernel(component, track=name)
            elif isinstance(component, FaultInjector):
                self.instrument_injector(component)
        self.observe_checkpoints()
        return self

    def observe_checkpoints(self) -> None:
        """Subscribe to checkpoint save/restore notifications."""
        from repro.telemetry import hooks

        if not self._observing_checkpoints:
            hooks.subscribe(self)
            self._observing_checkpoints = True

    def finalize(self, time: float) -> None:
        """Close open quantum spans and any dangling spans at ``time``
        (call once, after the run)."""
        for _, probe in self._probes:
            probe.close_open_quantum()
        self.tracer.finalize(time)

    def close(self) -> None:
        """Detach every probe and hook, leaving the system as found."""
        from repro.telemetry import hooks

        for kernel, probe in self._probes:
            kernel.detach_recorder(probe)
            if kernel.telemetry is self:
                kernel.telemetry = None
        self._probes.clear()
        for policy in self._instrumented_policies:
            policy.draw_hook = None
        self._instrumented_policies.clear()
        if self._observing_checkpoints:
            hooks.unsubscribe(self)
            self._observing_checkpoints = False

    # -- component callbacks -------------------------------------------------

    def on_ipc_send(self, port: Any, request: Any, rpc: bool) -> None:
        """A message or call entered a port (instant event)."""
        track = self._track_of(port.kernel)
        self.tracer.event(
            track, "ipc.call" if rpc else "ipc.send", "ipc",
            port.kernel.now, {"port": port.name},
        )
        self.registry.counter(
            "repro_ipc_calls_total" if rpc else "repro_ipc_sends_total",
            {"track": track},
            help="IPC calls (RPCs)." if rpc else "Asynchronous IPC sends.",
        ).inc()

    def on_ipc_reply(self, port: Any, request: Any) -> None:
        """An RPC completed: record its whole lifetime as a span."""
        track = self._track_of(port.kernel)
        now = port.kernel.now
        self.tracer.complete(
            track, "ipc.rpc", "ipc", request.created_at, now,
            {"port": port.name, "attempts": request.delivery_attempts},
        )
        self.registry.counter(
            "repro_ipc_replies_total", {"track": track},
            help="RPC replies delivered.").inc()
        self.registry.histogram(
            "repro_ipc_rpc_ms", LATENCY_BIN_MS, {"track": track},
            help="RPC response times (call to reply).",
        ).record(now - request.created_at)

    def on_request_complete(self, kernel: "Kernel", service_class: str,
                            e2e_ms: float) -> None:
        """A serving-arena request finished end-to-end (arrival to
        reply); keyed by service class, not share band, so per-class
        tail latency is readable straight off the histogram."""
        track = self._track_of(kernel)
        self.registry.counter(
            "repro_requests_completed_total",
            {"track": track, "class": service_class},
            help="Serving requests completed end-to-end.").inc()
        self.registry.histogram(
            "repro_request_e2e_ms", LATENCY_BIN_MS,
            {"track": track, "class": service_class},
            help="End-to-end request latency (scheduled arrival to "
                 "reply) by service class.",
        ).record(e2e_ms)

    def on_ipc_retransmit(self, port: Any, request: Any,
                          backoff: float, forced: bool) -> None:
        """A dropped delivery was rescheduled (fault window)."""
        track = self._track_of(port.kernel)
        self.tracer.event(
            track, "ipc.retransmit", "ipc", port.kernel.now,
            {"port": port.name, "attempt": request.delivery_attempts,
             "backoff_ms": backoff, "forced": forced},
        )
        self.registry.counter(
            "repro_ipc_retransmits_total", {"track": track},
            help="IPC retransmissions under injected drops.").inc()

    def on_migration(self, thread: "Thread", source: str, destination: str,
                     time: float, kind: str = "migrate") -> None:
        """A thread moved between nodes (rebalance or evacuation)."""
        self.tracer.event(
            "cluster", f"cluster.{kind}", "cluster", time,
            {"thread": thread.name, "tid": thread.tid,
             "source": source, "destination": destination},
        )
        self.registry.counter(
            "repro_cluster_moves_total", {"kind": kind},
            help="Threads moved between nodes.").inc()

    def on_fault(self, event: Any, detail: str, time: float) -> None:
        """A fault fired: a span over its window (or an instant)."""
        duration = 0.0
        params = getattr(event, "params", {}) or {}
        if isinstance(params.get("duration"), (int, float)):
            duration = float(params["duration"])
        attrs = {"target": event.target, "detail": detail}
        if duration > 0:
            self.tracer.complete("faults", f"fault.{event.kind}", "fault",
                                 time, time + duration, attrs)
        else:
            self.tracer.event("faults", f"fault.{event.kind}", "fault",
                              time, attrs)
        self.registry.counter(
            "repro_faults_total", {"kind": event.kind},
            help="Fault events applied.").inc()

    def on_checkpoint(self, kind: str, time: float, checksum: Optional[str],
                      path: Optional[str]) -> None:
        """A checkpoint was saved or restored (via telemetry hooks)."""
        attrs: Dict[str, Any] = {}
        if checksum is not None:
            attrs["checksum"] = checksum
        self.tracer.event("checkpoint", f"checkpoint.{kind}", "checkpoint",
                          time, attrs)
        self.registry.counter(
            "repro_checkpoints_total", {"kind": kind},
            help="Checkpoint saves and restores.").inc()

    # -- state ---------------------------------------------------------------

    def snapshot_state(self) -> Dict[str, Any]:
        """Summary state tree (probe wiring is transient by design)."""
        return {
            "tracer": self.tracer.snapshot_state(),
            "registry": self.registry.snapshot_state(),
            "probes": len(self._probes),
        }

    # -- internals -----------------------------------------------------------

    def _make_draw_hook(self, track: str):
        def hook(draw: Dict[str, Any]) -> None:
            winner = draw["winner"]
            self.tracer.event(
                track, "lottery.draw", "scheduler", winner.kernel.now,
                {"winner": winner.name, "tid": winner.tid,
                 "funding": draw["funding"], "total": draw["total"],
                 "runnable": draw["runnable"],
                 "examined": draw["examined"],
                 "fallback": draw["fallback"],
                 "prng_state": draw["prng_state"]},
            )
            registry = self.registry
            labels = {"track": track}
            registry.counter(
                "repro_lottery_draws_total", labels,
                help="Lotteries held (including fallbacks).").inc()
            registry.counter(
                "repro_lottery_examined_total", labels,
                help="Clients examined while drawing.",
            ).inc(draw["examined"])
            if draw["fallback"]:
                registry.counter(
                    "repro_lottery_fallbacks_total", labels,
                    help="Zero-funding FIFO fallbacks.").inc()

        return hook

    def _track_of(self, kernel: Any) -> str:
        for candidate, probe in self._probes:
            if candidate is kernel:
                return probe.track
        return "kernel"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Telemetry probes={len(self._probes)} "
                f"spans={len(self.tracer)} "
                f"metrics={len(self.registry)}>")
