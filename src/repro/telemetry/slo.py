"""Deterministic SLO watchdogs over the aggregated observability stream.

The evaluator walks the :class:`~repro.telemetry.aggregate.ObsAggregator`
slices (one per epoch barrier, canonical order) with sliding windows
and emits machine-checkable verdicts.  Everything is a pure function
of the slices, so two runs of the same plan/seed -- on any backend --
produce byte-identical breach lists.

Three watchdogs:

* **fairness drift** -- over each ``fairness_window``-slice window,
  the CPU-share each *competing* thread earned (window delta of its
  cumulative ``cpu_ms``) is compared against its ticket share among
  the competitors **on its own core** (every core runs its own
  lottery; cross-core ticket stakes do not race each other).  A
  thread competes when it is alive at both window edges, funded, and
  either gained CPU or was runnable at both edges -- so a blocked
  server with a large ticket stake does not smear the error of the
  threads actually racing (Waldspurger & Weihl measure fairness over
  competing CPU-bound clients for the same reason).  Only **over-use**
  breaches: barrier-edge snapshots cannot distinguish voluntary
  blocking from unfair denial, so under-use is not graded -- denial
  of a persistently runnable thread is the starvation watchdog's job,
  while exceeding one's ticket share is an isolation violation no
  blocking pattern can excuse.  A thread is only
  judged when its *expected* dispatch count in the window
  (``ticket share x window dispatches``) reaches
  ``fairness_min_expected_dispatches``: lottery scheduling is
  probabilistically fair, with relative error shrinking as
  ``1/sqrt(expected)``, so verdicts below that floor would grade
  noise, not the scheduler.
* **latency ceiling** -- the p99 of the wake-to-dispatch latency per
  ticket-share band, computed from the *window delta* of the merged
  cumulative histogram bins, must stay under ``p99_ceiling_ms``.
  Windows with fewer than ``min_samples`` observations are skipped
  (a p99 over three points is noise, not a verdict).
* **starvation** -- a thread that is runnable at both edges of a
  ``starvation_window``-slice window without a single new dispatch is
  starving; the paper's proportional-share claim says every funded
  thread makes progress.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional

from repro.errors import ReproError
from repro.telemetry.aggregate import percentile_from_bins
from repro.telemetry.registry import parse_full_name

__all__ = ["SloPolicy", "SloEvaluator", "evaluate_slo"]

#: Base name of the per-band latency histogram the kernel probe records.
_LATENCY_METRIC = "repro_wake_to_dispatch_ms"


@dataclass(frozen=True)
class SloPolicy:
    """Thresholds and windows for the watchdogs (slice-denominated)."""

    fairness_rel_error_max: float = 0.9
    fairness_window: int = 4
    fairness_min_expected_dispatches: float = 10.0
    p99_ceiling_ms: float = 2000.0
    latency_window: int = 4
    min_samples: int = 20
    starvation_window: int = 6

    def __post_init__(self) -> None:
        if self.fairness_rel_error_max <= 0:
            raise ReproError("fairness_rel_error_max must be positive")
        if self.fairness_min_expected_dispatches < 0:
            raise ReproError(
                "fairness_min_expected_dispatches must be >= 0")
        if self.p99_ceiling_ms <= 0:
            raise ReproError("p99_ceiling_ms must be positive")
        if (self.fairness_window < 1 or self.latency_window < 1
                or self.starvation_window < 1):
            raise ReproError("SLO windows must be >= 1 slice")
        if self.min_samples < 1:
            raise ReproError("min_samples must be >= 1")


def _latency_bins(frames: List[Dict[str, Any]]) -> Dict[str, Dict[float, List[float]]]:
    """band -> {bin start -> [start, end, count]} merged across cores."""
    merged: Dict[str, Dict[float, List[float]]] = {}
    for frame in sorted(frames, key=lambda f: f["core"]):
        for full_name, snapshot in frame.get("metrics", {}).items():
            if snapshot.get("kind") != "histogram":
                continue
            name, labels = parse_full_name(full_name)
            if name != _LATENCY_METRIC:
                continue
            band = labels.get("share", "")
            bins = merged.setdefault(band, {})
            for start, end, count in snapshot["bins"]:
                slot = bins.setdefault(float(start),
                                       [float(start), float(end), 0])
                slot[2] += int(count)
    return merged


def _window_delta(now: Dict[float, List[float]],
                  then: Dict[float, List[float]]) -> List[List[float]]:
    """Cumulative bins at the window edges -> observations inside it."""
    delta: List[List[float]] = []
    for start in sorted(now):
        start_v, end_v, count = now[start]
        before = then.get(start, [start_v, end_v, 0])[2]
        if count - before > 0:
            delta.append([start_v, end_v, count - before])
    return delta


class SloEvaluator:
    """Walks aggregator slices and collects deterministic breaches."""

    def __init__(self, policy: Optional[SloPolicy] = None) -> None:
        self.policy = policy if policy is not None else SloPolicy()

    def evaluate(self, slices: List[Dict[str, Any]]) -> Dict[str, Any]:
        breaches: List[Dict[str, Any]] = []
        checks = 0
        for index, record in enumerate(slices):
            checks += self._fairness(index, record, slices, breaches)
            checks += self._latency(index, record, slices, breaches)
            checks += self._starvation(index, record, slices, breaches)
        breaches.sort(key=lambda b: (b["time"], b["rule"], b["subject"]))
        counts: Dict[str, int] = {}
        for breach in breaches:
            counts[breach["rule"]] = counts.get(breach["rule"], 0) + 1
        return {
            "policy": asdict(self.policy),
            "slices": len(slices),
            "checks": checks,
            "breaches": breaches,
            "counts": counts,
            "ok": not breaches,
        }

    # -- watchdogs ------------------------------------------------------------

    def _fairness(self, index: int, record: Dict[str, Any],
                  slices: List[Dict[str, Any]],
                  breaches: List[Dict[str, Any]]) -> int:
        window = self.policy.fairness_window
        if index < window:
            return 0
        then_threads = {
            (frame["core"], entry["tid"]): entry
            for frame in slices[index - window]["frames"]
            for entry in frame.get("threads", [])}
        per_core: Dict[int, List[Dict[str, Any]]] = {}
        for frame in record["frames"]:
            for entry in frame.get("threads", []):
                before = then_threads.get((frame["core"], entry["tid"]))
                if before is None or not entry["alive"]:
                    continue
                if entry["tickets"] <= 0:
                    continue
                delta_cpu = entry["cpu_ms"] - before["cpu_ms"]
                if delta_cpu <= 0 and not (entry["runnable"]
                                           and before["runnable"]):
                    continue  # blocked/idle through the window
                per_core.setdefault(frame["core"], []).append({
                    "name": entry["name"], "core": frame["core"],
                    "tickets": entry["tickets"], "delta_cpu": delta_cpu,
                    "delta_dispatches": (entry["dispatches"]
                                         - before["dispatches"]),
                })
        checks = 0
        for core in sorted(per_core):
            competing = per_core[core]
            total_cpu = sum(t["delta_cpu"] for t in competing)
            total_tickets = sum(t["tickets"] for t in competing)
            total_dispatches = sum(t["delta_dispatches"] for t in competing)
            if len(competing) < 2 or total_tickets <= 0 or total_cpu <= 0:
                continue
            for thread in competing:
                entitlement = thread["tickets"] / total_tickets
                expected = entitlement * total_dispatches
                if expected < self.policy.fairness_min_expected_dispatches:
                    continue  # verdict would grade lottery noise
                checks += 1
                usage = thread["delta_cpu"] / total_cpu
                rel_error = max(0.0, usage - entitlement) / entitlement
                if rel_error > self.policy.fairness_rel_error_max:
                    breaches.append({
                        "rule": "fairness.drift", "time": record["time"],
                        "subject": thread["name"],
                        "value": rel_error,
                        "bound": self.policy.fairness_rel_error_max,
                        "core": core,
                        "competing": len(competing),
                    })
        return checks

    def _latency(self, index: int, record: Dict[str, Any],
                 slices: List[Dict[str, Any]],
                 breaches: List[Dict[str, Any]]) -> int:
        window = self.policy.latency_window
        if index < window:
            return 0
        now = _latency_bins(record["frames"])
        then = _latency_bins(slices[index - window]["frames"])
        checks = 0
        for band in sorted(now):
            delta = _window_delta(now[band], then.get(band, {}))
            samples = sum(int(n) for _, _, n in delta)
            if samples < self.policy.min_samples:
                continue
            checks += 1
            p99 = percentile_from_bins(delta, 99)
            if p99 > self.policy.p99_ceiling_ms:
                breaches.append({
                    "rule": "latency.p99", "time": record["time"],
                    "subject": band, "value": p99,
                    "bound": self.policy.p99_ceiling_ms,
                    "samples": samples,
                })
        return checks

    def _starvation(self, index: int, record: Dict[str, Any],
                    slices: List[Dict[str, Any]],
                    breaches: List[Dict[str, Any]]) -> int:
        window = self.policy.starvation_window
        if index < window:
            return 0
        then_threads = {
            (frame["core"], entry["tid"]): entry
            for frame in slices[index - window]["frames"]
            for entry in frame.get("threads", [])}
        checks = 0
        for frame in record["frames"]:
            for entry in frame.get("threads", []):
                before = then_threads.get((frame["core"], entry["tid"]))
                if before is None or not entry["alive"]:
                    continue
                checks += 1
                starving = (entry["runnable"] and before["runnable"]
                            and entry["dispatches"] == before["dispatches"]
                            and entry["tickets"] > 0)
                if starving:
                    breaches.append({
                        "rule": "starvation", "time": record["time"],
                        "subject": entry["name"],
                        "value": float(entry["dispatches"]),
                        "bound": float(window),
                        "core": frame["core"],
                    })
        return checks


def evaluate_slo(slices: List[Dict[str, Any]],
                 policy: Optional[SloPolicy] = None) -> Dict[str, Any]:
    """One-shot evaluation (the module-level convenience entry)."""
    return SloEvaluator(policy).evaluate(slices)
