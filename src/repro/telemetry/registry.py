"""Central metric registry: counters, gauges, histograms.

One :class:`MetricRegistry` per :class:`~repro.telemetry.probe.Telemetry`
hub collects every instrument the probes record into, keyed by name
plus a sorted label set (Prometheus-style identity: ``name{k="v"}``).
Histograms reuse :class:`repro.metrics.histogram.Histogram`, so the
wake-to-dispatch latency distribution exported here is the same shape
as the paper's Figure 11 waiting-time histograms.

Instruments are deterministic: values derive only from virtual-time
events, registration order is the call order of the (deterministic)
simulation, and exporters sort by full name -- same seed, same bytes.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import ReproError
from repro.metrics.histogram import Histogram

__all__ = ["Counter", "Gauge", "HistogramInstrument", "MetricRegistry",
           "parse_full_name", "render_name"]


def render_name(name: str, labels: Optional[Dict[str, str]] = None) -> str:
    """Canonical instrument identity: ``name{k="v",...}``, keys sorted."""
    if not labels:
        return name
    inner = ",".join(f'{key}="{labels[key]}"' for key in sorted(labels))
    return f"{name}{{{inner}}}"


_LABEL_PAIR_RE = re.compile(r'([^=,{}]+)="([^"]*)"')


def parse_full_name(full_name: str) -> Tuple[str, Dict[str, str]]:
    """Inverse of :func:`render_name`: ``name{k="v"}`` -> (name, labels).

    Registry identities never contain quotes inside label values (they
    are built by :func:`render_name` from plain strings), so a simple
    quoted-pair scan is exact.
    """
    brace = full_name.find("{")
    if brace < 0:
        return full_name, {}
    labels = {match.group(1): match.group(2)
              for match in _LABEL_PAIR_RE.finditer(full_name[brace:])}
    return full_name[:brace], labels


class Counter:
    """A monotonically increasing count of events."""

    kind = "counter"

    def __init__(self, full_name: str, help: str = "") -> None:
        self.full_name = full_name
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative: counters only go up)."""
        if amount < 0:
            raise ReproError(
                f"counter {self.full_name!r} cannot decrease "
                f"(inc by {amount})"
            )
        self.value += amount

    def snapshot_state(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A value that can go up and down (queue depth, open spans)."""

    kind = "gauge"

    def __init__(self, full_name: str, help: str = "") -> None:
        self.full_name = full_name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float) -> None:
        self.value += amount

    def snapshot_state(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class HistogramInstrument:
    """A fixed-bin distribution, wrapping :class:`repro.metrics.Histogram`."""

    kind = "histogram"

    def __init__(self, full_name: str, bin_width: float,
                 help: str = "") -> None:
        self.full_name = full_name
        self.help = help
        self.histogram = Histogram(bin_width, name=full_name)

    def record(self, value: float) -> None:
        """Record one observation (non-negative, per Histogram rules)."""
        self.histogram.add(value)

    @property
    def count(self) -> int:
        return self.histogram.count

    def mean(self) -> float:
        return self.histogram.mean()

    def percentile(self, q: float) -> float:
        return self.histogram.percentile(q)

    def snapshot_state(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "count": self.histogram.count,
            "mean": self.histogram.mean(),
            "bins": [[start, end, count]
                     for start, end, count in self.histogram.bins()],
        }


Instrument = Union[Counter, Gauge, HistogramInstrument]


class MetricRegistry:
    """Get-or-create registry of named instruments.

    Asking twice for the same (name, labels) returns the same
    instrument; asking for an existing name with a different kind (or a
    histogram with a different bin width) is a wiring bug and raises.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    def counter(self, name: str, labels: Optional[Dict[str, str]] = None,
                help: str = "") -> Counter:
        return self._get_or_create(Counter, render_name(name, labels), help)

    def gauge(self, name: str, labels: Optional[Dict[str, str]] = None,
              help: str = "") -> Gauge:
        return self._get_or_create(Gauge, render_name(name, labels), help)

    def histogram(self, name: str, bin_width: float,
                  labels: Optional[Dict[str, str]] = None,
                  help: str = "") -> HistogramInstrument:
        full_name = render_name(name, labels)
        existing = self._instruments.get(full_name)
        if existing is not None:
            if not isinstance(existing, HistogramInstrument):
                raise ReproError(
                    f"metric {full_name!r} is a {existing.kind}, not a "
                    f"histogram"
                )
            if existing.histogram.bin_width != bin_width:
                raise ReproError(
                    f"histogram {full_name!r} re-registered with bin "
                    f"width {bin_width:g} (was "
                    f"{existing.histogram.bin_width:g})"
                )
            return existing
        instrument = HistogramInstrument(full_name, bin_width, help)
        self._instruments[full_name] = instrument
        return instrument

    # -- views ---------------------------------------------------------------

    def get(self, name: str,
            labels: Optional[Dict[str, str]] = None) -> Optional[Instrument]:
        """Look up an instrument without creating it."""
        return self._instruments.get(render_name(name, labels))

    def instruments(self) -> List[Instrument]:
        """All instruments sorted by full name (export order)."""
        return [self._instruments[name]
                for name in sorted(self._instruments)]

    def __len__(self) -> int:
        return len(self._instruments)

    def as_dict(self) -> Dict[str, Dict[str, Any]]:
        """full name -> snapshot, sorted (for JSONL export and tests)."""
        return {instrument.full_name: instrument.snapshot_state()
                for instrument in self.instruments()}

    def snapshot_state(self) -> Dict[str, Any]:
        return {"instruments": self.as_dict()}

    # -- internals -----------------------------------------------------------

    def _get_or_create(self, cls: type, full_name: str, help: str) -> Any:
        existing = self._instruments.get(full_name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ReproError(
                    f"metric {full_name!r} is a {existing.kind}, not a "
                    f"{cls.kind}"
                )
            return existing
        instrument = cls(full_name, help)
        self._instruments[full_name] = instrument
        return instrument

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MetricRegistry instruments={len(self._instruments)}>"
