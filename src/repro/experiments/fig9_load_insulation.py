"""Figure 9: currencies insulate loads (paper section 5.5).

Five Dhrystone tasks run in two identically funded currencies A and B:
A1 = 100.A, A2 = 200.A, B1 = 100.B, B2 = 200.B; halfway through, task
B3 = 300.B starts, inflating currency B's issue from 300 to 600.  The
inflation is locally contained: B1 and B2 slow to about half their
rates while A1 and A2 are unaffected, and the aggregate A:B progress
stays 1:1 (the paper measured slope ratios of 1.01:1 before and
1.00:1 after, with A's aggregate iteration ratio to B at 1.01:1).
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.common import ExperimentResult, build_machine
from repro.workloads.dhrystone import DhrystoneTask

__all__ = ["run", "main"]


def run(duration_ms: float = 300_000.0, seed: int = 31415,
        sample_every_ms: float = 10_000.0) -> ExperimentResult:
    """Reproduce Figure 9: inflation inside B leaves A untouched."""
    machine = build_machine(seed=seed)
    ledger = machine.ledger
    currency_a = ledger.create_currency("A")
    currency_b = ledger.create_currency("B")
    ledger.create_ticket(1000, fund=currency_a)
    ledger.create_ticket(1000, fund=currency_b)

    tasks: Dict[str, DhrystoneTask] = {}

    def start(name: str, currency, amount: float) -> None:
        workload = DhrystoneTask(name)
        tasks[name] = workload
        kernel_task = machine.kernel.create_task(name)
        kernel_task.currency = currency
        machine.kernel.spawn(
            workload.body, name, task=kernel_task,
            tickets=amount, currency=currency,
        )

    start("A1", currency_a, 100)
    start("A2", currency_a, 200)
    start("B1", currency_b, 100)
    start("B2", currency_b, 200)
    switch_at = duration_ms / 2.0
    machine.engine.call_at(
        switch_at, lambda: start("B3", currency_b, 300), label="start-B3"
    )
    machine.run_until(duration_ms)

    result = ExperimentResult(
        name="Figure 9: currencies insulate loads",
        params={
            "duration_ms": duration_ms,
            "funding": "A=1000 base, B=1000 base",
            "tasks": "A1=100.A A2=200.A B1=100.B B2=200.B (+B3=300.B at T/2)",
        },
    )
    t = 0.0
    while t <= duration_ms + 1e-9:
        row = {"time_s": t / 1000.0}
        for name in ("A1", "A2", "B1", "B2", "B3"):
            task = tasks.get(name)
            row[f"{name}_iters"] = task.counter.total_until(t) if task else 0.0
        result.rows.append(row)
        t += sample_every_ms

    def rate(name: str, start_t: float, end_t: float) -> float:
        task = tasks.get(name)
        return task.rate_per_second(start_t, end_t) if task else 0.0

    for name in ("A1", "A2", "B1", "B2"):
        first = rate(name, 0, switch_at)
        second = rate(name, switch_at, duration_ms)
        result.summary[f"{name} rate (before -> after B3)"] = (
            f"{first:.0f} -> {second:.0f} iters/s"
            f" ({second / first:.2f}x)" if first else "n/a"
        )
    total_a = tasks["A1"].iterations + tasks["A2"].iterations
    total_b = sum(tasks[n].iterations for n in ("B1", "B2", "B3") if n in tasks)
    result.summary["aggregate A:B iterations"] = (
        f"{total_a / total_b:.3f} : 1 (funded 1 : 1)" if total_b else "n/a"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    from repro.metrics.ascii_chart import line_chart

    result = run()
    result.print_report()
    names = [key[:-6] for key in result.rows[0] if key.endswith("_iters")]
    print()
    print(line_chart(
        {
            name: [(r["time_s"], r[f"{name}_iters"]) for r in result.rows]
            for name in names
        },
        title="Figure 9: cumulative iterations (B3 starts at T/2)",
        y_label="iterations",
    ))


if __name__ == "__main__":  # pragma: no cover
    main()
