"""Figure 4: relative rate accuracy (paper section 5.1).

Two Dhrystone tasks run for sixty seconds with relative ticket
allocations 1:1 through 10:1, three runs per ratio; the observed
iteration ratio is plotted against the allocated ratio.  The paper
finds all points close to the ideal diagonal, with variance growing
with the ratio (one 10:1 run came in at 13.42:1) and a three-minute
20:1 run at 19.08:1.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import ExperimentResult, build_machine
from repro.metrics.stats import mean, stdev
from repro.workloads.dhrystone import DhrystoneTask

__all__ = ["run", "run_single", "main"]


def run_single(ratio: float, duration_ms: float = 60_000.0,
               seed: int = 1, quantum: float = 100.0,
               tickets_base: float = 100.0) -> float:
    """One sixty-second run; returns the observed iteration ratio."""
    machine = build_machine(seed=seed, quantum=quantum)
    fast = DhrystoneTask("fast")
    slow = DhrystoneTask("slow")
    machine.kernel.spawn(fast.body, "fast", tickets=tickets_base * ratio)
    machine.kernel.spawn(slow.body, "slow", tickets=tickets_base)
    machine.run_until(duration_ms)
    if slow.iterations == 0:
        return float("inf")
    return fast.iterations / slow.iterations


def run(ratios: Optional[Sequence[float]] = None, runs: int = 3,
        duration_ms: float = 60_000.0, seed: int = 1994,
        quantum: float = 100.0) -> ExperimentResult:
    """Reproduce Figure 4: observed vs allocated ratios, ``runs`` each."""
    if ratios is None:
        ratios = list(range(1, 11))
    result = ExperimentResult(
        name="Figure 4: relative rate accuracy",
        params={
            "duration_ms": duration_ms,
            "runs_per_ratio": runs,
            "quantum_ms": quantum,
        },
    )
    worst_error = 0.0
    for ratio in ratios:
        observed = []
        for run_index in range(runs):
            run_seed = seed + 7919 * run_index + int(ratio * 104729)
            observed.append(
                run_single(ratio, duration_ms, seed=run_seed, quantum=quantum)
            )
        for run_index, value in enumerate(observed):
            result.rows.append(
                {"allocated": ratio, "run": run_index, "observed": value}
            )
            worst_error = max(worst_error, abs(value - ratio) / ratio)
        result.summary[f"ratio {ratio}:1"] = (
            f"mean {mean(observed):.2f}, sd {stdev(observed):.2f}"
        )
    result.summary["worst relative error"] = f"{worst_error:.3f}"
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    from repro.metrics.ascii_chart import scatter_chart

    result = run()
    result.print_report()
    points = [(row["allocated"], row["observed"]) for row in result.rows]
    print()
    print(scatter_chart(points, diagonal=True,
                        title="Figure 4: observed vs allocated ratio",
                        x_label="allocated", y_label="observed"))


if __name__ == "__main__":  # pragma: no cover
    main()
