"""Figure 5: fairness over time (paper section 5.1).

Two Dhrystone tasks with a 2:1 allocation run for 200 seconds; average
iterations/sec are computed over a series of 8-second windows.  The
paper observes the two tasks staying close to 2:1 throughout, with
window-level variation (the overall run averaged 25378 vs 12619
iterations/sec, 2.01:1).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, build_machine
from repro.workloads.dhrystone import DhrystoneTask

__all__ = ["run", "main"]


def run(duration_ms: float = 200_000.0, window_ms: float = 8_000.0,
        ratio: float = 2.0, seed: int = 42,
        quantum: float = 100.0) -> ExperimentResult:
    """Reproduce Figure 5: per-window rates for a 2:1 allocation."""
    machine = build_machine(seed=seed, quantum=quantum)
    task_a = DhrystoneTask("A")
    task_b = DhrystoneTask("B")
    machine.kernel.spawn(task_a.body, "A", tickets=100.0 * ratio)
    machine.kernel.spawn(task_b.body, "B", tickets=100.0)
    machine.run_until(duration_ms)

    result = ExperimentResult(
        name="Figure 5: fairness over 8-second windows",
        params={
            "duration_ms": duration_ms,
            "window_ms": window_ms,
            "allocation": f"{ratio:g}:1",
        },
    )
    rates_a = task_a.counter.window_rates(window_ms, duration_ms)
    rates_b = task_b.counter.window_rates(window_ms, duration_ms)
    for (start, rate_a), (_, rate_b) in zip(rates_a, rates_b):
        result.rows.append(
            {
                "window_start_s": start / 1000.0,
                "A_iters_per_s": rate_a,
                "B_iters_per_s": rate_b,
                "ratio": rate_a / rate_b if rate_b else float("inf"),
            }
        )
    overall_a = task_a.iterations / (duration_ms / 1000.0)
    overall_b = task_b.iterations / (duration_ms / 1000.0)
    result.summary["overall A iters/sec"] = f"{overall_a:.0f}"
    result.summary["overall B iters/sec"] = f"{overall_b:.0f}"
    result.summary["overall ratio"] = (
        f"{overall_a / overall_b:.3f} : 1 (allocated {ratio:g} : 1)"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    from repro.metrics.ascii_chart import line_chart

    result = run()
    result.print_report()
    print()
    print(line_chart(
        {
            "A": [(r["window_start_s"], r["A_iters_per_s"])
                  for r in result.rows],
            "B": [(r["window_start_s"], r["B_iters_per_s"])
                  for r in result.rows],
        },
        title="Figure 5: iterations/sec per 8 s window",
        y_label="iters/s",
    ))


if __name__ == "__main__":  # pragma: no cover
    main()
