"""Quantum-size sweep: fairness horizon vs dispatch overhead (§2.2).

The paper: "With a scheduling quantum of 10 milliseconds (100 lotteries
per second), reasonable fairness can be achieved over subsecond time
intervals" -- and, discussing the prototype, that a 10 ms quantum would
have shown Figure 5's fairness over sub-second windows instead of 8 s
ones.  "As computation speeds continue to increase, shorter time quanta
can be used to further improve accuracy while maintaining a fixed
proportion of scheduler overhead."

This experiment runs the same 2:1 workload at several quantum sizes and
reports (a) the coefficient of variation of the funded thread's
one-second-window CPU share -- the fairness a user experiences at human
time scales -- and (b) dispatches per simulated second, the overhead
knob the quantum trades against.  The CV should shrink ~ 1/sqrt(quantum
count per window), i.e. halve for every 4x quantum reduction.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.experiments.common import ExperimentResult, build_machine
from repro.kernel.syscalls import Compute
from repro.metrics.recorder import KernelRecorder
from repro.metrics.stats import mean, stdev

__all__ = ["run", "run_quantum", "main"]


def run_quantum(quantum_ms: float, duration_ms: float = 120_000.0,
                window_ms: float = 1_000.0, seed: int = 99) -> dict:
    """One 2:1 run; returns window-share CV and dispatch rate."""
    machine = build_machine(seed=seed, quantum=quantum_ms)
    recorder = KernelRecorder()
    machine.kernel.recorder = recorder

    def spin(ctx):
        while True:
            yield Compute(quantum_ms)

    favored = machine.kernel.spawn(spin, "favored", tickets=200)
    machine.kernel.spawn(spin, "other", tickets=100)
    machine.run_until(duration_ms)

    shares = []
    t = 0.0
    while t < duration_ms - 1e-9:
        shares.append(recorder.cpu_share(favored, t, t + window_ms))
        t += window_ms
    mu = mean(shares)
    cv = stdev(shares) / mu if mu else float("inf")
    return {
        "quantum_ms": quantum_ms,
        "window_share_mean": mu,
        "window_share_cv": cv,
        "dispatches_per_s": machine.kernel.dispatch_count
        / (duration_ms / 1000.0),
        "predicted_cv": math.sqrt(
            (1 - 2 / 3) / ((window_ms / quantum_ms) * (2 / 3))
        ),
    }


def run(quanta: Sequence[float] = (10.0, 25.0, 50.0, 100.0, 200.0),
        duration_ms: float = 120_000.0, seed: int = 99) -> ExperimentResult:
    """Sweep quantum sizes for the 2:1 allocation."""
    result = ExperimentResult(
        name="Quantum sweep: sub-second fairness vs dispatch rate (§2.2)",
        params={
            "allocation": "2:1",
            "window_ms": 1000.0,
            "duration_ms": duration_ms,
        },
    )
    for quantum in quanta:
        result.rows.append(
            run_quantum(quantum, duration_ms=duration_ms, seed=seed)
        )
    smallest = result.rows[0]
    largest = result.rows[-1]
    result.summary["CV at smallest quantum"] = (
        f"{smallest['window_share_cv']:.3f} at {smallest['quantum_ms']:g} ms"
    )
    result.summary["CV at largest quantum"] = (
        f"{largest['window_share_cv']:.3f} at {largest['quantum_ms']:g} ms"
    )
    result.summary["paper claim"] = (
        "10 ms quanta give sub-second fairness; CV shrinks ~ sqrt(quantum)"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    run().print_report()


if __name__ == "__main__":  # pragma: no cover
    main()
