"""Chaos experiment: proportional-share fairness under injected faults.

The paper's evaluation (Figures 4 and 9) shows lottery scheduling
tracking ticket ratios on a healthy machine.  This experiment asks the
distributed-extension question: does the guarantee *recover* when nodes
crash and rejoin?  A cluster runs heterogeneously funded spinners while
a seeded :class:`~repro.faults.plan.FaultPlan` crashes nodes and
restarts them; after every transition we restart the fairness clock and
watch the windowed max relative error reconverge below a threshold.

Mechanics of recovery being measured:

* a crash kills the pinned victim thread on the dead node -- its
  tickets are reclaimed from the shared ledger, so survivors' global
  shares grow instantly;
* unpinned runnable threads are evacuated to the least-funded live
  node, keeping them schedulable;
* a restart returns an empty node, and the periodic rebalancer
  repopulates it, re-equalizing per-node ticket totals.

Because every source of randomness (lotteries, fault schedule,
injector dice) is a seeded Park-Miller stream driven by the shared
virtual clock, two runs with the same seed and plan produce identical
fault logs, migration counts, and fairness rows -- asserted by
``tests/faults/test_chaos.py``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Union

from repro.checkpoint.registry import SimHandle
from repro.checkpoint.replay import ReplayRecorder
from repro.distributed.cluster import Cluster
from repro.experiments.common import ExperimentResult
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultPlanBuilder
from repro.kernel.syscalls import Compute

__all__ = ["default_plan", "build_sim", "run", "run_variant", "main"]

#: Reconvergence criterion: windowed max relative error below this.
RECONVERGENCE_THRESHOLD = 0.15

#: Nominal fundings for the unpinned spinners (base units).  Kept
#: fine-grained relative to one node's share of the total (~333) so
#: every node hosts several threads: a node whose sole thread is always
#: RUNNING could neither donate nor swap, pinning the rebalancer in a
#: skewed state.
FUNDINGS = (150.0, 150.0, 150.0, 100.0, 100.0, 100.0, 100.0, 80.0, 70.0)


def _spinner(chunk_ms: float = 20.0):
    def body(ctx):
        while True:
            yield Compute(chunk_ms)

    return body


def default_plan(seed: int) -> FaultPlan:
    """Three crash/restart pairs spread over a 240 s run.

    The first and last crash hit ``node1`` -- home of the pinned victim
    thread on the first hit -- so the schedule exercises both the
    kill-and-reclaim path and the evacuate-and-rebalance path.
    """
    return (
        FaultPlanBuilder(seed)
        .crash_node("node1", at=30_000.0, restart_after=30_000.0)
        .crash_node("node2", at=100_000.0, restart_after=30_000.0)
        .crash_node("node1", at=170_000.0, restart_after=30_000.0)
        .build()
    )


def _window_error(cluster: Cluster, baseline: Dict[int, float],
                  elapsed_ms: float) -> float:
    """Max relative error of CPU received *since the window opened*."""
    entitlements = cluster._entitlements(elapsed_ms)
    worst = 0.0
    for node in cluster.nodes:
        for thread in node.threads:
            if not thread.alive:
                continue
            entitled = entitlements.get(thread.tid, 0.0)
            if entitled <= 0:
                continue
            observed = thread.cpu_time - baseline.get(thread.tid, 0.0)
            worst = max(worst, abs(observed - entitled) / entitled)
    return worst


def _snapshot(cluster: Cluster) -> Dict[int, float]:
    return {
        thread.tid: thread.cpu_time
        for node in cluster.nodes
        for thread in node.threads
        if thread.alive
    }


def build_sim(seed: int = 2718, nodes: int = 3,
              plan: Optional[Union[FaultPlan, Dict[str, Any]]] = None
              ) -> SimHandle:
    """The chaos system as a checkpointable recipe (``chaos-fairness``).

    Builds the cluster, spawns the funded spinners and the pinned
    victim, and arms the fault injector -- everything :func:`run_variant`
    needs before driving time forward.  ``plan`` accepts either a live
    :class:`FaultPlan` or its :meth:`FaultPlan.to_dict` form, so
    checkpoints restore custom schedules faithfully.
    """
    if isinstance(plan, dict):
        plan = FaultPlan.from_dict(plan)
    elif plan is None:
        plan = default_plan(seed)
    recorder = ReplayRecorder()
    cluster = Cluster(nodes=nodes, quantum=20.0, rebalance_period=1000.0,
                      seed=seed, recorder=recorder)
    for index, funding in enumerate(FUNDINGS):
        cluster.spawn(_spinner(), f"w{index}", tickets=funding)
    # A pinned thread on the first crash target: it cannot be evacuated,
    # so the crash must kill it and reclaim its tickets.
    cluster.spawn(_spinner(), "victim", tickets=100.0,
                  node=cluster.nodes[1 % nodes], pinned=True)
    injector = FaultInjector(plan, cluster=cluster).arm()
    return SimHandle(
        recipe="chaos-fairness",
        args={"seed": seed, "nodes": nodes, "plan": plan.to_dict()},
        engine=cluster.engine,
        components={"cluster": cluster, "injector": injector,
                    "recorder": recorder},
        advance=cluster.run_until,
    )


def run_variant(seed: int = 2718, nodes: int = 3,
                duration_ms: float = 240_000.0,
                sample_period_ms: float = 5_000.0,
                plan: Optional[FaultPlan] = None,
                instrument: Optional[Callable[[Any], Any]] = None
                ) -> Dict[str, Any]:
    """One chaos run; returns raw data for tests and :func:`run`.

    The result dict holds the live ``cluster`` and ``injector`` plus:
    ``rows`` (windowed error samples), ``windows`` (one record per
    fairness window with its reconvergence time), ``fault_log`` (the
    injector's stable application log), and the final window error.
    ``instrument`` is called with the built handle before time moves
    (the telemetry attach point: observation only, zero events run).
    """
    handle = build_sim(seed=seed, nodes=nodes, plan=plan)
    if instrument is not None:
        instrument(handle)
    cluster: Cluster = handle.components["cluster"]
    injector: FaultInjector = handle.components["injector"]
    plan = injector.plan

    transition_kinds = (FaultKind.NODE_CRASH, FaultKind.NODE_RESTART)
    transitions = {
        event.time: event
        for event in plan
        if event.kind in transition_kinds and event.time < duration_ms
    }
    samples = [
        k * sample_period_ms
        for k in range(1, int(duration_ms / sample_period_ms) + 1)
    ]
    checkpoints = sorted(set(samples) | set(transitions) | {duration_ms})

    rows: List[Dict[str, Any]] = []
    windows: List[Dict[str, Any]] = [
        {"start_ms": 0.0, "cause": "start", "reconverged_at_ms": None}
    ]
    baseline = _snapshot(cluster)
    for checkpoint in checkpoints:
        cluster.run_until(checkpoint)
        if checkpoint in transitions:
            event = transitions[checkpoint]
            windows.append({
                "start_ms": checkpoint,
                "cause": f"{event.kind} {event.target}",
                "reconverged_at_ms": None,
            })
            baseline = _snapshot(cluster)
            continue
        window = windows[-1]
        elapsed = checkpoint - window["start_ms"]
        if elapsed <= 0:
            continue
        error = _window_error(cluster, baseline, elapsed)
        rows.append({
            "t_ms": checkpoint,
            "window_start_ms": window["start_ms"],
            "live_nodes": len(cluster.alive_nodes),
            "max_rel_err": error,
        })
        if (window["reconverged_at_ms"] is None
                and error < RECONVERGENCE_THRESHOLD):
            window["reconverged_at_ms"] = checkpoint
    return {
        "handle": handle,
        "cluster": cluster,
        "injector": injector,
        "plan": plan,
        "rows": rows,
        "windows": windows,
        "fault_log": injector.applied_log(),
        "final_error": rows[-1]["max_rel_err"] if rows else 0.0,
    }


def run(seed: int = 2718, nodes: int = 3, duration_ms: float = 240_000.0,
        sample_period_ms: float = 5_000.0,
        plan: Optional[FaultPlan] = None) -> ExperimentResult:
    """Fairness reconvergence under a seeded crash/restart schedule."""
    data = run_variant(seed=seed, nodes=nodes, duration_ms=duration_ms,
                       sample_period_ms=sample_period_ms, plan=plan)
    cluster: Cluster = data["cluster"]
    result = ExperimentResult(
        name="Chaos: fairness reconvergence under node crashes",
        params={
            "nodes": nodes,
            "duration_ms": duration_ms,
            "sample_period_ms": sample_period_ms,
            "threshold": RECONVERGENCE_THRESHOLD,
            "plan": data["plan"].signature().replace("\n", "; "),
        },
    )
    result.rows = list(data["rows"])
    for line in data["fault_log"]:
        result.summary.setdefault("faults applied", []).append(line)
    for window in data["windows"]:
        if window["cause"] == "start":
            # The warmup window measures cold-start settling, not fault
            # recovery; reconvergence is only claimed for fault windows.
            continue
        label = f"window @{window['start_ms']:g}ms ({window['cause']})"
        reconverged = window["reconverged_at_ms"]
        if reconverged is None:
            result.summary[label] = "did not reconverge"
        else:
            result.summary[label] = (
                f"reconverged after "
                f"{reconverged - window['start_ms']:g} ms"
            )
    result.summary["migrations"] = cluster.migrations
    result.summary["evacuations"] = cluster.evacuations
    result.summary["threads killed"] = cluster.threads_killed
    result.summary["node crashes/restarts"] = (
        f"{cluster.node_crashes}/{cluster.node_restarts}"
    )
    result.summary["final window max relative error"] = (
        f"{data['final_error']:.3f}"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    run().print_report()


if __name__ == "__main__":  # pragma: no cover
    main()
