"""Figure 1: the list-based lottery, step by step.

The paper's Figure 1 shows five clients holding 10, 2, 5, 1, and 2 of
20 total tickets; the fifteenth ticket is randomly selected, and the
list walk accumulates 10 -> 12 -> 17, stopping at the third client
(sum 17 > 15), which wins.

This module replays that exact walk deterministically (the winning
number is an input, as in the figure) and then verifies the statistics:
over many draws, each client's win frequency matches its ticket share.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.lottery import ListLottery
from repro.core.prng import ParkMillerPRNG
from repro.errors import ExperimentError
from repro.experiments.common import ExperimentResult

__all__ = ["walk", "run", "main"]

#: Figure 1's client ticket holdings, in list order.
FIGURE1_TICKETS = (10.0, 2.0, 5.0, 1.0, 2.0)

#: Figure 1's randomly selected winning number (0-based value 15).
FIGURE1_WINNING = 15.0


def walk(tickets: Sequence[float] = FIGURE1_TICKETS,
         winning: float = FIGURE1_WINNING) -> Tuple[int, List[Dict]]:
    """Replay the Figure 1 list walk for a given winning value.

    Returns the 0-based index of the winner and the per-client trace
    rows (running sum and the comparison the figure annotates).
    """
    total = sum(tickets)
    if not 0 <= winning < total:
        raise ExperimentError(
            f"winning value {winning} outside [0, {total})"
        )
    rows = []
    accumulated = 0.0
    winner = -1
    for index, amount in enumerate(tickets):
        accumulated += amount
        exceeded = accumulated > winning
        rows.append(
            {
                "client": index + 1,
                "tickets": amount,
                "running_sum": accumulated,
                "sum > winning?": "yes" if exceeded else "no",
            }
        )
        if exceeded and winner < 0:
            winner = index
    return winner, rows


def run(draws: int = 100_000, seed: int = 15) -> ExperimentResult:
    """Replay Figure 1 exactly, then check win frequencies."""
    result = ExperimentResult(
        name="Figure 1: list-based lottery walkthrough",
        params={"tickets": list(FIGURE1_TICKETS),
                "winning_value": FIGURE1_WINNING, "draws": draws},
    )
    winner, rows = walk()
    result.rows.extend(rows)
    result.summary["winner"] = (
        f"client {winner + 1} (the paper's third client wins on ticket 15)"
    )
    if winner != 2:
        raise ExperimentError("Figure 1 walkthrough diverged from the paper")

    values = dict(enumerate(FIGURE1_TICKETS))
    lottery = ListLottery(value_of=values.__getitem__, move_to_front=False)
    for index in values:
        lottery.add(index)
    prng = ParkMillerPRNG(seed)
    wins = {index: 0 for index in values}
    for _ in range(draws):
        wins[lottery.draw(prng)] += 1
    total = sum(FIGURE1_TICKETS)
    for index, amount in values.items():
        result.summary[f"client {index + 1} win rate"] = (
            f"{wins[index] / draws:.4f} (expected {amount / total:.4f})"
        )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    run().print_report()


if __name__ == "__main__":  # pragma: no cover
    main()
