"""Extension: distributed lottery scheduling (paper section 4.2's hint).

"Such a tree-based implementation can also be used as the basis of a
distributed lottery scheduler."  This experiment measures how well a
cluster of independently lottery-scheduled nodes honours *global*
ticket proportions, with and without the funding-balancing migration
that stands in for the distributed tree:

* threads with heterogeneous funding are spawned with a deliberately
  **skewed placement** (all the heavy hitters on one node);
* without migration, a node's local lottery can only divide that node's
  single CPU, so global shares are badly off;
* with the rebalancer, node ticket totals equalize and every thread's
  CPU converges to its global entitlement.
"""

from __future__ import annotations


from repro.distributed.cluster import Cluster
from repro.experiments.common import ExperimentResult
from repro.kernel.syscalls import Compute

__all__ = ["run", "run_variant", "main"]


def _spinner(chunk_ms: float = 50.0):
    def body(ctx):
        while True:
            yield Compute(chunk_ms)

    return body


def run_variant(rebalance: bool, duration_ms: float = 200_000.0,
                nodes: int = 3, seed: int = 909) -> Cluster:
    """One cluster run with worst-case initial placement."""
    cluster = Cluster(
        nodes=nodes,
        rebalance_period=1000.0 if rebalance else None,
        seed=seed,
    )
    # Skewed placement: every heavy thread starts on node0.
    fundings = [800.0, 400.0, 200.0, 100.0, 100.0, 100.0]
    node0 = cluster.nodes[0]
    for index, funding in enumerate(fundings):
        cluster.spawn(_spinner(), f"t{index}", tickets=funding, node=node0)
    cluster.run_until(duration_ms)
    return cluster


def run(duration_ms: float = 200_000.0, nodes: int = 3,
        seed: int = 909) -> ExperimentResult:
    """Global fairness with vs without funding-balancing migration."""
    result = ExperimentResult(
        name="Extension: distributed lottery scheduling",
        params={
            "nodes": nodes,
            "duration_ms": duration_ms,
            "initial_placement": "all threads on node0 (worst case)",
        },
    )
    for rebalance in (False, True):
        cluster = run_variant(rebalance, duration_ms=duration_ms,
                              nodes=nodes, seed=seed)
        label = "rebalancing" if rebalance else "static placement"
        for row in cluster.fairness_report(duration_ms):
            row = dict(row)
            row["variant"] = label
            result.rows.append(row)
        result.summary[f"max relative error ({label})"] = (
            f"{cluster.max_relative_error(duration_ms):.3f}"
        )
        result.summary[f"migrations ({label})"] = cluster.migrations
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    run().print_report()


if __name__ == "__main__":  # pragma: no cover
    main()
