"""Experiment drivers: one module per paper figure/table plus ablations.

========================  =====================================================
Module                    Reproduces
========================  =====================================================
fig1_walkthrough          Figure 1 -- the list-lottery walk, step by step
fig4_rate_accuracy        Figure 4 -- observed vs allocated rate ratios
fig5_fairness_over_time   Figure 5 -- 2:1 fairness over 8 s windows
fig6_montecarlo           Figure 6 -- error-driven ticket inflation
fig7_query_rates          Figure 7 -- 8:3:1 client-server RPC transfers
fig8_video_rates          Figure 8 -- MPEG viewer reallocation 3:2:1 -> 3:1:2
fig9_load_insulation      Figure 9 -- currency load insulation
fig11_mutex               Figures 10/11 -- lottery-scheduled mutex
overhead                  Section 5.6 -- scheduling overhead comparison
inverse_memory            Section 6.2 -- inverse-lottery page replacement
paging_runtime            Section 6.2 end-to-end -- paging policy vs runtime
quantum_sweep             Section 2.2 -- quantum size vs sub-second fairness
multiresource             Section 6.3 -- manager threads over CPU+disk budgets
cluster_fairness          Section 4.2 hint -- distributed lottery scheduling
chaos_fairness            Extension -- fairness reconvergence under faults
shard_observability       Extension -- one observability truth per backend
diverse_resources         Section 6 -- disk and virtual-circuit lotteries
responsiveness            Sections 1/3.4 -- interactive latency under load
service_classes           Section 5.4 note -- job-stream service classes
ablations                 A2 CV law, A3 lottery-vs-stride, A4 compensation
========================  =====================================================
"""

from repro.experiments import (  # noqa: F401 (re-exported driver modules)
    ablations,
    chaos_fairness,
    cluster_fairness,
    diverse_resources,
    fig1_walkthrough,
    fig4_rate_accuracy,
    fig5_fairness_over_time,
    fig6_montecarlo,
    fig7_query_rates,
    fig8_video_rates,
    fig9_load_insulation,
    fig11_mutex,
    inverse_memory,
    multiresource,
    overhead,
    paging_runtime,
    quantum_sweep,
    responsiveness,
    service_classes,
    shard_observability,
)
from repro.experiments.common import ExperimentResult, Machine, build_machine

__all__ = [
    "ExperimentResult",
    "Machine",
    "ablations",
    "chaos_fairness",
    "cluster_fairness",
    "build_machine",
    "diverse_resources",
    "fig1_walkthrough",
    "fig4_rate_accuracy",
    "fig5_fairness_over_time",
    "fig6_montecarlo",
    "fig7_query_rates",
    "fig8_video_rates",
    "fig9_load_insulation",
    "fig11_mutex",
    "inverse_memory",
    "multiresource",
    "overhead",
    "paging_runtime",
    "quantum_sweep",
    "responsiveness",
    "service_classes",
    "shard_observability",
]
