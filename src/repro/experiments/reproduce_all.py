"""One-shot reproduction driver: every figure, one verdict per line.

``python -m repro.experiments.reproduce_all`` runs the full evaluation
(the same scales as the benchmarks; several minutes);
``python -m repro.experiments.reproduce_all --quick`` runs reduced
scales (tens of seconds) for a fast end-to-end sanity check.

Each entry runs one experiment and checks the paper's headline shape,
printing PASS/FAIL plus the measured value -- a compact, self-auditing
version of EXPERIMENTS.md.

``--checkpoint-every T`` appends a checkpoint/replay verification: the
chaos system is run with a crash-and-restore at every T virtual ms
(each checkpoint is saved, the live system is *discarded*, and the run
continues from the restored copy), and the final dispatch stream must
be bit-identical to an uninterrupted reference run -- zero divergence
(see ``docs/CHECKPOINT.md``).
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
from typing import Callable, List, Optional, Tuple

from repro.experiments import (
    ablations,
    cluster_fairness,
    diverse_resources,
    fig1_walkthrough,
    fig4_rate_accuracy,
    fig5_fairness_over_time,
    fig6_montecarlo,
    fig7_query_rates,
    fig8_video_rates,
    fig9_load_insulation,
    fig11_mutex,
    inverse_memory,
    multiresource,
    paging_runtime,
    quantum_sweep,
    responsiveness,
    service_classes,
    serving_tail,
    shard_observability,
)

__all__ = ["reproduce", "checkpoint_sweep", "telemetry_trace", "main"]

#: (label, runner) -> (verdict bool, human-readable measurement).
Check = Tuple[str, Callable[[bool], Tuple[bool, str]]]


def _fig1(quick: bool):
    result = fig1_walkthrough.run(draws=20_000 if quick else 100_000)
    ok = "client 3" in result.summary["winner"]
    return ok, result.summary["winner"]


def _fig4(quick: bool):
    ratios = [2, 5, 10] if quick else list(range(1, 11))
    result = fig4_rate_accuracy.run(
        ratios=ratios, runs=2 if quick else 3,
        duration_ms=30_000 if quick else 60_000,
    )
    worst = float(result.summary["worst relative error"])
    return worst < 0.45, f"worst relative error {worst:.2f}"


def _fig5(quick: bool):
    result = fig5_fairness_over_time.run(
        duration_ms=60_000 if quick else 200_000
    )
    ratio = float(result.summary["overall ratio"].split(":")[0])
    return abs(ratio - 2.0) < 0.4, f"overall ratio {ratio:.2f}:1 (want 2:1)"


def _fig6(quick: bool):
    result = fig6_montecarlo.run(
        duration_ms=240_000 if quick else 1_000_000,
        stagger_ms=40_000 if quick else 120_000,
    )
    spread = float(result.summary["final spread"].split("%")[0])
    return spread < 50.0, f"final trial spread {spread:.1f}% (converging)"


def _fig7(quick: bool):
    result = fig7_query_rates.run(
        duration_ms=300_000 if quick else 800_000,
        corpus_kb=1000 if quick else 4600,
    )
    ratio = float(result.summary["B:C throughput ratio"].split(":")[0])
    return abs(ratio - 3.0) < 1.0, f"B:C throughput {ratio:.2f}:1 (want 3:1)"


def _fig8(quick: bool):
    result = fig8_video_rates.run(
        duration_ms=120_000 if quick else 300_000
    )
    before = result.summary["frame-rate ratio before"].split("(")[0]
    values = [float(v) for v in before.split(":")]
    ok = values[0] > values[1] > values[2]
    return ok, f"before-change ratio {before.strip()} (want 3:2:1 order)"


def _fig9(quick: bool):
    result = fig9_load_insulation.run(
        duration_ms=160_000 if quick else 300_000
    )
    aggregate = float(
        result.summary["aggregate A:B iterations"].split(":")[0]
    )
    return abs(aggregate - 1.0) < 0.15, f"aggregate A:B {aggregate:.2f}:1"


def _fig11(quick: bool):
    result = fig11_mutex.run(duration_ms=60_000 if quick else 120_000)
    ratio = float(result.summary["acquisition ratio A:B"].split(":")[0])
    return 1.3 < ratio < 2.7, f"acquisition ratio {ratio:.2f}:1 (want ~2:1)"


def _inverse(quick: bool):
    result = inverse_memory.run(references=15_000 if quick else 60_000)
    shares = {row["client"]: row["observed_share"] for row in result.rows}
    ok = shares["A"] < shares["B"] < shares["C"]
    return ok, (f"eviction shares A={shares['A']:.2f} B={shares['B']:.2f}"
                f" C={shares['C']:.2f} (want increasing)")


def _diverse(quick: bool):
    result = diverse_resources.run()
    disk = float(result.summary["disk lottery A:B"].split(":")[0])
    return abs(disk - 3.0) < 0.6, f"disk lottery A:B {disk:.2f}:1 (want 3:1)"


def _quantum(quick: bool):
    result = quantum_sweep.run(
        quanta=(10.0, 100.0), duration_ms=60_000 if quick else 120_000
    )
    rows = {row["quantum_ms"]: row for row in result.rows}
    ok = (rows[10.0]["window_share_cv"]
          < rows[100.0]["window_share_cv"] / 2)
    return ok, (f"1s-window CV {rows[10.0]['window_share_cv']:.3f} @10ms"
                f" vs {rows[100.0]['window_share_cv']:.3f} @100ms")


def _compensation(quick: bool):
    result = ablations.run_compensation(
        duration_ms=120_000 if quick else 300_000
    )
    rows = {row["policy"]: row["cpu_ratio"] for row in result.rows}
    ok = (abs(rows["lottery"] - 1.0) < 0.25
          and abs(rows["lottery-no-compensation"] - 5.0) < 1.5)
    return ok, (f"ratio {rows['lottery']:.2f}:1 with compensation,"
                f" {rows['lottery-no-compensation']:.2f}:1 without")


def _stride(quick: bool):
    result = ablations.run_lottery_vs_stride(
        checkpoints_ms=(10_000, 50_000)
    )
    stride_max = max(r["max_error_quanta"] for r in result.rows
                     if r["policy"] == "stride")
    return stride_max <= 1.5, f"stride max error {stride_max:.1f} quanta"


def _multiresource(quick: bool):
    result = multiresource.run(duration_ms=200_000 if quick else 400_000)
    items = {row["policy"]: row["items"] for row in result.rows}
    ok = items["manager"] >= 0.9 * max(items.values())
    return ok, (f"manager {items['manager']} items"
                f" vs best static {max(items.values())}")


def _cluster(quick: bool):
    result = cluster_fairness.run(
        duration_ms=100_000 if quick else 200_000
    )
    static = float(result.summary["max relative error (static placement)"])
    balanced = float(result.summary["max relative error (rebalancing)"])
    return balanced < static / 2, (
        f"max error {static:.2f} static -> {balanced:.2f} rebalanced"
    )


def _responsiveness(quick: bool):
    result = responsiveness.run(duration_ms=60_000 if quick else 120_000)
    rows = {row["policy"]: row["mean_latency_ms"] for row in result.rows}
    ok = rows["lottery"] < rows["lottery-no-compensation"] / 3
    return ok, (f"latency {rows['lottery']:.0f}ms with compensation,"
                f" {rows['lottery-no-compensation']:.0f}ms without")


def _paging(quick: bool):
    result = paging_runtime.run(duration_ms=60_000 if quick else 120_000)
    rows = {row["policy"]: row for row in result.rows}
    ok = (rows["inverse-lottery"]["worker_steps"]
          > 1.15 * rows["lru"]["worker_steps"])
    return ok, (f"worker steps {rows['inverse-lottery']['worker_steps']:.0f}"
                f" inverse vs {rows['lru']['worker_steps']:.0f} LRU")


def _service(quick: bool):
    result = service_classes.run(duration_ms=300_000 if quick else 600_000)
    lottery = next(r for r in result.rows if r["policy"] == "lottery")
    ok = (lottery["gold_slowdown"] < lottery["silver_slowdown"]
          < lottery["bronze_slowdown"])
    return ok, (f"slowdowns {lottery['gold_slowdown']:.1f}/"
                f"{lottery['silver_slowdown']:.1f}/"
                f"{lottery['bronze_slowdown']:.1f} (gold/silver/bronze)")


def _serving(quick: bool):
    result = serving_tail.run(quick=True, requests=200 if quick else 600)
    ok = result.summary["verdict"] == "PASS"
    return ok, (f"lottery ordered "
                f"{result.summary['lottery wake-p99 share-ordered at 1.5x']},"
                f" timesharing ordered "
                f"{result.summary['timesharing wake-p99 share-ordered at 1.5x']},"
                f" slo recovery epoch "
                f"{result.summary['slo bronze recovery epoch']}")


def _shard_obs(quick: bool):
    result = shard_observability.run(until=2000.0)
    agree = (result.summary["canonical reports agree"] == "yes"
             and result.summary["stitched traces agree"] == "yes"
             and result.summary["slo verdict"] == "PASS everywhere")
    shas = {row["canonical"] for row in result.rows}
    return agree, (f"canonical report {shas.pop() if len(shas) == 1 else shas}"
                   f" across {len(result.rows)} backends")


CHECKS: List[Check] = [
    ("Figure 1  list-lottery walkthrough", _fig1),
    ("Figure 4  rate accuracy", _fig4),
    ("Figure 5  fairness over time", _fig5),
    ("Figure 6  Monte-Carlo inflation", _fig6),
    ("Figure 7  client-server 8:3:1", _fig7),
    ("Figure 8  video rates", _fig8),
    ("Figure 9  load insulation", _fig9),
    ("Figure 11 lottery mutex", _fig11),
    ("Sec. 2.2  quantum vs fairness", _quantum),
    ("Sec. 4.5  compensation tickets", _compensation),
    ("Sec. 6.2  inverse-lottery memory", _inverse),
    ("Sec. 6.2  paging end-to-end", _paging),
    ("Sec. 6    disk & link lotteries", _diverse),
    ("Ext  stride determinism", _stride),
    ("Ext  multi-resource manager", _multiresource),
    ("Ext  distributed lottery", _cluster),
    ("Ext  responsiveness", _responsiveness),
    ("Ext  service classes", _service),
    ("Ext  serving tail latency", _serving),
    ("Ext  shard observability", _shard_obs),
]


def checkpoint_sweep(every_ms: float, duration_ms: float = 60_000.0,
                     seed: int = 2718,
                     directory: Optional[str] = None) -> Tuple[bool, str]:
    """Crash at every checkpoint; demand a bit-identical final stream.

    Runs the ``chaos-fairness`` recipe twice: once uninterrupted (the
    reference), and once saving a checkpoint every ``every_ms`` virtual
    ms, discarding the live system, and continuing from the restored
    copy -- the worst-case crash/restore schedule.  Success means the
    dispatch streams agree on every (time, thread, draw) triple.
    """
    from repro.checkpoint import (build_recipe, diff_streams,
                                  format_divergence, restore, save)

    if every_ms <= 0:
        raise ValueError(f"--checkpoint-every must be positive: {every_ms}")
    reference = build_recipe("chaos-fairness", {"seed": seed})
    reference.advance(duration_ms)
    expected = reference.components["recorder"].entries

    def sweep(workdir: str) -> Tuple[bool, str]:
        live = build_recipe("chaos-fairness", {"seed": seed})
        count = 0
        checkpoint_at = every_ms
        while checkpoint_at < duration_ms:
            live.advance(checkpoint_at)
            path = os.path.join(workdir, f"chaos-{checkpoint_at:g}ms.ckpt")
            save(live, path)
            # Crash: drop the live system, resume from the file alone.
            live, _ = restore(path)
            count += 1
            checkpoint_at += every_ms
        live.advance(duration_ms)
        divergence = diff_streams(
            expected, live.components["recorder"].entries
        )
        if divergence is None:
            return True, (f"{count} crash/restore cycles, "
                          f"{len(expected)} dispatches, zero divergence")
        return False, format_divergence(divergence)

    if directory is not None:
        os.makedirs(directory, exist_ok=True)
        return sweep(directory)
    with tempfile.TemporaryDirectory() as workdir:
        return sweep(workdir)


def telemetry_trace(trace_out: str, duration_ms: float = 60_000.0,
                    seed: int = 2718) -> Tuple[bool, str]:
    """Trace a chaos run and export a schema-valid Chrome trace.

    Runs the ``chaos-fairness`` recipe with a
    :class:`repro.telemetry.Telemetry` hub attached, writes the Chrome
    trace-event JSON (plus ``.sha256`` sidecar) to ``trace_out``, and
    validates it against the trace-event schema.  Success means spans
    were captured and the export is Perfetto-loadable.
    """
    from repro.checkpoint import build_recipe
    from repro.telemetry import (Telemetry, export_chrome,
                                 validate_chrome_trace, write_checksummed)

    handle = build_recipe("chaos-fairness", {"seed": seed})
    hub = Telemetry()
    hub.instrument_handle(handle)
    handle.advance(duration_ms)
    hub.finalize(handle.now)
    text = export_chrome(hub.tracer)
    problems = validate_chrome_trace(text)
    digest = write_checksummed(trace_out, text)
    hub.close()
    if problems:
        return False, f"schema problems: {'; '.join(problems[:3])}"
    return True, (f"{len(hub.tracer)} spans -> {trace_out} "
                  f"sha256={digest[:12]}...")


def reproduce(quick: bool = True,
              checkpoint_every: Optional[float] = None,
              trace_out: Optional[str] = None) -> int:
    """Run every check; returns the number of failures."""
    failures = 0
    mode = "quick" if quick else "full"
    print(f"reproducing the OSDI '94 evaluation ({mode} mode)\n")
    checks: List[Check] = list(CHECKS)
    if checkpoint_every is not None:
        checks.append((
            f"Ext  checkpoint/replay every {checkpoint_every:g}ms",
            lambda q: checkpoint_sweep(
                checkpoint_every,
                duration_ms=60_000.0 if q else 240_000.0,
            ),
        ))
    if trace_out is not None:
        checks.append((
            "Ext  telemetry trace export",
            lambda q: telemetry_trace(
                trace_out, duration_ms=60_000.0 if q else 240_000.0,
            ),
        ))
    for label, check in checks:
        try:
            ok, detail = check(quick)
        except Exception as exc:  # pragma: no cover - surfacing only
            ok, detail = False, f"crashed: {exc!r}"
        verdict = "PASS" if ok else "FAIL"
        print(f"[{verdict}] {label:<36} {detail}")
        if not ok:
            failures += 1
    print(f"\n{len(checks) - failures}/{len(checks)} headline shapes"
          " reproduced")
    return failures


def main() -> None:  # pragma: no cover - CLI convenience
    parser = argparse.ArgumentParser(
        description="reproduce the paper's evaluation end to end"
    )
    parser.add_argument("--full", action="store_true",
                        help="paper-scale runs (several minutes)")
    parser.add_argument("--checkpoint-every", type=float, default=None,
                        metavar="T",
                        help="also verify crash/restore every T virtual ms "
                             "against an uninterrupted reference run")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="also trace a chaos run with repro.telemetry "
                             "and export a Chrome trace-event JSON there")
    args = parser.parse_args()
    sys.exit(1 if reproduce(quick=not args.full,
                            checkpoint_every=args.checkpoint_every,
                            trace_out=args.trace_out) else 0)


if __name__ == "__main__":  # pragma: no cover
    main()
