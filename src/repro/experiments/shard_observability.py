"""Observability-plane experiment: one truth across every backend.

The sharded runtime promises that moving a workload between execution
backends -- one core inline, N logical cores in-process, N worker
processes over pipes, or the supervised runtime restarting workers
mid-run -- changes *how* the simulation executes but not *what* it
observes.  This experiment exercises the cross-shard observability
plane end to end: the same :func:`~repro.shard.plan.mix_plan` workload
runs under each backend with observability enabled, and we compare the
canonical report checksum, the stitched Chrome-trace checksum, and the
SLO verdict across runs.

Expected outcome (the tentpole acceptance criterion):

* the canonical report sha256 and the stitched-trace sha256 are
  byte-identical across all backends, including the supervised run
  that kills a worker at every epoch barrier;
* only the *recovery annex* checksum differs on the faulted run -- the
  supervisor's restarts are real events and are reported, but they are
  kept out of the canonical section so fault recovery cannot silently
  perturb the scientific record;
* the deterministic SLO watchdogs (fairness drift, per-band p99
  latency, starvation) pass on the healthy workload under every
  backend, with the same breach list (empty) everywhere.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.common import ExperimentResult
from repro.shard.engine import ShardedEngine
from repro.shard.hostfaults import kill_every_epoch
from repro.shard.plan import mix_plan
from repro.shard.supervisor import SupervisorPolicy

__all__ = ["BACKENDS", "run", "run_backend", "main"]

#: (label, backend, shards, supervised-with-kill-every-epoch) combos.
BACKENDS: Sequence[Tuple[str, str, int, bool]] = (
    ("single", "single", 1, False),
    ("inline x2", "inline", 2, False),
    ("inline x4", "inline", 4, False),
    ("mp x2", "mp", 2, False),
    ("supervised+kill x2", "mp", 2, True),
)


def run_backend(backend: str, shards: int, faulted: bool = False,
                until: float = 2000.0, cores: int = 4,
                seed: int = 11) -> Dict[str, Any]:
    """One obs-enabled run; returns the checksums and the SLO verdict."""
    plan = mix_plan(seed=seed, cores=cores)
    host_faults = kill_every_epoch(shards) if faulted else None
    policy: Optional[SupervisorPolicy] = None
    with ShardedEngine(plan, shards=shards, backend=backend,
                       supervise=faulted, policy=policy,
                       host_faults=host_faults, obs=True) as engine:
        engine.advance(until)
        trace = json.loads(engine.stitched_trace())
        report = engine.obs_report()
        recovery = engine.recovery_summary()
    return {
        "canonical_sha": report["canonical_sha256"],
        "trace_sha": trace["metadata"]["sha256"],
        "recovery_sha": trace["metadata"]["recovery_sha256"],
        "slo_ok": report["canonical"]["slo"]["ok"],
        "breaches": len(report["canonical"]["slo"]["breaches"]),
        "restarts": len(recovery.get("restarts") or []),
    }


def run(until: float = 2000.0, cores: int = 4,
        seed: int = 11) -> ExperimentResult:
    """Run every backend combo and compare the observability outputs."""
    result = ExperimentResult(
        name="shard-observability",
        params={"plan": "mix", "cores": cores, "seed": seed,
                "until_ms": until},
    )
    outcomes: List[Dict[str, Any]] = []
    for label, backend, shards, faulted in BACKENDS:
        outcome = run_backend(backend, shards, faulted=faulted,
                              until=until, cores=cores, seed=seed)
        outcomes.append(outcome)
        result.rows.append({
            "backend": label,
            "canonical": outcome["canonical_sha"][:12],
            "trace": outcome["trace_sha"][:12],
            "recovery": outcome["recovery_sha"][:12],
            "slo": "PASS" if outcome["slo_ok"] else "FAIL",
            "breaches": outcome["breaches"],
            "restarts": outcome["restarts"],
        })

    canonical = {o["canonical_sha"] for o in outcomes}
    traces = {o["trace_sha"] for o in outcomes}
    healthy_recovery = {o["recovery_sha"]
                        for o in outcomes if o["restarts"] == 0}
    faulted_recovery = {o["recovery_sha"]
                        for o in outcomes if o["restarts"] > 0}
    result.summary["canonical reports agree"] = (
        "yes" if len(canonical) == 1 else f"NO ({len(canonical)} distinct)"
    )
    result.summary["stitched traces agree"] = (
        "yes" if len(traces) == 1 else f"NO ({len(traces)} distinct)"
    )
    result.summary["recovery annex differs only when faulted"] = (
        "yes" if faulted_recovery and not (faulted_recovery
                                           & healthy_recovery)
        else "NO"
    )
    result.summary["slo verdict"] = (
        "PASS everywhere" if all(o["slo_ok"] for o in outcomes)
        else "FAIL somewhere"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    run().print_report()


if __name__ == "__main__":  # pragma: no cover
    main()
