"""Tail latency under open-loop overload: lottery vs the baselines.

The ROADMAP's heavy-traffic scenario, measured.  A deterministic
open-loop arrival trace (identical for every policy) drives the
multi-tier serving arena at 0.7 / 1.0 / 1.5x capacity under lottery,
stride, round-robin, and timesharing; the verdict is per-class
p99/p99.9 wake->dispatch and end-to-end latency.  The claim under
test: at 1.5x overload, lottery keeps the classes' wake->dispatch p99
*ordered by ticket share* (gold < silver < bronze, with real spread),
while ticket-blind timesharing serves the classes indistinguishably --
the open-loop analogue of the paper's responsiveness claim (a client
with p% of the tickets wins the next draw with probability p).

Three sections:

* **policy x load sweep** -- the head-to-head table;
* **SLO inflation** -- lottery at 1.5x with the feedback controller
  enabled and bronze's target tightened so it breaches: the controller
  inflates bronze's currency backing until its windowed p99 recovers
  (section 3.2's ticket inflation, closed-loop);
* **sharded equivalence** -- the same arena partitioned per core via
  ``repro.serving.shardplan`` and executed on every ShardedEngine
  backend; the merged-stream and state checksums must agree with the
  single-loop oracle (``repro.shard verify`` semantics inline).

The rendered report is byte-stable: two same-seed runs must produce
identical bytes (CI ``cmp``s them), and the sharded section embeds the
cross-backend checksums, so backend divergence is a report diff.
"""

from __future__ import annotations

import argparse
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.common import (ExperimentResult, build_machine,
                                      format_table)
from repro.serving.arena import ArenaConfig, ServingArena, build_arena
from repro.serving.shardplan import serving_plan
from repro.serving.tiers import DEFAULT_CLASSES

__all__ = ["POLICIES", "LOADS", "run_arena", "run", "report_text", "main"]

#: Head-to-head policies: the paper's mechanism vs the deterministic
#: proportional-share alternative vs the two ticket-blind baselines.
POLICIES: Tuple[str, ...] = ("lottery", "stride", "round-robin",
                             "timesharing")

#: Offered load as a multiple of arena capacity.
LOADS: Tuple[float, ...] = (0.7, 1.0, 1.5)

#: Class order for reading tables: descending ticket share.
_CLASS_ORDER = ("gold", "silver", "bronze")

#: Policy quantum for the sweep: short enough that wake->dispatch
#: differences are scheduling policy, not quantum granularity.
_QUANTUM_MS = 20.0


def _arena_config(seed: int, load: float, requests: int,
                  slo: bool = False) -> ArenaConfig:
    classes = DEFAULT_CLASSES
    if slo:
        # Tighten bronze so it breaches at overload and the controller
        # has something to do.
        classes = tuple(
            replace(spec, target_p99_ms=40.0)
            if spec.name == "bronze" else spec
            for spec in classes)
    # min_samples=10: admission sheds most bronze load at overload, so
    # control windows see few bronze dispatches; the default threshold
    # would leave the controller idle most epochs.
    return ArenaConfig(seed=seed, load_factor=load,
                       requests_per_class=requests, classes=classes,
                       slo=slo, slo_min_samples=10)


def run_arena(policy: str, load: float, requests: int,
              seed: int = 2026, slo: bool = False) -> ServingArena:
    """One (policy, load) cell: build, drive to the horizon, return."""
    machine = build_machine(seed=seed, quantum=_QUANTUM_MS, policy=policy)
    arena = build_arena(machine.kernel,
                        _arena_config(seed, load, requests, slo=slo))
    arena.run()
    return arena


def _ordered_with_spread(by_class: Dict[str, float],
                         spread: float = 2.0) -> bool:
    """Share-ordered tails: gold <= silver <= bronze with real spread."""
    gold, silver, bronze = (by_class[name] for name in _CLASS_ORDER)
    return gold <= silver <= bronze and bronze >= spread * max(gold, 1.0)


def _shard_section(seed: int, quick: bool) -> List[Dict[str, Any]]:
    """Run the partitioned arena on every backend; report checksums."""
    from repro.checkpoint.statetree import tree_checksum
    from repro.shard.engine import ShardedEngine

    requests = 120 if quick else 300
    horizon = 4000.0 if quick else 8000.0
    combos = [("single", 1), ("inline", 2)]
    if not quick:
        combos.append(("mp", 2))
    rows: List[Dict[str, Any]] = []
    for backend, shards in combos:
        plan = serving_plan(seed=seed, cores=2,
                            requests_per_class=requests, slo=True)
        with ShardedEngine(plan, shards=shards, backend=backend) as engine:
            engine.advance(horizon)
            rows.append({
                "backend": backend,
                "shards": shards,
                "events": len(engine.merged_stream()),
                "stream_sha": tree_checksum(engine.merged_stream())[:16],
                "state_sha": tree_checksum(engine.snapshot_state())[:16],
            })
    return rows


def run(quick: bool = True, seed: int = 2026,
        requests: Optional[int] = None) -> ExperimentResult:
    """The full experiment; ``quick`` sizes it for a PR-gate smoke."""
    if requests is None:
        requests = 200 if quick else 2_000
    rows: List[Dict[str, Any]] = []
    wake_p99: Dict[str, Dict[str, float]] = {}
    for policy in POLICIES:
        for load in LOADS:
            arena = run_arena(policy, load, requests, seed=seed)
            stats = arena.stats
            if load == LOADS[-1]:
                wake_p99[policy] = {name: stats.wake[name].percentile(99.0)
                                    for name in _CLASS_ORDER}
            for name in _CLASS_ORDER:
                row = stats.row(name)
                rows.append({"policy": policy, "load": load, **row})

    # SLO inflation demo: lottery at overload, bronze target tightened.
    slo_arena = run_arena("lottery", LOADS[-1], max(requests, 600),
                          seed=seed, slo=True)
    controller = slo_arena.controller
    recovery = controller.recovery_epoch("bronze")
    inflations = sum(1 for entry in controller.history
                     if entry["class"] == "bronze"
                     and entry["action"] == "inflate")
    bronze_final = slo_arena.levers["bronze"].amount

    shard_rows = _shard_section(seed, quick)
    shard_agreement = len({(row["stream_sha"], row["state_sha"])
                           for row in shard_rows}) == 1

    lottery_ordered = _ordered_with_spread(wake_p99["lottery"])
    timesharing_ordered = _ordered_with_spread(wake_p99["timesharing"])
    summary = {
        "lottery wake-p99 share-ordered at 1.5x":
            "yes" if lottery_ordered else "NO",
        "timesharing wake-p99 share-ordered at 1.5x":
            "yes" if timesharing_ordered else "no",
        "slo bronze inflations": inflations,
        "slo bronze recovery epoch":
            "never" if recovery is None else recovery,
        "slo bronze final lever": round(bronze_final, 3),
        "sharded backends agree":
            "yes" if shard_agreement else "NO",
        "verdict": ("PASS" if lottery_ordered
                    and not timesharing_ordered
                    and recovery is not None
                    and shard_agreement else "FAIL"),
    }
    return ExperimentResult(
        name="serving_tail",
        params={"seed": seed, "quick": quick,
                "requests_per_class": requests,
                "loads": "/".join(str(load) for load in LOADS),
                "policies": ",".join(POLICIES)},
        rows=rows,
        summary={**summary, "shard_rows": shard_rows},
    )


def report_text(result: ExperimentResult) -> str:
    """Byte-stable textual report (written with a .sha256 sidecar)."""
    lines = [f"== {result.name} =="]
    lines.append("params: " + ", ".join(
        f"{key}={value}" for key, value in result.params.items()))
    lines.append("")
    lines.append(format_table(result.rows))
    lines.append("")
    lines.append("-- sharded equivalence --")
    lines.append(format_table(result.summary["shard_rows"]))
    lines.append("")
    for key, value in result.summary.items():
        if key == "shard_rows":
            continue
        lines.append(f"{key}: {value}")
    return "\n".join(lines) + "\n"


def main(argv: Optional[Sequence[str]] = None) -> None:
    parser = argparse.ArgumentParser(
        description="Tail latency under open-loop overload.")
    parser.add_argument("--quick", action="store_true",
                        help="PR-gate smoke sizing")
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per class (overrides sizing)")
    parser.add_argument("--out", default=None,
                        help="write the report (plus .sha256) here")
    args = parser.parse_args(argv)
    result = run(quick=args.quick, seed=args.seed, requests=args.requests)
    text = report_text(result)
    print(text, end="")
    if args.out:
        from repro.telemetry import write_checksummed

        write_checksummed(args.out, text)


if __name__ == "__main__":  # pragma: no cover
    main()
