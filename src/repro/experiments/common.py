"""Shared experiment harness: machine builder, results, table printing.

Every experiment module exposes ``run(...) -> ExperimentResult`` plus a
``main()`` that prints the paper-style rows; this module holds the
common plumbing so each experiment stays focused on its scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from repro.core.prng import ParkMillerPRNG
from repro.core.tickets import Ledger
from repro.errors import ExperimentError
from repro.kernel.kernel import Kernel
from repro.schedulers.base import SchedulingPolicy
from repro.schedulers.fair_share import FairSharePolicy
from repro.schedulers.lottery_policy import LotteryPolicy
from repro.schedulers.priority import FixedPriorityPolicy
from repro.schedulers.round_robin import RoundRobinPolicy
from repro.schedulers.stride import StridePolicy
from repro.schedulers.timesharing import TimesharingPolicy
from repro.sim.engine import Engine

__all__ = ["ExperimentResult", "Machine", "build_machine", "format_table"]


@dataclass
class ExperimentResult:
    """Outcome of one experiment run.

    ``rows`` hold the table/series the paper's figure reports;
    ``summary`` holds the headline numbers (ratios, means) the paper's
    prose quotes; ``params`` records the configuration for EXPERIMENTS.md.
    """

    name: str
    params: Dict[str, Any] = field(default_factory=dict)
    rows: List[Dict[str, Any]] = field(default_factory=list)
    summary: Dict[str, Any] = field(default_factory=dict)

    def print_report(self) -> None:
        """Human-readable report (used by every experiment's main())."""
        print(f"== {self.name} ==")
        if self.params:
            printable = ", ".join(f"{k}={v}" for k, v in self.params.items())
            print(f"params: {printable}")
        if self.rows:
            print(format_table(self.rows))
        for key, value in self.summary.items():
            print(f"{key}: {value}")


@dataclass
class Machine:
    """One simulated computer: engine + ledger + policy + kernel."""

    engine: Engine
    ledger: Ledger
    policy: SchedulingPolicy
    kernel: Kernel

    @property
    def now(self) -> float:
        return self.engine.now

    def run_until(self, time_ms: float) -> None:
        self.kernel.run_until(time_ms)


_POLICIES = {
    "lottery": lambda ledger, seed: LotteryPolicy(
        ledger, prng=ParkMillerPRNG(seed)
    ),
    "lottery-no-compensation": lambda ledger, seed: LotteryPolicy(
        ledger, prng=ParkMillerPRNG(seed), compensation=False
    ),
    "lottery-tree": lambda ledger, seed: LotteryPolicy(
        ledger, prng=ParkMillerPRNG(seed), use_tree=True
    ),
    "round-robin": lambda ledger, seed: RoundRobinPolicy(),
    "fixed-priority": lambda ledger, seed: FixedPriorityPolicy(),
    "timesharing": lambda ledger, seed: TimesharingPolicy(),
    "fair-share": lambda ledger, seed: FairSharePolicy(),
    "stride": lambda ledger, seed: StridePolicy(),
}


def build_machine(seed: int = 1, quantum: float = 100.0,
                  policy: str = "lottery",
                  context_switch_cost: float = 0.0) -> Machine:
    """Assemble a simulated machine with the named scheduling policy."""
    factory = _POLICIES.get(policy)
    if factory is None:
        raise ExperimentError(
            f"unknown policy {policy!r}; choose from {sorted(_POLICIES)}"
        )
    engine = Engine()
    ledger = Ledger()
    policy_obj = factory(ledger, seed)
    kernel = Kernel(
        engine, policy_obj, ledger=ledger, quantum=quantum,
        context_switch_cost=context_switch_cost,
    )
    return Machine(engine, ledger, policy_obj, kernel)


def format_table(rows: Sequence[Dict[str, Any]], precision: int = 3) -> str:
    """Align a list of dicts into a printable table."""
    if not rows:
        return "(no rows)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)

    def fmt(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.{precision}f}"
        return str(value)

    table = [[fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[i]) for line in table))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    separator = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(cell.rjust(w) for cell, w in zip(line, widths))
        for line in table
    )
    return "\n".join([header, separator, body])
