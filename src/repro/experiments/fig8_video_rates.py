"""Figure 8: controlling video rates (paper section 5.4).

Three MPEG viewers displaying the same video are allocated tickets
A:B:C = 3:2:1; halfway through, the allocation is changed to 3:1:2.
The paper observed frame-rate ratios of 1.92:1.50:1 before the change
and 1.92:1:1.53 after (distorted from the ideal by the X server's
round-robin request processing, which our simulator does not have --
so the reproduction should land *closer* to the ideal than the paper).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.inflation import set_share
from repro.experiments.common import ExperimentResult, build_machine
from repro.workloads.mpeg import MpegViewer

__all__ = ["run", "main"]


def run(duration_ms: float = 300_000.0,
        before: Sequence[float] = (3, 2, 1),
        after: Sequence[float] = (3, 1, 2),
        seed: int = 777, decode_ms: float = 100.0,
        sample_every_ms: float = 10_000.0) -> ExperimentResult:
    """Reproduce Figure 8: reallocation of viewer tickets mid-run."""
    machine = build_machine(seed=seed)
    ledger = machine.ledger
    # All viewers share a "videos" currency: user-level rate control
    # among mutually trusting viewers (the application-level feedback
    # approach of [Com94] replaced by OS-level tickets).
    videos = ledger.create_currency("videos")
    ledger.create_ticket(600, fund=videos)

    unit = 100.0
    viewers: List[MpegViewer] = []
    threads = []
    for index, share in enumerate(before):
        viewer = MpegViewer(f"viewer{chr(ord('A') + index)}",
                            decode_ms=decode_ms)
        viewers.append(viewer)
        task = machine.kernel.create_task(f"mpeg-{viewer.name}")
        task.currency = videos
        threads.append(
            machine.kernel.spawn(
                viewer.body, viewer.name, task=task,
                tickets=share * unit, currency=videos,
            )
        )

    switch_at = duration_ms / 2.0

    def reallocate() -> None:
        for thread, share in zip(threads, after):
            set_share(thread, videos, share * unit)

    machine.engine.call_at(switch_at, reallocate, label="reallocate")
    machine.run_until(duration_ms)

    result = ExperimentResult(
        name="Figure 8: controlling video rates",
        params={
            "duration_ms": duration_ms,
            "before": ":".join(f"{s:g}" for s in before),
            "after": ":".join(f"{s:g}" for s in after),
            "decode_ms": decode_ms,
        },
    )
    t = 0.0
    while t <= duration_ms + 1e-9:
        row = {"time_s": t / 1000.0}
        for viewer in viewers:
            row[f"{viewer.name}_frames"] = viewer.counter.total_until(t)
        result.rows.append(row)
        t += sample_every_ms

    def ratio_string(start: float, end: float) -> str:
        rates = [v.frame_rate(start, end) for v in viewers]
        floor = min(r for r in rates if r > 0) if any(rates) else 1.0
        return " : ".join(f"{r / floor:.2f}" for r in rates)

    result.summary["frame-rate ratio before"] = (
        f"{ratio_string(0, switch_at)} (allocated "
        + ":".join(f"{s:g}" for s in before) + ")"
    )
    result.summary["frame-rate ratio after"] = (
        f"{ratio_string(switch_at, duration_ms)} (allocated "
        + ":".join(f"{s:g}" for s in after) + ")"
    )
    for viewer in viewers:
        result.summary[f"{viewer.name} total frames"] = int(viewer.frames)
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    from repro.metrics.ascii_chart import line_chart

    result = run()
    result.print_report()
    names = [key[:-7] for key in result.rows[0] if key.endswith("_frames")]
    print()
    print(line_chart(
        {
            name: [(r["time_s"], r[f"{name}_frames"]) for r in result.rows]
            for name in names
        },
        title="Figure 8: cumulative frames (reallocation at T/2)",
        y_label="frames",
    ))


if __name__ == "__main__":  # pragma: no cover
    main()
