"""Service-class differentiation on an open job stream (§5.4's note).

"A similar form of control could be employed by database or
transaction-processing applications to manage the response times seen
by competing clients or transactions... different levels of service to
clients or transactions with varying importance (or real monetary
funding)."

This experiment evaluates exactly that on the trace-replay substrate:
a Poisson stream of CPU jobs at ~80% offered load, each job assigned a
ticket class (gold/silver/bronze = 400/200/100).  Under lottery
scheduling, mean *slowdown* (response time over unloaded duration)
orders gold < silver < bronze; ticket-blind round-robin serves all
classes identically.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Tuple

from repro.core.prng import ParkMillerPRNG
from repro.core.tickets import Ledger
from repro.experiments.common import ExperimentResult
from repro.kernel.kernel import Kernel
from repro.schedulers.lottery_policy import LotteryPolicy
from repro.schedulers.round_robin import RoundRobinPolicy
from repro.schedulers.stride import StridePolicy
from repro.sim.engine import Engine
from repro.workloads.trace_replay import (
    TraceReplayer,
    WorkloadTrace,
    generate_poisson_trace,
)

__all__ = ["CLASSES", "build_trace", "run_stream", "run", "main"]

#: Ticket count -> human-readable service class.
CLASSES: Dict[float, str] = {400.0: "gold", 200.0: "silver", 100.0: "bronze"}


def build_trace(jobs: int = 900, arrival_rate_per_s: float = 1.6,
                mean_cpu_ms: float = 250.0, seed: int = 2025) -> WorkloadTrace:
    """The standard stream: ~80% offered load on one CPU."""
    return generate_poisson_trace(
        count=jobs,
        arrival_rate_per_s=arrival_rate_per_s,
        mean_cpu_ms=mean_cpu_ms,
        phases_per_job=2,
        tickets_choices=tuple(CLASSES),
        seed=seed,
    )


def run_stream(policy_name: str, duration_ms: float = 600_000.0,
               trace: WorkloadTrace = None, seed: int = 99,
               ) -> Tuple[TraceReplayer, Dict[str, float]]:
    """Replay the stream under one policy; returns per-class slowdowns."""
    engine = Engine()
    ledger = Ledger()
    if policy_name == "lottery":
        policy = LotteryPolicy(ledger, prng=ParkMillerPRNG(seed))
    elif policy_name == "stride":
        policy = StridePolicy()
    elif policy_name == "round-robin":
        policy = RoundRobinPolicy()
    else:
        raise ValueError(f"unknown policy {policy_name!r}")
    kernel = Kernel(engine, policy, ledger=ledger, quantum=100.0)
    replayer = TraceReplayer(kernel, trace if trace is not None
                             else build_trace())
    replayer.start()
    kernel.run_until(duration_ms)
    slowdowns = replayer.slowdowns()
    by_class = defaultdict(list)
    for job in replayer.trace:
        if job.name in slowdowns:
            by_class[CLASSES[job.tickets]].append(slowdowns[job.name])
    means = {
        name: sum(values) / len(values)
        for name, values in by_class.items() if values
    }
    return replayer, means


def run(duration_ms: float = 600_000.0, seed: int = 2025) -> ExperimentResult:
    """Per-class slowdowns under lottery, stride, and round-robin."""
    result = ExperimentResult(
        name="Service classes on an open job stream (§5.4 note)",
        params={
            "jobs": 900,
            "offered_load": "~80% of one CPU",
            "classes": "gold=400, silver=200, bronze=100 tickets",
        },
    )
    trace = build_trace(seed=seed)
    for policy in ("lottery", "stride", "round-robin"):
        replayer, means = run_stream(policy, duration_ms=duration_ms,
                                     trace=build_trace(seed=seed))
        row = {"policy": policy, "completed": replayer.completed()}
        for name in ("gold", "silver", "bronze"):
            row[f"{name}_slowdown"] = means.get(name, float("nan"))
        result.rows.append(row)
    lottery_row = next(r for r in result.rows if r["policy"] == "lottery")
    rr_row = next(r for r in result.rows if r["policy"] == "round-robin")
    result.summary["lottery class spread"] = (
        f"gold {lottery_row['gold_slowdown']:.2f}x < silver "
        f"{lottery_row['silver_slowdown']:.2f}x < bronze "
        f"{lottery_row['bronze_slowdown']:.2f}x"
    )
    result.summary["round-robin class spread"] = (
        f"{min(rr_row[k] for k in ('gold_slowdown', 'silver_slowdown', 'bronze_slowdown')):.2f}x"
        f" .. {max(rr_row[k] for k in ('gold_slowdown', 'silver_slowdown', 'bronze_slowdown')):.2f}x"
        " (flat: tickets ignored)"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    run().print_report()


if __name__ == "__main__":  # pragma: no cover
    main()
