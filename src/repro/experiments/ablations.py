"""Ablations of the design choices the paper motivates.

* **A2 quantum/accuracy law** (section 2.2): the coefficient of
  variation of a client's observed win proportion is sqrt((1-p)/(n p)),
  so halving the quantum (doubling lotteries per second) improves
  accuracy by sqrt(2).  We hold lotteries directly and compare the
  empirical CV against the law.
* **A3 lottery vs stride variance**: the deterministic stride scheduler
  (the authors' follow-up) achieves O(1) absolute error where the
  lottery's grows as O(sqrt(n)).
* **A4 compensation tickets** (sections 3.4/4.5): without them, an
  I/O-bound thread using a fraction f of each quantum receives only
  ~f of its entitled share (the paper's 1:5 example); with them, 1:1.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.lottery import ListLottery
from repro.core.prng import ParkMillerPRNG
from repro.experiments.common import ExperimentResult, build_machine
from repro.metrics.stats import mean, stdev, win_proportion_cv
from repro.workloads.dhrystone import DhrystoneTask
from repro.workloads.synthetic import CpuBound, FractionalQuantum

__all__ = [
    "run_quantum_accuracy",
    "run_lottery_vs_stride",
    "run_compensation",
    "main",
]


def run_quantum_accuracy(
    lottery_counts: Sequence[int] = (100, 400, 1600, 6400),
    share: float = 0.25, trials: int = 200, seed: int = 8,
) -> ExperimentResult:
    """A2: empirical CV of win proportion vs the sqrt((1-p)/(np)) law."""
    result = ExperimentResult(
        name="Ablation A2: allocations vs fairness (CV law)",
        params={"share": share, "trials": trials},
    )
    prng = ParkMillerPRNG(seed)
    values = {"target": share, "rest": 1.0 - share}
    for count in lottery_counts:
        proportions: List[float] = []
        for _ in range(trials):
            lottery = ListLottery(value_of=values.__getitem__,
                                  move_to_front=False)
            lottery.add("target")
            lottery.add("rest")
            wins = sum(
                1 for _ in range(count) if lottery.draw(prng) == "target"
            )
            proportions.append(wins / count)
        mu = mean(proportions)
        cv = stdev(proportions) / mu if mu else float("inf")
        predicted = win_proportion_cv(count, share)
        result.rows.append(
            {
                "lotteries": count,
                "observed_cv": cv,
                "predicted_cv": predicted,
                "ratio": cv / predicted if predicted else float("inf"),
            }
        )
    result.summary["law"] = "CV = sqrt((1-p)/(n p)); accuracy ~ sqrt(n)"
    return result


def run_lottery_vs_stride(
    checkpoints_ms: Sequence[float] = (1_000, 10_000, 100_000),
    tickets: Optional[Dict[str, float]] = None,
    seed: int = 17, quantum: float = 100.0,
) -> ExperimentResult:
    """A3: absolute allocation error, randomized vs deterministic."""
    if tickets is None:
        tickets = {"A": 700.0, "B": 200.0, "C": 100.0}
    result = ExperimentResult(
        name="Ablation A3: lottery vs stride allocation error",
        params={"tickets": dict(tickets), "quantum_ms": quantum},
    )
    total = sum(tickets.values())
    for policy in ("lottery", "stride"):
        machine = build_machine(seed=seed, policy=policy, quantum=quantum)
        workloads = {}
        for name, amount in sorted(tickets.items()):
            workload = DhrystoneTask(name)
            workloads[name] = workload
            machine.kernel.spawn(workload.body, name, tickets=amount)
        for checkpoint in sorted(checkpoints_ms):
            machine.run_until(checkpoint)
            # Max absolute error in quanta between observed CPU and the
            # entitled share (the metric the stride paper plots).
            worst = 0.0
            for name, amount in tickets.items():
                entitled = checkpoint * (amount / total)
                thread = next(
                    t for t in machine.kernel.threads if t.name == name
                )
                worst = max(worst, abs(thread.cpu_time - entitled) / quantum)
            result.rows.append(
                {
                    "policy": policy,
                    "time_ms": checkpoint,
                    "max_error_quanta": worst,
                }
            )
    lottery_errors = [r["max_error_quanta"] for r in result.rows
                      if r["policy"] == "lottery"]
    stride_errors = [r["max_error_quanta"] for r in result.rows
                     if r["policy"] == "stride"]
    result.summary["lottery error growth"] = (
        f"{lottery_errors[0]:.1f} -> {lottery_errors[-1]:.1f} quanta"
        " (grows ~sqrt(n))"
    )
    result.summary["stride error"] = (
        f"max {max(stride_errors):.1f} quanta (stays O(1))"
    )
    return result


def run_compensation(duration_ms: float = 300_000.0, burst_ms: float = 20.0,
                     quantum: float = 100.0, seed: int = 23) -> ExperimentResult:
    """A4: the section 4.5 scenario with compensation on and off."""
    result = ExperimentResult(
        name="Ablation A4: compensation tickets (section 4.5 scenario)",
        params={
            "duration_ms": duration_ms,
            "quantum_ms": quantum,
            "burst_ms": burst_ms,
            "allocation": "1:1",
        },
    )
    for policy in ("lottery", "lottery-no-compensation"):
        machine = build_machine(seed=seed, policy=policy, quantum=quantum)
        cpu_hog = CpuBound("hog", chunk_ms=quantum)
        fractional = FractionalQuantum("frac", burst_ms=burst_ms)
        hog_thread = machine.kernel.spawn(cpu_hog.body, "hog", tickets=400)
        frac_thread = machine.kernel.spawn(fractional.body, "frac", tickets=400)
        machine.run_until(duration_ms)
        ratio = (hog_thread.cpu_time / frac_thread.cpu_time
                 if frac_thread.cpu_time else float("inf"))
        result.rows.append(
            {
                "policy": policy,
                "hog_cpu_ms": hog_thread.cpu_time,
                "frac_cpu_ms": frac_thread.cpu_time,
                "cpu_ratio": ratio,
            }
        )
    expected_distortion = quantum / burst_ms
    result.summary["expected"] = (
        "with compensation ~1:1;"
        f" without ~{expected_distortion:.0f}:1 (paper's 1:5 example"
        " inverted: hog gets the fraction user's unused share)"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    run_quantum_accuracy().print_report()
    run_lottery_vs_stride().print_report()
    run_compensation().print_report()


if __name__ == "__main__":  # pragma: no cover
    main()
