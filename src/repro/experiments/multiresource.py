"""Section 6.3 extension: manager threads balancing multiple resources.

The paper's future-work section asks: with CPU *and* I/O bandwidth both
priced in tickets, "when does it make sense to shift funding from one
resource to another?" and proposes per-application **manager threads**
holding a small fixed share of the application's funding.

This experiment builds the scenario: a pipeline application (each item
needs a disk read, then CPU work) competes against a disk-hungry rival
and a CPU-hungry rival.  Its workload shifts mid-run from disk-bound to
CPU-bound.  We compare:

* **static** splits of the application's budget between CPU tickets and
  disk tickets (50/50, and each phase's ideal split -- which is wrong
  for the other phase), against
* the **bottleneck manager** (:mod:`repro.core.multiresource`), which
  senses where the application is waiting and re-funds accordingly.

The reproduction claim: the manager tracks the phase change and matches
or beats every static split on total items completed.
"""

from __future__ import annotations

from typing import Any, Dict, Generator

from repro.core.multiresource import BottleneckManager, ResourceBudget
from repro.core.prng import ParkMillerPRNG
from repro.experiments.common import ExperimentResult, build_machine
from repro.iosched.disk import Disk, LOTTERY
from repro.kernel.ipc import Port
from repro.kernel.syscalls import Compute, Receive, Syscall

__all__ = ["run", "run_variant", "main"]


def run_variant(
    policy: str,
    duration_ms: float = 400_000.0,
    budget_total: float = 1000.0,
    seed: int = 4242,
    manager_period_ms: float = 2_000.0,
) -> Dict[str, Any]:
    """One run; ``policy`` is 'manager', 'static-50', 'static-disk',
    or 'static-cpu'.  Returns items completed plus diagnostics."""
    machine = build_machine(seed=seed)
    kernel = machine.kernel
    disk = Disk(machine.engine, scheduler=LOTTERY,
                prng=ParkMillerPRNG(seed + 1))

    # -- rivals: keep both resources congested -----------------------------
    def disk_rival_pump(request=None):
        disk.submit("rival", rival_prng.randrange(10_000), 128,
                    on_complete=disk_rival_pump)

    rival_prng = ParkMillerPRNG(seed + 2)
    for _ in range(4):
        disk_rival_pump()
    disk.set_tickets("rival", 500.0)

    def cpu_rival(ctx):
        while True:
            yield Compute(100.0)

    kernel.spawn(cpu_rival, "cpu-rival", tickets=500)

    # -- the pipeline application ------------------------------------------
    io_done = Port(kernel, "io-done")
    # Wait accounting must include the *in-progress* wait, or a starved
    # application reports zero pressure (it never completes an item) and
    # the manager freezes on stale weights.
    stats = {
        "items": 0,
        "io_wait": 0.0,
        "cpu_wait": 0.0,
        "waiting_on": None,  # "disk" | "cpu" | None
        "since": 0.0,
        "baseline": 0.0,  # unloaded cost of the phase in progress
    }
    app_prng = ParkMillerPRNG(seed + 3)
    switch_at = duration_ms / 2.0

    def unloaded_disk_ms(io_kb: float) -> float:
        return disk.rotational_ms + io_kb / disk.transfer_kb_per_ms

    def app_body(ctx) -> Generator[Syscall, Any, None]:
        while True:
            # Phase 1: disk-bound items; phase 2: CPU-bound items.
            if ctx.now < switch_at:
                io_kb, cpu_ms = 256.0, 5.0
            else:
                io_kb, cpu_ms = 16.0, 80.0
            stats["waiting_on"] = "disk"
            stats["since"] = ctx.now
            stats["baseline"] = unloaded_disk_ms(io_kb)

            def io_complete(request, cpu_ms=cpu_ms):
                # Attribute disk contention from the disk's own view
                # (submit -> complete); everything from here until the
                # compute finishes is CPU wait.  Billing the wake-up
                # latency to the disk would create a positive feedback
                # loop: CPU starvation would read as disk pressure.
                stats["io_wait"] += max(
                    request.response_time - stats["baseline"], 0.0
                )
                stats["waiting_on"] = "cpu"
                stats["since"] = request.completed_at
                stats["baseline"] = cpu_ms
                io_done.send(None, "done")

            disk.submit("app", app_prng.randrange(10_000), io_kb,
                        on_complete=io_complete)
            yield Receive(io_done)
            yield Compute(cpu_ms)
            queueing = max(ctx.now - stats["since"] - cpu_ms, 0.0)
            stats["cpu_wait"] += queueing
            stats["waiting_on"] = None
            stats["items"] += 1

    app_thread = kernel.spawn(app_body, "app", tickets=1.0)
    app_ticket = app_thread.tickets[0]

    # -- budget wiring -------------------------------------------------------
    budget = ResourceBudget(budget_total, manager_share=0.01)
    budget.attach("cpu", app_ticket.set_amount)
    budget.attach("disk", lambda amount: disk.set_tickets("app", amount))

    manager_decisions = 0
    if policy == "manager":
        def sense(kind: str, resource: str):
            def sensor() -> float:
                value = stats[kind]
                stats[kind] = 0.0  # window reset per decision
                if stats["waiting_on"] == resource:
                    # Include the wait in progress (minus the unloaded
                    # baseline), so starvation is visible immediately.
                    value += max(
                        machine.engine.now - stats["since"]
                        - stats["baseline"],
                        0.0,
                    )
                return value

            return sensor

        manager = BottleneckManager(
            budget,
            sensors={"cpu": sense("cpu_wait", "cpu"),
                     "disk": sense("io_wait", "disk")},
            period_ms=manager_period_ms,
        )
        kernel.spawn(manager.body, "manager",
                     tickets=budget.manager_funding)
        budget.rebalance({"cpu": 1.0, "disk": 1.0}, now=0.0)
    else:
        weights = {
            "static-50": {"cpu": 1.0, "disk": 1.0},
            "static-disk": {"cpu": 0.15, "disk": 0.85},
            "static-cpu": {"cpu": 0.85, "disk": 0.15},
        }[policy]
        budget.rebalance(weights, now=0.0)

    machine.run_until(duration_ms)
    if policy == "manager":
        manager_decisions = manager.decisions
    return {
        "policy": policy,
        "items": stats["items"],
        "rebalances": len(budget.history),
        "manager_decisions": manager_decisions,
        "final_allocation": budget.allocations(),
    }


def run(duration_ms: float = 400_000.0, seed: int = 4242) -> ExperimentResult:
    """Compare the manager against static splits across the phase shift."""
    result = ExperimentResult(
        name="Section 6.3: multi-resource manager threads",
        params={
            "duration_ms": duration_ms,
            "phases": "disk-bound -> CPU-bound at T/2",
            "budget": 1000.0,
        },
    )
    outcomes = {}
    for policy in ("static-50", "static-disk", "static-cpu", "manager"):
        outcome = run_variant(policy, duration_ms=duration_ms, seed=seed)
        outcomes[policy] = outcome
        result.rows.append(
            {
                "policy": policy,
                "items": outcome["items"],
                "rebalances": outcome["rebalances"],
            }
        )
    best_static = max(
        outcomes[p]["items"] for p in ("static-50", "static-disk",
                                       "static-cpu")
    )
    result.summary["manager items"] = outcomes["manager"]["items"]
    result.summary["best static items"] = best_static
    result.summary["manager vs best static"] = (
        f"{outcomes['manager']['items'] / best_static:.2f}x"
    )
    final = outcomes["manager"]["final_allocation"]
    result.summary["manager final split"] = (
        f"cpu={final['cpu']:.0f}, disk={final['disk']:.0f}"
        " (tracked the CPU-bound phase)"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    from repro.metrics.ascii_chart import bar_chart

    result = run()
    result.print_report()
    print()
    print(bar_chart(
        {row["policy"]: float(row["items"]) for row in result.rows},
        title="items completed per funding policy",
    ))


if __name__ == "__main__":  # pragma: no cover
    main()
