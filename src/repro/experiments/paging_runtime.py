"""Section 6.2, end to end: memory tickets protect *runtime*, not just pages.

The inverse-memory experiment (E10) validates the victim-selection
formula in isolation.  This experiment closes the loop through the
kernel: paged threads compute on the CPU and stall on page faults, so
the replacement policy's choices show up as throughput.

Scenario: a funded **worker** with a cache-friendly working set shares
a small frame pool with an unfunded **scanner** that cycles through far
more pages than memory holds (the classic LRU-killer).  Under
ticket-blind LRU the scanner evicts the worker's pages and the worker
stalls constantly; under inverse-lottery replacement the worker's
memory tickets keep its working set resident and its throughput close
to the scanner-free baseline.
"""

from __future__ import annotations

from typing import Dict

from repro.core.prng import ParkMillerPRNG
from repro.experiments.common import ExperimentResult, build_machine
from repro.mem.frames import FramePool
from repro.mem.manager import MemoryManager
from repro.mem.paging import PagedWorkload
from repro.mem.policies import InverseLotteryReplacement, LRUReplacement

__all__ = ["run", "run_variant", "main"]

TICKETS = {"worker": 900.0, "scanner": 100.0}


def run_variant(policy_name: str, duration_ms: float = 120_000.0,
                frames: int = 64, worker_set: int = 48,
                scanner_set: int = 400, seed: int = 515,
                with_scanner: bool = True) -> Dict[str, float]:
    """One run; returns worker/scanner throughput and fault rates."""
    machine = build_machine(seed=seed)
    pool = FramePool(frames)
    if policy_name == "inverse-lottery":
        policy = InverseLotteryReplacement(
            tickets_of=TICKETS.__getitem__, prng=ParkMillerPRNG(seed + 1)
        )
    elif policy_name == "lru":
        policy = LRUReplacement()
    else:
        raise ValueError(f"unknown policy {policy_name!r}")
    manager = MemoryManager(pool, policy)

    # The worker re-touches its set slowly (one page per 20 ms step),
    # so its pages go "cold" by recency standards even though they are
    # its working set.
    worker = PagedWorkload("worker", manager, working_set=worker_set,
                           pattern="uniform", step_ms=20.0,
                           references_per_step=1, seed=seed + 2)
    machine.kernel.spawn(worker.body, "worker",
                         tickets=TICKETS["worker"])
    scanner = None
    if with_scanner:
        # The scanner streams sequentially with cheap read-ahead faults
        # (2 ms), flooding memory faster than the worker re-touches --
        # the classic LRU-killer access pattern.
        scanner = PagedWorkload("scanner", manager,
                                working_set=scanner_set,
                                pattern="sequential", step_ms=2.0,
                                references_per_step=8,
                                fault_service_ms=2.0, seed=seed + 3)
        machine.kernel.spawn(scanner.body, "scanner",
                             tickets=TICKETS["scanner"])
    machine.run_until(duration_ms)
    return {
        "policy": policy_name,
        "worker_steps": worker.steps,
        "worker_fault_rate": manager.fault_rate("worker"),
        "scanner_steps": scanner.steps if scanner else 0.0,
        "scanner_fault_rate": (
            manager.fault_rate("scanner") if scanner else 0.0
        ),
        "worker_resident": pool.usage("worker"),
    }


def run(duration_ms: float = 120_000.0, seed: int = 515) -> ExperimentResult:
    """Worker throughput under memory pressure, per replacement policy."""
    result = ExperimentResult(
        name="Section 6.2 end-to-end: paging policy vs runtime",
        params={
            "duration_ms": duration_ms,
            "frames": 64,
            "worker": "48-page working set, 900 tickets",
            "scanner": "400-page sequential scan, 100 tickets",
        },
    )
    baseline = run_variant("inverse-lottery", duration_ms=duration_ms,
                           seed=seed, with_scanner=False)
    result.summary["worker alone (no pressure)"] = (
        f"{baseline['worker_steps']:.0f} steps"
    )
    for policy in ("inverse-lottery", "lru"):
        row = run_variant(policy, duration_ms=duration_ms, seed=seed)
        result.rows.append(row)
        retained = row["worker_steps"] / baseline["worker_steps"]
        result.summary[f"worker throughput retained [{policy}]"] = (
            f"{retained:.1%} (fault rate {row['worker_fault_rate']:.1%},"
            f" {row['worker_resident']:.0f} frames resident)"
        )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    run().print_report()


if __name__ == "__main__":  # pragma: no cover
    main()
