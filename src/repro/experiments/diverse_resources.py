"""Section 6 generalizations: lottery-scheduled disk and network links.

The paper argues lotteries can manage any queued resource, naming disk
bandwidth (footnote 7) and ATM virtual circuits explicitly.  This
experiment saturates a simulated disk and a congested link with
competing clients at unequal ticket allocations and checks that
delivered bandwidth tracks tickets, while the round-robin/FIFO
baselines split it evenly.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.prng import ParkMillerPRNG
from repro.experiments.common import ExperimentResult
from repro.iosched.disk import Disk, FIFO, LOTTERY, ROUND_ROBIN
from repro.iosched.netport import LinkScheduler
from repro.sim.engine import Engine

__all__ = ["run", "run_disk", "run_link", "main"]


def run_disk(tickets: Optional[Dict[str, float]] = None,
             requests_per_client: int = 2_000, scheduler: str = LOTTERY,
             seed: int = 11) -> Dict[str, float]:
    """Saturate the disk with per-client backlogs; return KB shares."""
    if tickets is None:
        tickets = {"A": 300.0, "B": 100.0}
    engine = Engine()
    disk = Disk(engine, scheduler=scheduler, tickets=tickets,
                prng=ParkMillerPRNG(seed))
    workload_prng = ParkMillerPRNG(seed + 1)
    for client in sorted(tickets):
        for _ in range(requests_per_client):
            disk.submit(client, workload_prng.randrange(10_000), size_kb=64)
    # Measure shares while every client stays backlogged: run long
    # enough to serve roughly 40% of the submitted work, then stop
    # (running to completion would trivially serve everyone equally).
    mean_service = disk.rotational_ms + 64 / disk.transfer_kb_per_ms + 10.0
    horizon = 0.4 * requests_per_client * len(tickets) * mean_service
    engine.run(until=horizon)
    total = sum(disk.throughput_kb(c) for c in tickets) or 1.0
    shares = {c: disk.throughput_kb(c) / total for c in tickets}
    shares["_mean_response_gap"] = (
        disk.mean_response_time(min(tickets, key=tickets.get))
        / max(disk.mean_response_time(max(tickets, key=tickets.get)), 1e-9)
    )
    return shares


def run_link(tickets: Optional[Dict[str, float]] = None,
             cells_per_circuit: int = 50_000, mode: str = "lottery",
             seed: int = 12) -> Dict[str, float]:
    """Congest one link with backlogged circuits; return cell shares."""
    if tickets is None:
        tickets = {"X": 400.0, "Y": 200.0, "Z": 100.0}
    engine = Engine()
    link = LinkScheduler(engine, cell_time=0.01, mode=mode,
                         queue_limit=cells_per_circuit,
                         prng=ParkMillerPRNG(seed))
    for name, amount in sorted(tickets.items()):
        link.open_circuit(name, amount)
    for name in sorted(tickets):
        link.arrive(name, cells_per_circuit)
    # Measure shares while every circuit stays backlogged: serve ~40%
    # of the total offered cells, then stop.
    horizon = link.cell_time * cells_per_circuit * len(tickets) * 0.4
    engine.run(until=horizon)
    return link.shares()


def run(seed: int = 2024) -> ExperimentResult:
    """Disk 3:1 and link 4:2:1 shares, lottery vs ticket-blind baselines."""
    result = ExperimentResult(
        name="Section 6: lottery-scheduled disk and virtual circuits",
        params={"disk_allocation": "A:B = 3:1", "link_allocation": "X:Y:Z = 4:2:1"},
    )
    disk_lottery = run_disk(scheduler=LOTTERY, seed=seed)
    disk_rr = run_disk(scheduler=ROUND_ROBIN, seed=seed)
    disk_fifo = run_disk(scheduler=FIFO, seed=seed)
    for name, shares in (("lottery", disk_lottery), ("round-robin", disk_rr),
                         ("fifo", disk_fifo)):
        result.rows.append(
            {
                "resource": "disk",
                "scheduler": name,
                "A_share": shares["A"],
                "B_share": shares["B"],
            }
        )
    link_lottery = run_link(mode="lottery", seed=seed + 1)
    link_rr = run_link(mode="round-robin", seed=seed + 1)
    for name, shares in (("lottery", link_lottery), ("round-robin", link_rr)):
        result.rows.append(
            {
                "resource": "link",
                "scheduler": name,
                "X_share": shares.get("X", 0.0),
                "Y_share": shares.get("Y", 0.0),
                "Z_share": shares.get("Z", 0.0),
            }
        )
    result.summary["disk lottery A:B"] = (
        f"{disk_lottery['A'] / max(disk_lottery['B'], 1e-9):.2f} : 1"
        " (allocated 3 : 1; round-robin gives ~1 : 1)"
    )
    result.summary["link lottery X:Y:Z"] = (
        f"{link_lottery['X'] / max(link_lottery['Z'], 1e-9):.2f} :"
        f" {link_lottery['Y'] / max(link_lottery['Z'], 1e-9):.2f} : 1"
        " (allocated 4 : 2 : 1)"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    run().print_report()


if __name__ == "__main__":  # pragma: no cover
    main()
