"""Interactive responsiveness under load (paper sections 1, 3.4).

The introduction motivates lottery scheduling with interactive systems
that "require rapid, dynamic control over scheduling at a time scale of
milliseconds to seconds", and section 3.4 notes compensation tickets
"permit I/O-bound tasks that use few processor cycles to start
quickly".  This experiment quantifies that: an interactive thread
(short bursts, mostly blocked) competes with N compute-bound hogs, and
we measure its scheduling latency (wake to dispatch) under

* lottery scheduling with compensation (the paper's design),
* lottery without compensation (ablation),
* decay-usage timesharing (the classical answer to interactivity),
* round-robin and fixed low priority (the pathological baselines).

Shape to reproduce: with compensation, the interactive thread's latency
stays near one quantum even under heavy load *while its long-run share
stays proportional*; without compensation it queues like a hog; under
fixed low priority it starves outright.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.common import ExperimentResult, build_machine
from repro.kernel.syscalls import Compute, Sleep
from repro.metrics.recorder import KernelRecorder
from repro.metrics.stats import mean

__all__ = ["run", "run_policy", "main"]


def run_policy(policy: str, hogs: int = 5, duration_ms: float = 120_000.0,
               burst_ms: float = 5.0, think_ms: float = 95.0,
               seed: int = 77) -> Dict[str, float]:
    """One policy run; returns the interactive thread's latency stats."""
    machine = build_machine(seed=seed, policy=policy)
    recorder = KernelRecorder()
    machine.kernel.recorder = recorder

    def interactive(ctx):
        while True:
            yield Sleep(think_ms)
            yield Compute(burst_ms)

    def hog(ctx):
        while True:
            yield Compute(100.0)

    # Equal per-thread funding: the interactive thread is entitled to
    # 1/(hogs+1) but only asks for ~5% CPU.
    ui_thread = machine.kernel.spawn(interactive, "ui", tickets=100,
                                     priority=1)
    for index in range(hogs):
        machine.kernel.spawn(hog, f"hog{index}", tickets=100, priority=2)
    machine.run_until(duration_ms)

    latencies: List[float] = recorder.latencies.get(ui_thread.tid, [])
    return {
        "policy": policy,
        "mean_latency_ms": mean(latencies),
        "worst_latency_ms": max(latencies) if latencies else float("inf"),
        "bursts_completed": len(latencies),
        "ui_cpu_ms": ui_thread.cpu_time,
    }


def run(duration_ms: float = 120_000.0, hogs: int = 5,
        seed: int = 77) -> ExperimentResult:
    """Interactive latency across policies."""
    result = ExperimentResult(
        name="Responsiveness: interactive thread vs compute-bound load",
        params={
            "hogs": hogs,
            "duration_ms": duration_ms,
            "interactive": "5 ms burst / 95 ms think, equal funding",
        },
    )
    for policy in ("lottery", "lottery-no-compensation", "timesharing",
                   "round-robin", "fixed-priority"):
        row = run_policy(policy, hogs=hogs, duration_ms=duration_ms,
                         seed=seed)
        result.rows.append(row)
    by_policy = {row["policy"]: row for row in result.rows}
    with_comp = by_policy["lottery"]["mean_latency_ms"]
    without = by_policy["lottery-no-compensation"]["mean_latency_ms"]
    result.summary["lottery mean latency (ms)"] = f"{with_comp:.0f}"
    result.summary["no-compensation mean latency (ms)"] = f"{without:.0f}"
    if with_comp > 0:
        result.summary["compensation speedup"] = f"{without / with_comp:.1f}x"
    result.summary["fixed-priority bursts"] = (
        f"{by_policy['fixed-priority']['bursts_completed']}"
        " (the low-priority interactive thread starves)"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    from repro.metrics.ascii_chart import bar_chart

    result = run()
    result.print_report()
    print()
    print(bar_chart(
        {row["policy"]: row["mean_latency_ms"] for row in result.rows
         if row["mean_latency_ms"] > 0},
        title="mean wake-to-dispatch latency (ms), lower is better",
        unit=" ms",
    ))


if __name__ == "__main__":  # pragma: no cover
    main()
