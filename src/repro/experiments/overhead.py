"""Section 5.6: system overhead, lottery vs. standard timesharing.

The paper compares its unoptimized prototype against unmodified Mach:
three Dhrystones for 200 seconds (lottery 0.8%-2.7% from baseline,
within run-to-run noise) and the database benchmark (five clients, 20
queries each, 1135.5 vs 1155.5 s: lottery 1.7% *faster*), concluding
the overheads are comparable.

The simulator's virtual time is policy-independent by construction, so
the honest analogue of "scheduler overhead" is the **host CPU cost of
the scheduling decisions themselves**: we run identical workloads under
the lottery and baseline policies and report wall-clock time per
simulated dispatch.  The claim to reproduce is *comparability* --
lottery dispatch cost within a small factor of timesharing's -- plus
the microbenchmark costs of the core operations.
"""

from __future__ import annotations

import time
from typing import Dict

from repro.experiments.common import ExperimentResult, build_machine
from repro.workloads.database import DatabaseClient, DatabaseServer
from repro.workloads.dhrystone import DhrystoneTask

__all__ = ["run", "run_dhrystone_overhead", "run_database_overhead",
           "run_profile", "main"]

_POLICIES = ("lottery", "timesharing", "round-robin", "stride")


def run_dhrystone_overhead(policy: str, duration_ms: float = 200_000.0,
                           tasks: int = 3, seed: int = 99) -> Dict[str, float]:
    """Three concurrent Dhrystones (the paper's first overhead test)."""
    machine = build_machine(seed=seed, policy=policy)
    workloads = [DhrystoneTask(f"dhry{i}") for i in range(tasks)]
    for index, workload in enumerate(workloads):
        machine.kernel.spawn(workload.body, workload.name, tickets=100,
                             priority=1)
    started = time.perf_counter()
    machine.run_until(duration_ms)
    elapsed = time.perf_counter() - started
    dispatches = machine.kernel.dispatch_count
    return {
        "policy": policy,
        "iterations": sum(w.iterations for w in workloads),
        "dispatches": dispatches,
        "host_seconds": elapsed,
        "us_per_dispatch": (elapsed / dispatches * 1e6) if dispatches else 0.0,
    }


def run_database_overhead(policy: str, clients: int = 5,
                          queries_each: int = 20,
                          corpus_kb: float = 500.0,
                          seed: int = 99) -> Dict[str, float]:
    """Five clients x 20 queries (the paper's second overhead test)."""
    machine = build_machine(seed=seed, policy=policy)
    server = DatabaseServer(machine.kernel, workers=3, corpus_kb=corpus_kb)
    client_objects = [
        DatabaseClient(
            machine.kernel, server, f"client{i}", tickets=100,
            max_queries=queries_each,
        )
        for i in range(clients)
    ]
    started = time.perf_counter()
    # Run until all queries complete (bounded horizon as a backstop).
    horizon = 4_000_000.0
    step = 50_000.0
    t = step
    while t <= horizon:
        machine.run_until(t)
        if all(c.completed >= queries_each for c in client_objects):
            break
        t += step
    elapsed = time.perf_counter() - started
    completion_ms = machine.now
    dispatches = machine.kernel.dispatch_count
    return {
        "policy": policy,
        "virtual_completion_s": completion_ms / 1000.0,
        "queries": sum(c.completed for c in client_objects),
        "dispatches": dispatches,
        "host_seconds": elapsed,
        "us_per_dispatch": (elapsed / dispatches * 1e6) if dispatches else 0.0,
    }


def run_profile(duration_ms: float = 60_000.0, tasks: int = 3,
                seed: int = 99) -> ExperimentResult:
    """The paper's overhead *table*: cost attribution per operation.

    Section 5.1 reports the prototype's per-operation costs (the
    lottery draw itself, run-queue moves, compensation-ticket
    updates).  We reproduce the attribution with
    :class:`repro.telemetry.profiler.ProfiledPolicy`: each policy runs
    the same Dhrystone mix with every scheduling operation timed on
    the host clock, and the report splits the total into draw /
    queue-maintenance / compensation buckets.  Profiling is read-only:
    the dispatch stream is bit-identical with and without it.
    """
    from repro.telemetry.profiler import attach_profiler

    result = ExperimentResult(
        name="Section 5.1: scheduling-operation cost attribution",
        params={"duration_ms": duration_ms, "tasks": tasks, "seed": seed},
    )
    for policy in _POLICIES:
        machine = build_machine(seed=seed, policy=policy)
        profiler = attach_profiler(machine.kernel)
        for index in range(tasks):
            workload = DhrystoneTask(f"dhry{index}")
            machine.kernel.spawn(workload.body, workload.name, tickets=100,
                                 priority=1)
        machine.run_until(duration_ms)
        report = profiler.report()
        dispatches = machine.kernel.dispatch_count
        result.rows.append({
            "policy": policy,
            "dispatches": dispatches,
            "draw_us": round(report["draw_us"], 1),
            "queue_us": round(report["queue_us"], 1),
            "compensation_us": round(report["compensation_us"], 1),
            "draw_us_per_select": round(report["draw_us_per_select"], 3),
        })
    lottery = next(r for r in result.rows if r["policy"] == "lottery")
    result.summary["lottery draw cost"] = (
        f"{lottery['draw_us_per_select']:.3f}us/select over "
        f"{lottery['dispatches']} dispatches "
        "(paper: 1000 lotteries in 2.7s on a 25MHz mips)"
    )
    return result


def run(duration_ms: float = 200_000.0, seed: int = 99) -> ExperimentResult:
    """Reproduce the section 5.6 comparison across policies."""
    result = ExperimentResult(
        name="Section 5.6: scheduling overhead (lottery vs baselines)",
        params={"dhrystone_duration_ms": duration_ms},
    )
    lottery_cost = None
    for policy in _POLICIES:
        row = run_dhrystone_overhead(policy, duration_ms=duration_ms, seed=seed)
        result.rows.append(row)
        if policy == "lottery":
            lottery_cost = row["us_per_dispatch"]
    timesharing_cost = next(
        r["us_per_dispatch"] for r in result.rows if r["policy"] == "timesharing"
    )
    if lottery_cost and timesharing_cost:
        result.summary["lottery/timesharing dispatch cost"] = (
            f"{lottery_cost / timesharing_cost:.2f}x"
            " (paper: comparable overheads)"
        )
    db_rows = [
        run_database_overhead(policy, seed=seed)
        for policy in ("lottery", "timesharing")
    ]
    for row in db_rows:
        result.summary[f"database bench [{row['policy']}]"] = (
            f"virtual {row['virtual_completion_s']:.1f}s,"
            f" host {row['host_seconds']:.2f}s,"
            f" {row['us_per_dispatch']:.1f}us/dispatch"
        )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    run().print_report()
    run_profile().print_report()


if __name__ == "__main__":  # pragma: no cover
    main()
