"""Figure 11: lottery-scheduled mutex waiting times (paper section 6.1).

Eight threads compete for one lottery-scheduled mutex; each repeatedly
acquires it, holds it for 50 ms, releases it, and computes for another
50 ms.  The threads form two groups, A and B, with per-thread funding
in ratio A : B = 2 : 1.  Over a two-minute run the paper measured 763
vs 423 acquisitions (1.80 : 1) and mean waits of 450 vs 948 ms
(1 : 2.11) -- both tracking the 2:1 allocation.
"""

from __future__ import annotations

from typing import List

from repro.core.prng import ParkMillerPRNG
from repro.experiments.common import ExperimentResult, build_machine
from repro.metrics.histogram import Histogram
from repro.sync.mutex import LotteryMutex
from repro.workloads.synthetic import MutexContender

__all__ = ["run", "main"]


def run(duration_ms: float = 120_000.0, group_size: int = 4,
        hold_ms: float = 50.0, compute_ms: float = 50.0,
        funding=(2.0, 1.0), unit: float = 100.0, seed: int = 6161,
        histogram_bin_ms: float = 250.0) -> ExperimentResult:
    """Reproduce Figure 11: group A:B = 2:1 mutex contention."""
    machine = build_machine(seed=seed)
    mutex = LotteryMutex(
        machine.kernel, "experiment-lock", prng=ParkMillerPRNG(seed + 1)
    )
    groups: List[List] = [[], []]
    for group_index, group_name in enumerate("AB"):
        for member in range(group_size):
            name = f"{group_name}{member + 1}"
            contender = MutexContender(
                name, mutex, hold_ms=hold_ms, compute_ms=compute_ms,
                seed=seed + 31 * group_index + member,
            )
            thread = machine.kernel.spawn(
                contender.body, name,
                tickets=funding[group_index] * unit,
            )
            groups[group_index].append((contender, thread))
    machine.run_until(duration_ms)

    result = ExperimentResult(
        name="Figure 11: lottery-scheduled mutex (A:B = 2:1)",
        params={
            "duration_ms": duration_ms,
            "threads": group_size * 2,
            "hold_ms": hold_ms,
            "compute_ms": compute_ms,
            "funding": f"{funding[0]:g}:{funding[1]:g}",
        },
    )

    acquisitions = []
    waits = []
    histograms = []
    for group_index, group_name in enumerate("AB"):
        group_acquired = 0
        histogram = Histogram(histogram_bin_ms, name=f"group-{group_name}")
        for _, thread in groups[group_index]:
            group_acquired += mutex.acquisitions.get(thread.tid, 0)
            for wait in mutex.waiting_times.get(thread.tid, []):
                histogram.add(wait)
        acquisitions.append(group_acquired)
        waits.append(histogram.mean())
        histograms.append(histogram)
        result.summary[f"group {group_name} acquisitions"] = group_acquired
        result.summary[f"group {group_name} mean wait (ms)"] = (
            f"{histogram.mean():.0f} (sd {histogram.stdev():.0f})"
        )

    for histogram in histograms:
        for start, end, count in histogram.bins():
            result.rows.append(
                {
                    "group": histogram.name,
                    "wait_bin_ms": f"{start:.0f}-{end:.0f}",
                    "count": count,
                }
            )

    if acquisitions[1]:
        result.summary["acquisition ratio A:B"] = (
            f"{acquisitions[0] / acquisitions[1]:.2f} : 1"
            " (paper: 1.80 : 1)"
        )
    if waits[0]:
        result.summary["waiting time ratio A:B"] = (
            f"1 : {waits[1] / waits[0]:.2f} (paper: 1 : 2.11)"
        )
    result.summary["release lotteries"] = mutex.release_lotteries
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    run().print_report()


if __name__ == "__main__":  # pragma: no cover
    main()
