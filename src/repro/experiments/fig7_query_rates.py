"""Figure 7: client-server query processing rates (paper section 5.3).

Three clients with an 8:3:1 ticket allocation send substring-search
queries to a multithreaded, ticketless server over synchronous RPC;
client tickets ride along on each call (section 4.6's modified
mach_msg).  The paper's high-funded client issues 20 queries and then
terminates; when it finished, the 3:1 clients had completed about 10
requests between them, and the overall throughput ratio was
7.69 : 2.51 : 1 with response times 17.19, 43.19, 132.20 s (1 : 2.51 :
7.69).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, build_machine
from repro.workloads.database import DatabaseClient, DatabaseServer

__all__ = ["run", "main"]


def run(duration_ms: float = 800_000.0, allocation=(8, 3, 1),
        high_client_queries: int = 20, corpus_kb: float = 4600.0,
        scan_ms_per_kb: float = 2.0, workers: int = 3, seed: int = 5151,
        sample_every_ms: float = 20_000.0) -> ExperimentResult:
    """Reproduce Figure 7: 8:3:1 clients against the search server.

    The scan cost is calibrated so one query costs ~9.2 s of dedicated
    CPU -- the same magnitude as the paper's ~15 s responses on the
    25 MHz DECStation -- which keeps the high-funded client active for
    most of the run, as in the original experiment.
    """
    machine = build_machine(seed=seed)
    server = DatabaseServer(
        machine.kernel, workers=workers, corpus_kb=corpus_kb,
        scan_ms_per_kb=scan_ms_per_kb,
    )
    unit = 100.0
    client_a = DatabaseClient(
        machine.kernel, server, "A", tickets=allocation[0] * unit,
        max_queries=high_client_queries,
    )
    client_b = DatabaseClient(
        machine.kernel, server, "B", tickets=allocation[1] * unit
    )
    client_c = DatabaseClient(
        machine.kernel, server, "C", tickets=allocation[2] * unit
    )
    machine.run_until(duration_ms)

    result = ExperimentResult(
        name="Figure 7: query processing rates (8:3:1 ticket transfer)",
        params={
            "duration_ms": duration_ms,
            "allocation": ":".join(str(a) for a in allocation),
            "high_client_queries": high_client_queries,
            "corpus_kb": corpus_kb,
            "workers": workers,
        },
    )
    t = 0.0
    while t <= duration_ms + 1e-9:
        result.rows.append(
            {
                "time_s": t / 1000.0,
                "A_queries": client_a.counter.total_until(t),
                "B_queries": client_b.counter.total_until(t),
                "C_queries": client_c.counter.total_until(t),
            }
        )
        t += sample_every_ms

    # When the high-funded client finished its 20 queries, how far were
    # the others (the paper: "the other clients have completed a total
    # of 10 requests")?
    a_done_time = (
        client_a.completions[-1][0] if (
            high_client_queries
            and client_a.completed >= high_client_queries
        ) else None
    )
    if a_done_time is not None:
        others = client_b.counter.total_until(a_done_time) + (
            client_c.counter.total_until(a_done_time)
        )
        result.summary["A finished at (s)"] = f"{a_done_time / 1000.0:.1f}"
        result.summary["B+C queries when A finished"] = int(others)

    counts = (client_b.completed, client_c.completed)
    if counts[1]:
        result.summary["B:C throughput ratio"] = (
            f"{counts[0] / counts[1]:.2f} : 1 (allocated 3 : 1)"
        )

    # Response-time ratios are only meaningful while all three compete,
    # so restrict every client to queries completed before A finished.
    window_end = a_done_time if a_done_time is not None else duration_ms

    def windowed_mean_response(client: DatabaseClient) -> float:
        # Window by *issue* time (t - r), not completion time: windowing
        # on completion would drop the slow in-flight queries of poorly
        # funded clients and bias their means low (survivor bias).
        values = [r for (t, r) in client.completions if t - r <= window_end]
        return sum(values) / len(values) if values else 0.0

    responses = [
        windowed_mean_response(client_a),
        windowed_mean_response(client_b),
        windowed_mean_response(client_c),
    ]
    result.summary["mean response times while contended (ms)"] = (
        f"A={responses[0]:.0f}, B={responses[1]:.0f}, C={responses[2]:.0f}"
    )
    if responses[0] > 0 and responses[1] > 0 and responses[2] > 0:
        result.summary["response time ratio"] = (
            f"1 : {responses[1] / responses[0]:.2f} : "
            f"{responses[2] / responses[0]:.2f} (allocated 1 : 8/3 : 8;"
            " paper observed 1 : 2.51 : 7.69)"
        )
    result.summary["query result (occurrences)"] = (
        f"{sorted(set(client_b.results))} (corpus plants 8)"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    run().print_report()


if __name__ == "__main__":  # pragma: no cover
    main()
