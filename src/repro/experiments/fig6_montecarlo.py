"""Figure 6: Monte-Carlo execution rates under dynamic inflation (§5.2).

Three identical Monte-Carlo integrations start two minutes apart; each
periodically sets its ticket value proportional to the square of its
relative error.  A newly started task therefore executes at a high rate
that tapers off as it converges, producing cumulative-trials curves
that catch up to the older experiments -- the "bumps" in the figure.

All three tasks denominate their tickets in a shared ``mc`` currency,
so the error-driven inflation is locally contained (section 3.2's
proviso that inflation be used among mutually trusting clients).
"""

from __future__ import annotations

from typing import List

from repro.core.inflation import ErrorDrivenInflator
from repro.experiments.common import ExperimentResult, build_machine
from repro.workloads.montecarlo import MonteCarloTask

__all__ = ["run", "main"]


def run(duration_ms: float = 1_000_000.0, stagger_ms: float = 120_000.0,
        tasks: int = 3, seed: int = 271828,
        sample_every_ms: float = 20_000.0,
        error_scale: float = 1e7) -> ExperimentResult:
    """Reproduce Figure 6: staggered tasks with error^2 ticket funding.

    ``error_scale`` maps relative error to ticket value.  Because the
    error shrinks as 1/sqrt(trials), tickets decay as scale/trials; the
    scale must be large enough that a mature task's ticket stays above
    the floor, or the convergence dynamics flatten out.  Only ratios
    matter (the tasks share the ``mc`` currency), so a large scale is
    free.
    """
    machine = build_machine(seed=seed)
    ledger = machine.ledger
    mc_currency = ledger.create_currency("mc")
    ledger.create_ticket(1000, fund=mc_currency)
    inflator = ErrorDrivenInflator(
        mc_currency, scale=error_scale, exponent=2.0, floor=1e-6
    )

    mc_tasks: List[MonteCarloTask] = []
    for index in range(tasks):
        task = MonteCarloTask(
            f"mc{index}", seed=seed + index * 7919, inflator=inflator
        )
        mc_tasks.append(task)
        start_at = index * stagger_ms

        def spawn(task=task, index=index):
            kernel_task = machine.kernel.create_task(f"mc-task-{index}")
            kernel_task.currency = mc_currency
            machine.kernel.spawn(
                task.body, task.name, task=kernel_task, tickets=error_scale,
                currency=mc_currency,
            )

        if start_at <= 0:
            spawn()
        else:
            machine.engine.call_at(start_at, spawn, label="mc-start")

    machine.run_until(duration_ms)

    result = ExperimentResult(
        name="Figure 6: Monte-Carlo error-driven ticket inflation",
        params={
            "duration_ms": duration_ms,
            "stagger_ms": stagger_ms,
            "tasks": tasks,
            "ticket_rule": "scale * relative_error^2",
        },
    )
    t = 0.0
    while t <= duration_ms + 1e-9:
        row = {"time_s": t / 1000.0}
        for task in mc_tasks:
            row[f"{task.name}_trials"] = task.counter.total_until(t)
        result.rows.append(row)
        t += sample_every_ms

    finals = [task.trials for task in mc_tasks]
    spread = (max(finals) - min(finals)) / max(finals) if max(finals) else 0.0
    for task in mc_tasks:
        result.summary[f"{task.name} final trials"] = task.trials
        result.summary[f"{task.name} estimate"] = (
            f"{task.estimator.estimate:.6f} (pi/4 = 0.785398)"
        )
    result.summary["final spread"] = (
        f"{spread:.3%} (staggered tasks converge toward equal totals)"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    from repro.metrics.ascii_chart import line_chart

    result = run()
    result.print_report()
    names = [key[:-7] for key in result.rows[0] if key.endswith("_trials")]
    print()
    print(line_chart(
        {
            name: [(r["time_s"], r[f"{name}_trials"]) for r in result.rows]
            for name in names
        },
        title="Figure 6: cumulative Monte-Carlo trials",
        y_label="trials",
    ))


if __name__ == "__main__":  # pragma: no cover
    main()
