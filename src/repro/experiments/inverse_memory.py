"""Section 6.2: inverse-lottery management of space-shared memory.

The paper proposes revoking physical pages from clients by an *inverse
lottery*: client i loses a page with probability proportional to
(1 - t_i/T) weighted by the fraction of memory it occupies.  This
experiment drives a page-fault stream from clients with unequal ticket
allocations through a small frame pool and compares the observed
per-client eviction shares against the closed-form prediction, plus
ticket-blind baselines (LRU/FIFO/random) that victimize regardless of
funding.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.prng import ParkMillerPRNG
from repro.experiments.common import ExperimentResult
from repro.mem.frames import FramePool
from repro.mem.manager import MemoryManager
from repro.mem.policies import (
    InverseLotteryReplacement,
    LRUReplacement,
    RandomReplacement,
)

__all__ = ["run", "main"]


def _drive(manager: MemoryManager, tickets: Dict[str, float],
            references: int, pages_per_client: int,
            prng: ParkMillerPRNG) -> None:
    """Uniform random references from each client round-robin."""
    clients = sorted(tickets)
    for step in range(references):
        client = clients[step % len(clients)]
        page = prng.randrange(pages_per_client)
        manager.reference(client, page, now=float(step))


def run(tickets: Optional[Dict[str, float]] = None, frames: int = 90,
        pages_per_client: int = 60, references: int = 60_000,
        seed: int = 424242) -> ExperimentResult:
    """Reproduce the section 6.2 victim-distribution prediction."""
    if tickets is None:
        tickets = {"A": 300.0, "B": 200.0, "C": 100.0}
    result = ExperimentResult(
        name="Section 6.2: inverse-lottery page replacement",
        params={
            "tickets": dict(tickets),
            "frames": frames,
            "pages_per_client": pages_per_client,
            "references": references,
        },
    )

    # -- inverse lottery -----------------------------------------------------
    pool = FramePool(frames)
    policy = InverseLotteryReplacement(
        tickets_of=lambda c: tickets[c], prng=ParkMillerPRNG(seed)
    )
    manager = MemoryManager(pool, policy)
    _drive(manager, tickets, references, pages_per_client,
           ParkMillerPRNG(seed + 1))

    # Prediction: steady state balances eviction flow against fault
    # flow; with symmetric reference streams the observed eviction
    # share should track (1 - t_i/T) * usage_i (renormalized), where
    # usage is each client's measured mean residency.
    total_tickets = sum(tickets.values())
    usages = {c: pool.usage_fraction(c) for c in tickets}
    weights = {
        c: (1.0 - tickets[c] / total_tickets) * max(usages[c], 1e-9)
        for c in tickets
    }
    weight_sum = sum(weights.values())
    for client in sorted(tickets):
        predicted = weights[client] / weight_sum if weight_sum else 0.0
        result.rows.append(
            {
                "client": client,
                "tickets": tickets[client],
                "evictions": manager.evictions.get(client, 0),
                "observed_share": manager.eviction_share(client),
                "predicted_share": predicted,
                "resident_frames": pool.usage(client),
                "fault_rate": manager.fault_rate(client),
            }
        )

    # -- ticket-blind baselines ---------------------------------------------------
    for baseline_name, baseline in (
        ("lru", LRUReplacement()),
        ("random", RandomReplacement(ParkMillerPRNG(seed + 2))),
    ):
        base_pool = FramePool(frames)
        base_manager = MemoryManager(base_pool, baseline)
        _drive(base_manager, tickets, references, pages_per_client,
               ParkMillerPRNG(seed + 1))
        shares = ", ".join(
            f"{c}={base_manager.eviction_share(c):.2f}" for c in sorted(tickets)
        )
        result.summary[f"baseline {baseline_name} eviction shares"] = (
            f"{shares} (ticket-blind: roughly uniform)"
        )

    best_funded = max(tickets, key=tickets.get)
    least_funded = min(tickets, key=tickets.get)
    result.summary["shape check"] = (
        f"{best_funded} (most tickets) loses fewest pages;"
        f" {least_funded} (fewest tickets) loses most"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    from repro.metrics.ascii_chart import bar_chart

    result = run()
    result.print_report()
    print()
    print(bar_chart(
        {f"{r['client']} ({r['tickets']:.0f}t)": r["observed_share"]
         for r in result.rows},
        title="eviction share by client (more tickets -> fewer losses)",
    ))


if __name__ == "__main__":  # pragma: no cover
    main()
