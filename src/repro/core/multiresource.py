"""Multiple-resource funding management (paper section 6.3).

Because rights for *every* resource are uniformly represented by
tickets, "clients can use quantitative comparisons to make decisions
involving tradeoffs between different resources".  The paper sketches
the design this module implements:

* an application's overall funding is **split across resources** (CPU,
  disk, network, ...), and may be shifted between them at runtime;
* a small **manager thread**, allocated a fixed percentage of the
  application's funding so it is periodically scheduled, observes the
  application's per-resource congestion and re-balances the split
  toward the bottleneck;
* the system supplies a sensible default manager
  (:class:`BottleneckManager`); sophisticated applications define their
  own strategies by supplying a custom ``decide`` function.

Mechanically, a :class:`ResourceBudget` owns a total funding amount and
a set of per-resource *applicators* -- callables that install a funding
level into the underlying subsystem (a CPU ticket's ``set_amount``, a
disk scheduler's ``set_tickets``, a link circuit's ticket field...).
Re-balancing is atomic: weights in, amounts out, applicators called.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Mapping, Optional

from repro.errors import ReproError
from repro.kernel.syscalls import Compute, Sleep, Syscall
from repro.kernel.thread import ThreadContext

__all__ = ["ResourceBudget", "BottleneckManager", "proportional_decide"]

#: Installs a funding amount into one resource's scheduler.
Applicator = Callable[[float], None]

#: Reads one resource's congestion signal (higher = more starved).
Sensor = Callable[[], float]

#: Maps {resource: pressure} to {resource: weight}.
DecideFn = Callable[[Mapping[str, float]], Dict[str, float]]


class ResourceBudget:
    """One application's funding, split across named resources.

    Parameters
    ----------
    total:
        The application's overall funding in base units.  A fraction
        (``manager_share``) is carved out for the manager thread itself,
        as the paper suggests (e.g. 1%), so the manager keeps running
        even when the application's resource tickets are depleted.
    manager_share:
        Fraction of ``total`` reserved for the manager.
    """

    def __init__(self, total: float, manager_share: float = 0.01) -> None:
        if total <= 0:
            raise ReproError(f"budget total must be positive: {total}")
        if not 0.0 <= manager_share < 1.0:
            raise ReproError(
                f"manager share must lie in [0, 1): {manager_share}"
            )
        self.total = float(total)
        self.manager_share = manager_share
        self._applicators: Dict[str, Applicator] = {}
        self._weights: Dict[str, float] = {}
        #: (time, {resource: amount}) log of every rebalance.
        self.history = []

    # -- wiring ------------------------------------------------------------------

    def attach(self, resource: str, applicator: Applicator,
               weight: float = 1.0) -> None:
        """Register a resource and its funding applicator."""
        if resource in self._applicators:
            raise ReproError(f"resource {resource!r} already attached")
        if weight < 0:
            raise ReproError(f"negative weight for {resource!r}")
        self._applicators[resource] = applicator
        self._weights[resource] = weight

    @property
    def resources(self) -> list:
        """Attached resource names."""
        return list(self._applicators)

    @property
    def manager_funding(self) -> float:
        """Base units reserved for the manager thread."""
        return self.total * self.manager_share

    @property
    def spendable(self) -> float:
        """Base units divided among the resources."""
        return self.total - self.manager_funding

    # -- allocation ---------------------------------------------------------------

    def allocation(self, resource: str) -> float:
        """Current funding directed at one resource."""
        weights_total = sum(self._weights.values())
        if weights_total <= 0:
            return 0.0
        try:
            weight = self._weights[resource]
        except KeyError:
            raise ReproError(f"unknown resource {resource!r}") from None
        return self.spendable * weight / weights_total

    def allocations(self) -> Dict[str, float]:
        """Current funding per resource."""
        return {name: self.allocation(name) for name in self._applicators}

    def rebalance(self, weights: Mapping[str, float],
                  now: Optional[float] = None) -> Dict[str, float]:
        """Adopt new weights and push amounts into every applicator.

        Unknown resources in ``weights`` are rejected; attached
        resources missing from ``weights`` keep weight 0 (defunded).
        """
        for name in weights:
            if name not in self._applicators:
                raise ReproError(f"unknown resource {name!r}")
        if all(w <= 0 for w in weights.values()):
            raise ReproError("at least one rebalance weight must be positive")
        for name in self._applicators:
            self._weights[name] = max(float(weights.get(name, 0.0)), 0.0)
        amounts = self.allocations()
        for name, amount in sorted(amounts.items()):
            self._applicators[name](amount)
        self.history.append((now, dict(amounts)))
        return amounts


def proportional_decide(pressures: Mapping[str, float]) -> Dict[str, float]:
    """The default policy: weight each resource by its pressure.

    A floor keeps every resource minimally funded so its sensor can
    still observe progress (a completely defunded resource would look
    idle and never recover).
    """
    floor = 0.05 * (sum(pressures.values()) or 1.0) / max(len(pressures), 1)
    return {name: max(value, floor)
            for name, value in sorted(pressures.items())}


class BottleneckManager:
    """The §6.3 manager thread: sense pressure, shift funding.

    Parameters
    ----------
    budget:
        The application's :class:`ResourceBudget`.
    sensors:
        Per-resource congestion signals.  Any non-negative scale works;
        queueing delay and backlog length are natural choices.
    period_ms:
        How often the manager wakes to rebalance.
    decide:
        Policy mapping pressures to weights (default: proportional).
    think_ms:
        Virtual CPU consumed per decision (the manager's own footprint,
        funded by the reserved ``manager_share``).
    """

    def __init__(
        self,
        budget: ResourceBudget,
        sensors: Dict[str, Sensor],
        period_ms: float = 1000.0,
        decide: Optional[DecideFn] = None,
        think_ms: float = 1.0,
    ) -> None:
        if period_ms <= 0:
            raise ReproError(f"period must be positive: {period_ms}")
        if think_ms < 0:
            raise ReproError(f"think_ms must be non-negative: {think_ms}")
        unknown = set(sensors) - set(budget.resources)
        if unknown:
            raise ReproError(f"sensors for unattached resources: {unknown}")
        self.budget = budget
        self.sensors = sensors
        self.period_ms = period_ms
        self.decide = decide if decide is not None else proportional_decide
        self.think_ms = think_ms
        self.decisions = 0

    def body(self, ctx: ThreadContext) -> Generator[Syscall, None, None]:
        """Manager thread body: sample sensors, rebalance, sleep."""
        while True:
            if self.think_ms > 0:
                yield Compute(self.think_ms)
            pressures = {name: max(sensor(), 0.0)
                         for name, sensor in sorted(self.sensors.items())}
            if any(value > 0 for value in pressures.values()):
                weights = self.decide(pressures)
                self.budget.rebalance(weights, now=ctx.now)
                self.decisions += 1
            yield Sleep(self.period_ms)
