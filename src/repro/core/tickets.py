"""Tickets and currencies: the paper's resource-right object model.

Section 3 of the paper represents resource rights as **lottery tickets**
that are *abstract*, *relative*, and *uniform*, and introduces
**currencies** so that mutually trusting modules can denominate tickets
in local units while the effects of local inflation stay contained.
Section 4.3/4.4 describes the Mach kernel objects this module mirrors
(paper Figure 2):

* a **ticket** has an ``amount`` denominated in some ``currency`` and
  funds exactly one target -- either another currency (it sits on that
  currency's *backing* list) or a client such as a thread;
* a **currency** has a unique name, a list of *backing* tickets (its
  funding), a list of *issued* tickets (denominated in it), and an
  *active amount*: the sum of amounts of its issued tickets that are
  currently competing in lotteries.

A ticket's value in **base units** is the value of its denominating
currency multiplied by its share of that currency's active amount; a
currency's value is the sum of its backing tickets' values; a base-
currency ticket is worth its face amount (section 4.4, Figure 3).

Activation follows the paper exactly: tickets held by a thread activate
when the thread joins the run queue and deactivate when it leaves; when
a currency's active amount transitions zero <-> non-zero, the
(de)activation propagates to each of its backing tickets (section 4.4,
footnote 3's behaviour for blocked threads is implemented by the kernel
via ticket transfers).

The :class:`Ledger` facade owns the base currency, enforces acyclicity
of the funding graph, assigns unique names, and provides the
create/destroy/fund/unfund/value operations of the minimal kernel
interface (section 4.3), plus cached valuation ("currency conversions
can be accelerated by caching values or exchange rates").

Valuation caching happens at two levels, both with **exact**
invalidation (a cached value is only ever served when a recomputation
would produce the bit-identical float):

* each currency caches its base value per ledger epoch (any mutation
  bumps the epoch);
* each holder caches its :meth:`TicketHolder.funding`, invalidated
  along the funding graph's actual dependency edges -- a mutation of a
  currency's value or active amount invalidates exactly the holders
  downstream of it, so a draw over N statically funded threads costs N
  cached reads instead of N graph walks, and the tree scheduler can
  skip untouched members entirely.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Union

from repro.errors import (
    CurrencyCycleError,
    CurrencyError,
    TicketError,
)

__all__ = ["Ticket", "Currency", "TicketHolder", "Ledger", "FundingTarget",
           "set_funding_cache_enabled", "funding_cache_enabled"]

#: Escape hatch for the perf equivalence suite: with caching disabled,
#: every funding() call recomputes from the live graph (the pre-cache
#: behaviour), while the dirty-flag/watcher bookkeeping stays identical.
_funding_cache_enabled = True


def set_funding_cache_enabled(enabled: bool) -> bool:
    """Toggle holder funding caching; returns the previous setting.

    Test-only seam (see ``tests/perf/test_equivalence.py``): running the
    same seeded workload with the cache on and off must produce
    bit-identical dispatch streams and checkpoint checksums.
    """
    global _funding_cache_enabled
    previous = _funding_cache_enabled
    _funding_cache_enabled = bool(enabled)
    return previous


def funding_cache_enabled() -> bool:
    """Whether holder funding values are currently served from cache."""
    return _funding_cache_enabled


class TicketHolder:
    """A client that competes in lotteries by holding tickets.

    Kernel threads, mutexes-in-waiting, and experiment clients all
    derive from (or embed) this class.  A holder's *funding* is the sum
    of the base values of its currently active tickets.  The ``name`` is
    only for diagnostics.
    """

    __slots__ = ("name", "tickets", "_competing", "funding_currency",
                 "_funding_value", "_funding_dirty", "_funding_watcher")

    def __init__(self, name: str = "holder") -> None:
        self.name = name
        self.tickets: List[Ticket] = []
        #: True while this holder competes in lotteries; mirrors
        #: run-queue membership for kernel threads.
        self._competing = False
        #: Denomination of this holder's own tickets, consulted by
        #: :mod:`repro.core.transfers` when sizing a transfer out of a
        #: blocked holder; kernel threads set it to the task currency.
        self.funding_currency: Optional["Currency"] = None
        # Funding cache: recomputed lazily, invalidated exactly along
        # the funding graph's dependency edges (see module docstring).
        self._funding_value: float = 0
        self._funding_dirty = True
        #: Optional observer called with this holder when its cached
        #: funding is invalidated; the tree scheduler uses it to keep a
        #: dirty set instead of revaluing every member per draw.
        self._funding_watcher: Optional[Callable[["TicketHolder"], None]] = None

    # -- ticket bookkeeping ------------------------------------------------

    def _attach(self, ticket: "Ticket") -> None:
        self.tickets.append(ticket)
        self._invalidate_funding()
        if self._competing:
            ticket.activate()

    def _detach(self, ticket: "Ticket") -> None:
        self.tickets.remove(ticket)
        self._invalidate_funding()
        if ticket.active:
            ticket.deactivate()

    # -- funding-cache invalidation ----------------------------------------

    def _invalidate_funding(self) -> None:
        """Mark the cached funding stale and notify the watcher.

        Idempotent until the next :meth:`funding` call recomputes; the
        watcher therefore fires once per dirty period, which is exactly
        the granularity a scheduler's dirty set needs.
        """
        if not self._funding_dirty:
            self._funding_dirty = True
            if self._funding_watcher is not None:
                self._funding_watcher(self)

    def watch_funding(self, watcher: Callable[["TicketHolder"], None]) -> None:
        """Install the (single) funding-invalidation observer."""
        self._funding_watcher = watcher

    def unwatch_funding(self) -> None:
        """Remove the funding-invalidation observer (idempotent)."""
        self._funding_watcher = None

    # -- activation --------------------------------------------------------

    @property
    def competing(self) -> bool:
        """Whether this holder's tickets are active."""
        return self._competing

    def start_competing(self) -> None:
        """Activate all held tickets (thread joined the run queue)."""
        if self._competing:
            return
        self._competing = True
        for ticket in self.tickets:
            ticket.activate()

    def stop_competing(self) -> None:
        """Deactivate all held tickets (thread left the run queue)."""
        if not self._competing:
            return
        self._competing = False
        for ticket in self.tickets:
            if ticket.active:
                ticket.deactivate()

    # -- valuation ----------------------------------------------------------

    def funding(self) -> float:
        """Total base-unit value of this holder's active tickets.

        Served from the holder's cache when clean; the recomputation
        below is the defining sum, and invalidation is exact, so the
        cached and recomputed values are bit-identical by construction
        (proven by the perf equivalence suite against pinned replay
        checksums).
        """
        if self._funding_dirty or not _funding_cache_enabled:
            # Starts from int 0 exactly like the historical
            # sum()-over-generator so an unfunded holder still reports
            # int 0 in snapshot state trees (canonical JSON
            # distinguishes 0 from 0.0).
            total = 0
            for ticket in self.tickets:
                if ticket._active:
                    total = total + ticket.base_value()
            self._funding_value = total
            self._funding_dirty = False
        return self._funding_value

    def nominal_funding(self) -> float:
        """Base-unit value as if the whole funding graph were active.

        Used for reporting, for sizing ticket transfers out of blocked
        threads, and for the release lottery of lottery-scheduled
        mutexes; the CPU lottery itself only sees active tickets.
        """
        return sum(t.nominal_value() for t in self.tickets)

    def snapshot_state(self) -> dict:
        """Typed state tree for checkpointing (see ``repro.checkpoint``)."""
        return {
            "name": self.name,
            "competing": self._competing,
            "tickets": [_describe_ticket(t) for t in self.tickets],
            "funding": self.funding(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r} tickets={len(self.tickets)}>"


FundingTarget = Union["Currency", TicketHolder]


def _describe_ticket(ticket: "Ticket") -> dict:
    """Serializable description of one ticket (checkpoint state trees).

    Tickets have no stable identity of their own; they are described by
    (currency, amount, target, active, tag), which is unambiguous in the
    deterministic creation order the lists preserve.
    """
    target = ticket.target
    if target is None:
        target_desc: Optional[str] = None
    elif isinstance(target, Currency):
        target_desc = f"currency:{target.name}"
    else:
        target_desc = f"holder:{target.name}"
    return {
        "currency": ticket.currency.name,
        "amount": ticket.amount,
        "target": target_desc,
        "active": ticket.active,
        "tag": ticket.tag,
    }


class Ticket:
    """A lottery ticket: an ``amount`` denominated in a ``currency``.

    Tickets are first-class objects (they can be transferred between
    holders, section 3.1) and fund exactly one target at a time.  A
    single Ticket may represent any number of logical tickets (paper
    footnote 1): ``amount`` is that multiplicity.
    """

    __slots__ = ("currency", "_amount", "target", "_active", "tag",
                 "_destroyed")

    def __init__(self, currency: "Currency", amount: float, tag: str = "") -> None:
        if amount < 0:
            raise TicketError(f"ticket amount must be non-negative, got {amount}")
        self.currency = currency
        # Amounts are real-valued by design (fractional transfers and
        # inflation); the sanitizer checks conservation with tolerances.
        self._amount = float(amount)  # repro: noqa[RPR004] -- real-valued by design
        self.target: Optional[FundingTarget] = None
        self._active = False
        #: Free-form label ("transfer", "compensation", ...) for tracing.
        self.tag = tag
        self._destroyed = False
        currency._issued.append(self)

    # -- amount -------------------------------------------------------------

    @property
    def amount(self) -> float:
        """Face amount in the denominating currency's units."""
        return self._amount

    def set_amount(self, amount: float) -> None:
        """Change the face amount (ticket inflation/deflation, section 3.2).

        If the ticket is active the currency's active amount is adjusted
        so the next lottery immediately reflects the new allocation.
        """
        if amount < 0:
            raise TicketError(f"ticket amount must be non-negative, got {amount}")
        # See __init__: amounts are real-valued, conservation is
        # tolerance-checked by the sanitizer.
        amount = float(amount)  # repro: noqa[RPR004] -- real-valued by design
        if self._active:
            self.currency._adjust_active(amount - self._amount)
        self._amount = amount
        if self._active:
            # _adjust_active invalidates downstream of sibling tickets;
            # a base-denominated ticket (whose value IS its amount) is
            # exempt from that walk, so cover our own target here.
            self._invalidate_target()
        self.currency._ledger._bump_epoch()

    # -- funding edges -------------------------------------------------------

    def fund(self, target: FundingTarget) -> None:
        """Direct this ticket's value at a currency or a client."""
        if self._destroyed:
            raise TicketError("cannot fund a destroyed ticket")
        if self.target is not None:
            raise TicketError(f"ticket already funds {self.target!r}; unfund first")
        if isinstance(target, Currency):
            self.currency._ledger._check_acyclic(self.currency, target)
            target._backing.append(self)
            self.target = target
            # A backing ticket is active iff the funded currency has
            # active consumers (paper section 4.4).
            if target.active_amount > 0:
                self.activate()
        else:
            self.target = target
            target._attach(self)
        self.currency._ledger._bump_epoch()

    def unfund(self) -> None:
        """Withdraw this ticket from whatever it currently funds."""
        if self.target is None:
            return
        if isinstance(self.target, Currency):
            self.target._backing.remove(self)
            if self._active:
                self.deactivate()
            self.target = None
        else:
            holder = self.target
            self.target = None
            holder._detach(self)
        self.currency._ledger._bump_epoch()

    # -- activation ----------------------------------------------------------

    @property
    def active(self) -> bool:
        """True while this ticket competes (directly or via its currency)."""
        return self._active

    def activate(self) -> None:
        """Mark this ticket active and propagate into its denomination."""
        if self._active:
            return
        self._active = True
        self.currency._adjust_active(self._amount)
        self._invalidate_target()

    def deactivate(self) -> None:
        """Mark this ticket inactive and propagate into its denomination."""
        if not self._active:
            return
        self._active = False
        self.currency._adjust_active(-self._amount)
        self._invalidate_target()

    def _invalidate_target(self) -> None:
        """Invalidate whatever this ticket's value flows into.

        A holder target's cached funding goes stale directly; a currency
        target's value changed, which cascades to everything funded
        downstream of it.
        """
        target = self.target
        if target is None:
            return
        if isinstance(target, Currency):
            target._invalidate_downstream()
        else:
            target._invalidate_funding()

    # -- valuation -----------------------------------------------------------

    def base_value(self) -> float:
        """This ticket's value in base units (paper section 4.4).

        An inactive ticket is worth nothing to a lottery.  The value is
        the denominating currency's base value times this ticket's share
        of the currency's active amount.
        """
        if not self._active:
            return 0.0
        currency = self.currency
        if currency.is_base:
            return self._amount
        denominator = currency.active_amount
        if denominator <= 0:
            return 0.0
        return currency.base_value() * (self._amount / denominator)

    def nominal_value(self) -> float:
        """Value in base units as if the entire funding graph were active.

        Answers "what would this ticket be worth if everything competed":
        the denominating currency's *nominal* value times this ticket's
        share of the currency's total issue.  Unlike :meth:`base_value`,
        this is well-defined for a blocked (deactivated) holder, which is
        what mutex release lotteries and transfer sizing need.
        """
        currency = self.currency
        if currency.is_base:
            return self._amount
        issued = currency.issued_amount()
        if issued <= 0:
            return 0.0
        return currency.nominal_base_value() * (self._amount / issued)

    def destroy(self) -> None:
        """Remove this ticket from the system entirely (terminal)."""
        self.unfund()
        if self in self.currency._issued:
            self.currency._issued.remove(self)
        self._destroyed = True
        self.currency._ledger._bump_epoch()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "active" if self._active else "inactive"
        return (
            f"<Ticket {self._amount:g}.{self.currency.name}"
            f" -> {getattr(self.target, 'name', None)!r} {state}>"
        )


class Currency:
    """A named denomination for tickets (paper sections 3.3 and 4.4)."""

    __slots__ = ("name", "is_base", "_ledger", "_backing", "_issued",
                 "_active_amount", "_cached_value", "_cached_epoch")

    def __init__(self, name: str, ledger: "Ledger", is_base: bool = False) -> None:
        self.name = name
        self.is_base = is_base
        self._ledger = ledger
        #: Tickets funding this currency (its income).
        self._backing: List[Ticket] = []
        #: Tickets denominated in this currency (its issue).
        self._issued: List[Ticket] = []
        #: Sum of amounts of currently active issued tickets.
        self._active_amount = 0.0
        # Valuation cache: (ledger epoch, value).
        self._cached_value: Optional[float] = None
        self._cached_epoch = -1

    # -- structure -----------------------------------------------------------

    @property
    def backing(self) -> List[Ticket]:
        """Tickets that back (fund) this currency."""
        return list(self._backing)

    @property
    def issued(self) -> List[Ticket]:
        """Tickets denominated in this currency."""
        return list(self._issued)

    @property
    def active_amount(self) -> float:
        """Sum of amounts of this currency's active issued tickets."""
        return self._active_amount

    def backing_currencies(self) -> Iterator["Currency"]:
        """Denominations of this currency's backing tickets."""
        for ticket in self._backing:
            yield ticket.currency

    # -- activation propagation -----------------------------------------------

    def _adjust_active(self, delta: float) -> None:
        """Apply an active-amount change, propagating 0 <-> non-zero edges."""
        was_active = self._active_amount > 0
        self._active_amount += delta
        if self._active_amount < 1e-9:
            self._active_amount = 0.0
        now_active = self._active_amount > 0
        if now_active and not was_active:
            for ticket in self._backing:
                ticket.activate()
        elif was_active and not now_active:
            for ticket in self._backing:
                ticket.deactivate()
        if not self.is_base:
            # A derived currency's per-unit value just moved, so every
            # issued ticket's base value moved with it.  The base
            # currency is exempt: its per-unit value is constant 1, and
            # base tickets are worth their face amount regardless of the
            # base active amount -- this exemption is what keeps a
            # dispatch over N base-funded threads at O(1) invalidations.
            self._invalidate_downstream()
        self._ledger._bump_epoch()

    def _invalidate_downstream(self) -> None:
        """Invalidate every holder funded (transitively) by this currency.

        Walks issued tickets to their targets, descending through
        currency targets; the funding graph is acyclic (enforced by
        :meth:`Ledger._check_acyclic`), and the visited set keeps
        diamond-shaped funding from re-walking a currency.
        """
        stack: List[Currency] = [self]
        visited = {id(self)}
        while stack:
            currency = stack.pop()
            for ticket in currency._issued:
                target = ticket.target
                if target is None:
                    continue
                if isinstance(target, Currency):
                    if id(target) not in visited:
                        visited.add(id(target))
                        stack.append(target)
                else:
                    target._invalidate_funding()

    # -- valuation -----------------------------------------------------------

    def base_value(self) -> float:
        """This currency's value in base units.

        The base currency is worth its active amount (each base ticket is
        worth its face value); every other currency is worth the sum of
        its backing tickets' base values.  Results are cached per ledger
        epoch, invalidated by any funding/activation mutation.
        """
        if self.is_base:
            return self._active_amount
        epoch = self._ledger._epoch
        if self._cached_epoch == epoch and self._cached_value is not None:
            return self._cached_value
        value = sum(t.base_value() for t in self._backing)
        self._cached_value = value
        self._cached_epoch = epoch
        return value

    def exchange_rate(self, other: "Currency") -> float:
        """Base value of one unit of ``self`` per one unit of ``other``.

        Both currencies must have active issue; a currency with zero
        active amount has no per-unit value.
        """
        mine = self.per_unit_value()
        theirs = other.per_unit_value()
        if theirs == 0:
            raise CurrencyError(
                f"currency {other.name!r} has no per-unit value (inactive)"
            )
        return mine / theirs

    def per_unit_value(self) -> float:
        """Base units per one unit of this currency (0 if inactive)."""
        if self.is_base:
            return 1.0
        if self._active_amount <= 0:
            return 0.0
        return self.base_value() / self._active_amount

    def issued_amount(self) -> float:
        """Sum of the amounts of all issued tickets, active or not."""
        return sum(t.amount for t in self._issued)

    def nominal_base_value(self) -> float:
        """Value in base units as if the whole funding graph were active.

        The base currency's nominal per-unit value is 1, so this is only
        meaningful for derived currencies: the sum of the backing
        tickets' nominal values.
        """
        if self.is_base:
            return self.issued_amount()
        return sum(t.nominal_value() for t in self._backing)

    def destroy(self) -> None:
        """Remove an empty currency from the ledger."""
        if self._issued:
            raise CurrencyError(
                f"cannot destroy currency {self.name!r}: {len(self._issued)} "
                "tickets still denominated in it"
            )
        for ticket in list(self._backing):
            ticket.unfund()
        self._ledger._remove_currency(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Currency {self.name!r} active={self._active_amount:g}"
            f" backing={len(self._backing)} issued={len(self._issued)}>"
        )


class Ledger:
    """Registry and factory for all tickets and currencies in a system.

    One Ledger per simulated machine.  It owns the unique **base**
    currency, guards the funding graph against cycles, and exports the
    paper's minimal kernel interface (section 4.3):

    * create and destroy tickets and currencies,
    * fund and unfund a currency or client,
    * compute current values of tickets and currencies in base units.
    """

    BASE_NAME = "base"

    def __init__(self) -> None:
        self._currencies: Dict[str, Currency] = {}
        self._epoch = 0
        self.base = Currency(self.BASE_NAME, self, is_base=True)
        self._currencies[self.BASE_NAME] = self.base

    # -- epochs (valuation-cache invalidation) ---------------------------------

    def _bump_epoch(self) -> None:
        self._epoch += 1

    # -- currency management ----------------------------------------------------

    def create_currency(self, name: str) -> Currency:
        """Create a named currency (``mkcur``)."""
        if name in self._currencies:
            raise CurrencyError(f"currency {name!r} already exists")
        currency = Currency(name, self)
        self._currencies[name] = currency
        self._bump_epoch()
        return currency

    def currency(self, name: str) -> Currency:
        """Look up a currency by name."""
        try:
            return self._currencies[name]
        except KeyError:
            raise CurrencyError(f"no such currency: {name!r}") from None

    def currencies(self) -> List[Currency]:
        """All currencies, base first, then by creation order."""
        return list(self._currencies.values())

    def _remove_currency(self, currency: Currency) -> None:
        if currency.is_base:
            raise CurrencyError("the base currency cannot be destroyed")
        self._currencies.pop(currency.name, None)
        self._bump_epoch()

    # -- ticket management --------------------------------------------------------

    def create_ticket(
        self,
        amount: float,
        currency: Optional[Union[Currency, str]] = None,
        fund: Optional[FundingTarget] = None,
        tag: str = "",
    ) -> Ticket:
        """Create a ticket (``mktkt``), optionally funding a target."""
        if currency is None:
            currency_obj = self.base
        elif isinstance(currency, str):
            currency_obj = self.currency(currency)
        else:
            currency_obj = currency
        if currency_obj._ledger is not self:
            raise TicketError("currency belongs to a different ledger")
        ticket = Ticket(currency_obj, amount, tag=tag)
        self._bump_epoch()
        if fund is not None:
            ticket.fund(fund)
        return ticket

    # -- graph validation -----------------------------------------------------------

    def _check_acyclic(self, denomination: Currency, funded: Currency) -> None:
        """Reject a funding edge that would create a valuation cycle.

        ``funded``'s value will depend on ``denomination``'s value; a
        cycle exists if ``denomination`` (transitively, through its own
        backing) already depends on ``funded``.
        """
        if denomination is funded:
            raise CurrencyCycleError(
                f"currency {funded.name!r} cannot be backed by its own tickets"
            )
        seen = set()
        stack = [denomination]
        while stack:
            current = stack.pop()
            if current is funded:
                raise CurrencyCycleError(
                    f"funding {funded.name!r} with {denomination.name!r} tickets "
                    "would create a cycle in the currency graph"
                )
            if id(current) in seen:
                continue
            seen.add(id(current))
            stack.extend(current.backing_currencies())

    # -- valuation helpers -------------------------------------------------------------

    def total_active_base(self) -> float:
        """Total active tickets in the base currency (the lottery's T)."""
        return self.base.active_amount

    def snapshot_state(self) -> dict:
        """Typed state tree for checkpointing (see ``repro.checkpoint``).

        Captures the full funding graph: every currency with its backing
        and issued ticket descriptions, active amounts, and the ledger
        epoch.  Unlike :meth:`snapshot` (a float-only diagnostics view
        for the CLI), this tree is meant for bit-exact comparison of two
        runs of the same recipe.
        """
        currencies = []
        for currency in self.currencies():
            currencies.append({
                "name": currency.name,
                "is_base": currency.is_base,
                "active_amount": currency.active_amount,
                "base_value": currency.base_value(),
                "backing": [_describe_ticket(t) for t in currency._backing],
                "issued": [_describe_ticket(t) for t in currency._issued],
            })
        return {
            "epoch": self._epoch,
            "total_active_base": self.total_active_base(),
            "currencies": currencies,
        }

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-currency view for diagnostics and the CLI ``lscur``."""
        report: Dict[str, Dict[str, float]] = {}
        for currency in self.currencies():
            report[currency.name] = {
                "active_amount": currency.active_amount,
                "base_value": currency.base_value(),
                "backing_tickets": float(len(currency._backing)),
                "issued_tickets": float(len(currency._issued)),
            }
        return report

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Ledger currencies={len(self._currencies)} epoch={self._epoch}>"
