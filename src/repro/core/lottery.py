"""Lottery draw mechanisms (paper section 4.2, Figure 1).

Three interchangeable implementations of "pick the client holding the
winning ticket":

* :class:`ListLottery` -- the paper prototype's structure: generate a
  random winning value in ``[0, total)``, then walk a client list
  accumulating a running ticket sum until it crosses the winning value.
  Optional **move-to-front** heuristic: frequently winning (i.e. highly
  funded) clients migrate toward the head, shortening the average
  search.  Optional **sorted** mode keeps clients ordered by decreasing
  value, the other optimization the paper suggests.
* :class:`TreeLottery` -- the O(log n) structure the paper recommends
  for large n: a binary tree of partial ticket sums (implemented as a
  Fenwick tree with a top-down prefix-sum descent), requiring only
  ``lg n`` additions and comparisons per draw.
* :func:`hold_lottery` -- a one-shot functional lottery over
  ``(client, value)`` pairs, used wherever a persistent structure is
  overkill (inverse lotteries, mutex wake-ups, tests).

All mechanisms draw their randomness from a
:class:`~repro.core.prng.ParkMillerPRNG` so identical seeds reproduce
identical scheduling histories.

Client values are *base-unit funding* and may be any non-negative
floats; clients whose value is zero can never win (the paper's
starvation-freedom claim applies to clients holding a non-zero number
of tickets).
"""

from __future__ import annotations

from typing import Callable, Generic, Hashable, List, Optional, Sequence, Tuple, TypeVar

from repro.core.prng import ParkMillerPRNG
from repro.errors import EmptyLotteryError, SchedulerError

__all__ = ["hold_lottery", "ListLottery", "TreeLottery", "DrawStats"]

ClientT = TypeVar("ClientT", bound=Hashable)


def hold_lottery(
    entries: Sequence[Tuple[ClientT, float]],
    prng: ParkMillerPRNG,
) -> ClientT:
    """Run one lottery over ``(client, value)`` pairs; return the winner.

    The winning ticket value is uniform on ``[0, total)``; the client
    whose running-sum interval contains it wins -- exactly Figure 1's
    procedure with real-valued ticket totals.
    """
    total = 0.0
    for _, value in entries:
        if value < 0:
            raise SchedulerError(f"negative lottery value {value!r}")
        total += value
    if total <= 0:
        raise EmptyLotteryError("lottery held with zero total tickets")
    winning = prng.uniform() * total
    accumulated = 0.0
    last_funded: Optional[ClientT] = None
    for client, value in entries:
        if value <= 0:
            continue
        accumulated += value
        last_funded = client
        if accumulated > winning:
            return client
    # Floating-point accumulation can land exactly on the boundary; the
    # final funded client owns the residual interval.
    assert last_funded is not None
    return last_funded


class DrawStats:
    """Counters describing how much work draws performed.

    ``draws`` is the number of lotteries held, ``comparisons`` the total
    clients examined (list) or tree levels descended (tree); their ratio
    is the average search length the paper's heuristics try to shrink.
    """

    __slots__ = ("draws", "comparisons")

    def __init__(self) -> None:
        self.draws = 0
        self.comparisons = 0

    def average_search_length(self) -> float:
        """Mean number of clients/levels examined per draw."""
        if self.draws == 0:
            return 0.0
        return self.comparisons / self.draws

    def reset(self) -> None:
        self.draws = 0
        self.comparisons = 0


class ListLottery(Generic[ClientT]):
    """List-based lottery with optional move-to-front / sorted heuristics.

    Parameters
    ----------
    value_of:
        Callback returning a client's current base-unit funding.  It is
        consulted afresh on every draw, so currency fluctuations and
        compensation tickets are always reflected in the very next
        allocation decision -- the responsiveness property of section 2.
    move_to_front:
        After each draw, move the winner to the head of the list.
    keep_sorted:
        Before each draw, order clients by decreasing value.  Mutually
        exclusive with ``move_to_front``.
    """

    def __init__(
        self,
        value_of: Callable[[ClientT], float],
        move_to_front: bool = True,
        keep_sorted: bool = False,
    ) -> None:
        if move_to_front and keep_sorted:
            raise SchedulerError("choose move_to_front or keep_sorted, not both")
        self._value_of = value_of
        self._move_to_front = move_to_front
        self._keep_sorted = keep_sorted
        self._clients: List[ClientT] = []
        self.stats = DrawStats()

    # -- membership -----------------------------------------------------------

    def add(self, client: ClientT) -> None:
        """Enter a client into subsequent lotteries."""
        if client in self._clients:
            raise SchedulerError(f"client {client!r} already in lottery")
        self._clients.append(client)

    def remove(self, client: ClientT) -> None:
        """Withdraw a client from subsequent lotteries."""
        try:
            self._clients.remove(client)
        except ValueError:
            raise SchedulerError(f"client {client!r} not in lottery") from None

    def __contains__(self, client: object) -> bool:
        return client in self._clients

    def __len__(self) -> int:
        return len(self._clients)

    def clients(self) -> List[ClientT]:
        """Current client order (head first)."""
        return list(self._clients)

    def head(self) -> ClientT:
        """The client at the head of the list (no copy)."""
        if not self._clients:
            raise EmptyLotteryError("lottery has no clients")
        return self._clients[0]

    # -- drawing ----------------------------------------------------------------

    def total(self) -> float:
        """Sum of all clients' current values."""
        return sum(self._value_of(c) for c in self._clients)

    def draw(self, prng: ParkMillerPRNG) -> ClientT:
        """Hold one lottery and return the winner.

        Raises :class:`~repro.errors.EmptyLotteryError` when no client
        has positive funding -- callers (the kernel) treat that as an
        idle CPU.
        """
        if not self._clients:
            raise EmptyLotteryError("lottery held with no clients")
        values = [self._value_of(c) for c in self._clients]
        total = sum(values)
        if total <= 0:
            raise EmptyLotteryError("lottery held with zero total funding")
        if self._keep_sorted:
            order = sorted(
                range(len(self._clients)), key=values.__getitem__, reverse=True
            )
            self._clients = [self._clients[i] for i in order]
            values = [values[i] for i in order]
        winning = prng.uniform() * total
        accumulated = 0.0
        winner_index = -1
        examined = 0
        for index, value in enumerate(values):
            examined += 1
            accumulated += value
            if value > 0 and accumulated > winning:
                winner_index = index
                break
        if winner_index < 0:
            # Floating-point boundary: last positive-value client wins.
            for index in range(len(values) - 1, -1, -1):
                if values[index] > 0:
                    winner_index = index
                    break
        winner = self._clients[winner_index]
        self.stats.draws += 1
        self.stats.comparisons += examined
        if self._move_to_front and winner_index > 0:
            del self._clients[winner_index]
            self._clients.insert(0, winner)
        return winner

    def snapshot_state(self, key: Callable[[ClientT], object] = repr) -> dict:
        """Typed state tree for checkpointing (see ``repro.checkpoint``).

        The client *order* is semantic state here: move-to-front
        reshuffles it on every draw, so two runs agree only if their
        list orders agree.  ``key`` maps clients to serializable ids.
        """
        return {
            "order": [key(client) for client in self._clients],
            "move_to_front": self._move_to_front,
            "keep_sorted": self._keep_sorted,
            "draws": self.stats.draws,
            "comparisons": self.stats.comparisons,
        }


class TreeLottery(Generic[ClientT]):
    """O(log n) lottery over a binary tree of partial ticket sums.

    Clients occupy slots in a Fenwick (binary indexed) tree holding
    their ticket values; a draw generates one random value and descends
    the implicit tree with ``lg n`` additions/comparisons, exactly the
    structure the paper proposes for large client populations and as
    the basis of a distributed lottery scheduler (section 4.2).

    Unlike :class:`ListLottery`, values are **stored**, not recomputed
    per draw: callers must push changes via :meth:`set_value`.  That is
    the honest cost model of the tree variant -- update O(log n), draw
    O(log n).
    """

    def __init__(self) -> None:
        self._tree: List[float] = [0.0]  # 1-indexed Fenwick array
        self._values: List[float] = []  # slot -> value
        self._clients: List[Optional[ClientT]] = []  # slot -> client
        self._slot_of: dict = {}
        self._free_slots: List[int] = []
        self.stats = DrawStats()

    # -- membership -----------------------------------------------------------

    def add(self, client: ClientT, value: float) -> None:
        """Insert a client with an initial ticket value."""
        if client in self._slot_of:
            raise SchedulerError(f"client {client!r} already in lottery")
        if value < 0:
            raise SchedulerError(f"negative lottery value {value!r}")
        if self._free_slots:
            slot = self._free_slots.pop()
            self._clients[slot] = client
            self._slot_of[client] = slot
            self._values[slot] = value
            self._fenwick_refresh(slot)
        else:
            slot = len(self._values)
            self._values.append(0.0)
            self._clients.append(client)
            self._tree.append(0.0)
            self._rebuild_tail(slot)
            self._slot_of[client] = slot
            self._values[slot] = value
            self._fenwick_refresh(slot)

    def remove(self, client: ClientT) -> None:
        """Withdraw a client; its slot is recycled."""
        slot = self._require_slot(client)
        self._values[slot] = 0.0
        self._fenwick_refresh(slot)
        self._clients[slot] = None
        del self._slot_of[client]
        self._free_slots.append(slot)

    def __contains__(self, client: object) -> bool:
        return client in self._slot_of

    def __len__(self) -> int:
        return len(self._slot_of)

    # -- values ------------------------------------------------------------------

    def set_value(self, client: ClientT, value: float) -> None:
        """Update a client's ticket value (O(log n); no-op if unchanged).

        Skipping an identical value is bit-exact: every Fenwick node is
        recomputed from the stored values (see :meth:`_fenwick_refresh`),
        so an update that does not change ``_values`` cannot change any
        node either.
        """
        if value < 0:
            raise SchedulerError(f"negative lottery value {value!r}")
        slot = self._require_slot(client)
        if self._values[slot] == value:
            return
        self._values[slot] = value
        self._fenwick_refresh(slot)

    def value_of(self, client: ClientT) -> float:
        """Current stored value for a client."""
        return self._values[self._require_slot(client)]

    def total(self) -> float:
        """Sum of all clients' stored values."""
        return self._prefix_sum(len(self._values))

    # -- drawing -------------------------------------------------------------------

    def draw(self, prng: ParkMillerPRNG) -> ClientT:
        """Hold one lottery; O(log n) additions and comparisons."""
        total = self.total()
        if total <= 0:
            raise EmptyLotteryError("lottery held with zero total funding")
        winning = prng.uniform() * total
        slot, levels = self._find_prefix(winning)
        self.stats.draws += 1
        self.stats.comparisons += levels
        client = self._clients[slot]
        if client is None or self._values[slot] <= 0:
            # Float-boundary fallback: scan for the last funded slot.
            for index in range(len(self._values) - 1, -1, -1):
                if self._clients[index] is not None and self._values[index] > 0:
                    client = self._clients[index]
                    break
        assert client is not None
        return client

    def snapshot_state(self, key: Callable[[ClientT], object] = repr) -> dict:
        """Typed state tree for checkpointing (see ``repro.checkpoint``).

        Slot layout matters: the Fenwick descent visits slots in index
        order, so slot assignment and the free-slot stack are captured
        alongside the stored values.  ``key`` maps clients to
        serializable ids.
        """
        return {
            "slots": [
                {
                    "client": None if client is None else key(client),
                    "value": self._values[slot],
                }
                for slot, client in enumerate(self._clients)
            ],
            "free_slots": list(self._free_slots),
            "total": self.total(),
            "draws": self.stats.draws,
            "comparisons": self.stats.comparisons,
        }

    # -- Fenwick internals -----------------------------------------------------------

    def _require_slot(self, client: ClientT) -> int:
        try:
            return self._slot_of[client]
        except KeyError:
            raise SchedulerError(f"client {client!r} not in lottery") from None

    def _node_sum(self, index: int) -> float:
        """Exact sum for one Fenwick node: own value + child nodes."""
        low = index & -index
        node = self._values[index - 1]
        step = 1
        while step < low:
            node += self._tree[index - step]
            step <<= 1
        return node

    def _fenwick_refresh(self, slot: int) -> None:
        """Recompute the nodes covering ``slot`` from current values.

        Propagating signed deltas (the textbook Fenwick update) leaves
        float cancellation residue behind once large values are removed
        -- the tree's total would drift away from the sum of the
        surviving values.  Recomputing each affected node bottom-up
        keeps every node a fresh sum of *current* values, at
        O(log^2 n) per update (draws stay O(log n)).
        """
        index = slot + 1
        while index < len(self._tree):
            self._tree[index] = self._node_sum(index)
            index += index & -index

    def _prefix_sum(self, count: int) -> float:
        total = 0.0
        index = count
        while index > 0:
            total += self._tree[index]
            index -= index & -index
        return total

    def _rebuild_tail(self, slot: int) -> None:
        """Fix the new Fenwick node's partial sum after an append."""
        self._tree[slot + 1] = self._node_sum(slot + 1)

    def _find_prefix(self, target: float) -> Tuple[int, int]:
        """Smallest slot whose prefix sum exceeds ``target``.

        Returns ``(slot, levels_descended)``; the descent is the tree
        traversal of paper Figure 1 generalized to partial sums.
        """
        index = 0
        levels = 0
        bit = 1
        while bit * 2 <= len(self._tree) - 1:
            bit *= 2
        remaining = target
        while bit > 0:
            nxt = index + bit
            if nxt < len(self._tree):
                levels += 1
                if self._tree[nxt] <= remaining:
                    remaining -= self._tree[nxt]
                    index = nxt
            bit //= 2
        return index, max(levels, 1)  # slot is `index` (0-based slot = index)
