"""Ticket inflation and dynamic funding control (paper sections 3.2, 5.2).

**Ticket inflation** lets a client escalate its resource rights by
creating more tickets in a currency it is allowed to inflate.  Among
mutually trusting clients this replaces explicit communication: a task
that needs to run faster simply inflates; the currency abstraction
contains the effect so unrelated modules are insulated (section 5.5).

This module provides:

* :func:`set_share` / :func:`inflate` / :func:`deflate` -- primitive
  adjustments on a holder's ticket within a currency;
* :class:`ErrorDrivenInflator` -- the Monte-Carlo controller of section
  5.2: each task periodically sets its ticket value proportional to the
  **square of its relative error**, so young experiments with large
  error race ahead and taper off as they converge (any monotonically
  increasing function of the error would converge; the square is the
  paper's choice, and :class:`ErrorDrivenInflator` accepts an arbitrary
  exponent so the linear/cubic variants the paper mentions can be
  explored).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.tickets import Currency, Ticket, TicketHolder
from repro.errors import InsufficientTicketsError, TicketError

__all__ = ["set_share", "inflate", "deflate", "ErrorDrivenInflator"]


def _holder_ticket(holder: TicketHolder, currency: Currency) -> Ticket:
    """The holder's (single) ticket denominated in ``currency``."""
    for ticket in holder.tickets:
        if ticket.currency is currency and ticket.tag != "compensation":
            return ticket
    raise TicketError(
        f"holder {holder.name!r} has no ticket in currency {currency.name!r}"
    )


def set_share(holder: TicketHolder, currency: Currency, amount: float) -> None:
    """Set the holder's ticket amount in ``currency`` to ``amount``."""
    _holder_ticket(holder, currency).set_amount(amount)


def inflate(holder: TicketHolder, currency: Currency, delta: float) -> None:
    """Increase the holder's ticket amount by ``delta`` (section 3.2)."""
    if delta < 0:
        raise TicketError(f"inflate requires a non-negative delta, got {delta}")
    ticket = _holder_ticket(holder, currency)
    ticket.set_amount(ticket.amount + delta)


def deflate(holder: TicketHolder, currency: Currency, delta: float) -> None:
    """Decrease the holder's ticket amount by ``delta``."""
    if delta < 0:
        raise TicketError(f"deflate requires a non-negative delta, got {delta}")
    ticket = _holder_ticket(holder, currency)
    if ticket.amount < delta:
        raise InsufficientTicketsError(
            f"cannot deflate {delta:g} from a {ticket.amount:g}-ticket"
        )
    ticket.set_amount(ticket.amount - delta)


class ErrorDrivenInflator:
    """Funding controller: ticket value proportional to error**exponent.

    Section 5.2 runs several Monte-Carlo experiments whose relative
    error shrinks as 1/sqrt(trials); each periodically sets its ticket
    value to ``scale * relative_error ** 2``.  A newly started
    experiment (error ~ 1) then executes at a rate that starts high and
    tapers, letting it catch up to its older peers -- the convergent
    "bumps" of Figure 6.

    Parameters
    ----------
    currency:
        The currency in which the managed tickets are denominated.
    scale:
        Ticket value for a relative error of 1.0.
    exponent:
        Power applied to the error (paper default: 2; a linear function
        converges more slowly, a cubic more rapidly -- section 5.2).
    floor:
        Minimum ticket value, keeping converged tasks schedulable.
    """

    def __init__(
        self,
        currency: Currency,
        scale: float = 1000.0,
        exponent: float = 2.0,
        floor: float = 1.0,
    ) -> None:
        if scale <= 0:
            raise TicketError(f"scale must be positive, got {scale}")
        if floor < 0:
            raise TicketError(f"floor must be non-negative, got {floor}")
        self.currency = currency
        self.scale = scale
        self.exponent = exponent
        self.floor = floor
        self._errors: Dict[int, float] = {}

    def update(self, holder: TicketHolder, relative_error: float) -> float:
        """Re-fund the holder from its current relative error.

        Returns the new ticket amount.  Errors are clamped to [0, 1]:
        a brand-new experiment with no samples reports error 1.
        """
        error = min(max(relative_error, 0.0), 1.0)
        amount = max(self.scale * error**self.exponent, self.floor)
        set_share(holder, self.currency, amount)
        self._errors[id(holder)] = error
        return amount

    def last_error(self, holder: TicketHolder) -> Optional[float]:
        """Most recent error reported for the holder (None if never)."""
        return self._errors.get(id(holder))


def make_periodic_updater(
    inflator: ErrorDrivenInflator,
    holder: TicketHolder,
    error_fn: Callable[[], float],
) -> Callable[[], float]:
    """Bind an inflator, holder, and error source into a zero-arg callback.

    Workload threads schedule the returned callable at their update
    period; it samples the current error and re-funds the holder.
    """

    def update() -> float:
        return inflator.update(holder, error_fn())

    return update
