"""Ticket transfers (paper sections 3.1 and 4.6).

A client that blocks on a dependency -- classically a synchronous RPC --
should not idle its resource rights: it **transfers** its tickets to the
server computing on its behalf, so server CPU time is charged at the
client's rate.  This also solves priority inversion in the manner of
priority inheritance (section 2's discussion, and the mutex use in
section 6.1).

The prototype implements a transfer by *creating a new ticket
denominated in the client's currency and using it to fund the server*
(section 4.6).  The elegance is in the activation rules: the blocked
client's own tickets are inactive (it left the run queue), so the
freshly minted transfer ticket -- the only active issue in the client's
currency -- captures the currency's entire value, whatever that value
becomes while the client waits.  On reply the transfer ticket is simply
destroyed.

:class:`TransferHandle` wraps one such minted ticket;
:func:`transfer_funding` and :func:`split_transfer` are the operations
the kernel IPC layer and lottery-scheduled mutexes build on.  Split
transfers across several servers (paper section 3.1) divide the amount
by the given weights.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.tickets import Currency, FundingTarget, Ledger, TicketHolder
from repro.errors import TicketError

__all__ = ["TransferHandle", "transfer_funding", "split_transfer"]


class TransferHandle:
    """One outstanding ticket transfer, revocable on reply.

    Holds the minted ticket; :meth:`revoke` destroys it (idempotent).
    The handle records the source for diagnostics and so mutex/IPC
    layers can re-route transfers when a waiter abandons.
    """

    def __init__(self, ledger: Ledger, source: TicketHolder, target: FundingTarget,
                 amount: float, currency: Currency) -> None:
        self.source = source
        self.target = target
        self._ticket = ledger.create_ticket(
            amount, currency=currency, fund=target, tag="transfer"
        )

    @property
    def active(self) -> bool:
        """Whether the transfer is still in force."""
        return self._ticket is not None

    @property
    def amount(self) -> float:
        """Face amount of the minted transfer ticket."""
        if self._ticket is None:
            return 0.0
        return self._ticket.amount

    def base_value(self) -> float:
        """Current base-unit value flowing through this transfer."""
        if self._ticket is None:
            return 0.0
        return self._ticket.base_value()

    def retarget(self, new_target: FundingTarget) -> None:
        """Redirect the transfer to a different recipient.

        Used when a lottery-scheduled mutex changes owner: waiter
        funding must follow the new owner.
        """
        if self._ticket is None:
            raise TicketError("cannot retarget a revoked transfer")
        self._ticket.unfund()
        self._ticket.fund(new_target)

    def revoke(self) -> None:
        """Destroy the transfer ticket, returning rights to the source."""
        if self._ticket is not None:
            self._ticket.destroy()
            self._ticket = None


def _transfer_denomination(
    ledger: Ledger, source: TicketHolder
) -> Tuple[Currency, float]:
    """Choose the currency and amount a transfer from ``source`` mints.

    If the source has a dedicated funding currency (kernel threads have
    their task's currency attached as ``funding_currency``), the
    transfer is denominated there with the source's nominal issue so it
    captures the currency's value while the source is blocked.
    Otherwise the transfer is denominated in base at the source's
    nominal funding.
    """
    currency: Optional[Currency] = getattr(source, "funding_currency", None)
    if currency is not None:
        amount = sum(
            t.amount for t in source.tickets if t.currency is currency
        )
        if amount > 0:
            return currency, amount
    return ledger.base, source.nominal_funding()


def transfer_funding(
    ledger: Ledger,
    source: TicketHolder,
    target: FundingTarget,
    fraction: float = 1.0,
) -> TransferHandle:
    """Transfer (a fraction of) the source's resource rights to ``target``.

    The source is normally blocked (its own tickets inactive); the
    minted ticket funds ``target`` -- a server thread, a server task
    currency, or a mutex currency -- until :meth:`TransferHandle.revoke`.
    """
    if not 0.0 < fraction <= 1.0:
        raise TicketError(f"transfer fraction must be in (0, 1], got {fraction}")
    currency, amount = _transfer_denomination(ledger, source)
    return TransferHandle(ledger, source, target, amount * fraction, currency)


def split_transfer(
    ledger: Ledger,
    source: TicketHolder,
    targets: Sequence[Tuple[FundingTarget, float]],
) -> List[TransferHandle]:
    """Divide the source's rights across several servers (section 3.1).

    ``targets`` is a sequence of ``(target, weight)``; each receives the
    weight's share of the source's transferable amount.
    """
    if not targets:
        raise TicketError("split_transfer requires at least one target")
    total_weight = sum(weight for _, weight in targets)
    if total_weight <= 0:
        raise TicketError("split_transfer weights must sum to a positive value")
    currency, amount = _transfer_denomination(ledger, source)
    handles = []
    for target, weight in targets:
        if weight < 0:
            raise TicketError(f"negative transfer weight {weight}")
        if weight == 0:
            continue
        share = amount * (weight / total_weight)
        handles.append(TransferHandle(ledger, source, target, share, currency))
    return handles
