"""Inverse lotteries for space-shared resources (paper section 6.2).

A normal lottery picks a *winner* to receive a unit of a time-shared
resource.  For finely divisible **space-shared** resources -- physical
memory pages are the paper's example -- the dual is needed: pick a
*loser* that must relinquish a unit it holds.  The paper's inverse
lottery selects client ``i`` with probability

    P[i] = (1 / (n - 1)) * (1 - t_i / T)

where ``n`` is the number of clients, ``t_i`` the client's tickets and
``T`` the ticket total: the more tickets a client holds, the less
likely it is to lose a unit.  The ``1/(n-1)`` factor normalizes the
probabilities to sum to one.

The paper further suggests a proportional-share page-replacement
policy: choose the victim's *owner* with probability proportional to
both ``(1 - t_i/T)`` and the fraction of physical memory the client
occupies; :func:`weighted_inverse_lottery` implements that composition
and :mod:`repro.mem` builds the replacement policy on it.
"""

from __future__ import annotations

from typing import Sequence, Tuple, TypeVar

from repro.core.lottery import hold_lottery
from repro.core.prng import ParkMillerPRNG
from repro.errors import EmptyLotteryError, SchedulerError

__all__ = [
    "inverse_probabilities",
    "inverse_lottery",
    "weighted_inverse_lottery",
]

ClientT = TypeVar("ClientT")


def inverse_probabilities(
    entries: Sequence[Tuple[ClientT, float]]
) -> Sequence[Tuple[ClientT, float]]:
    """Map ``(client, tickets)`` to ``(client, loss probability)``.

    Implements the section 6.2 formula.  Requires at least two clients
    (with one client there is no one else to protect, and the formula's
    ``n - 1`` denominator vanishes).
    """
    n = len(entries)
    if n < 2:
        raise SchedulerError("an inverse lottery requires at least two clients")
    total = 0.0
    for _, tickets in entries:
        if tickets < 0:
            raise SchedulerError(f"negative ticket count {tickets!r}")
        total += tickets
    if total <= 0:
        raise EmptyLotteryError("inverse lottery held with zero total tickets")
    factor = 1.0 / (n - 1)
    return [
        (client, factor * (1.0 - tickets / total)) for client, tickets in entries
    ]


def inverse_lottery(
    entries: Sequence[Tuple[ClientT, float]],
    prng: ParkMillerPRNG,
) -> ClientT:
    """Select a loser with probability (1/(n-1)) * (1 - t_i/T)."""
    weighted = inverse_probabilities(entries)
    return hold_lottery(weighted, prng)


def weighted_inverse_lottery(
    entries: Sequence[Tuple[ClientT, float, float]],
    prng: ParkMillerPRNG,
) -> ClientT:
    """Inverse lottery additionally weighted by resource usage.

    ``entries`` holds ``(client, tickets, usage)`` triples; a client is
    chosen with probability proportional to ``(1 - t_i/T) * usage_i``
    (section 6.2's victim-page policy, with ``usage`` the fraction of
    physical memory in use by the client).  Clients using none of the
    resource can never be chosen.
    """
    if len(entries) < 2:
        raise SchedulerError("an inverse lottery requires at least two clients")
    for _, tickets, usage in entries:
        if tickets < 0 or usage < 0:
            raise SchedulerError("negative tickets or usage in inverse lottery")
    total = sum(t for _, t, _ in entries)
    if total <= 0:
        raise EmptyLotteryError("inverse lottery held with zero total tickets")
    weighted = [
        (client, (1.0 - tickets / total) * usage)
        for client, tickets, usage in entries
    ]
    if all(w <= 0 for _, w in weighted):
        # Degenerate case: a single client holds every ticket *and* all
        # usage weight.  Fall back to usage-proportional selection so a
        # victim can still be produced.
        weighted = [(client, usage) for client, _, usage in entries]
    return hold_lottery(weighted, prng)
