"""Core lottery-scheduling mechanisms: the paper's primary contribution.

Exports the ticket/currency object model (section 3-4), the lottery
draw structures (section 4.2), compensation tickets (section 3.4),
ticket transfers (sections 3.1/4.6), inflation controllers (sections
3.2/5.2), inverse lotteries (section 6.2), and the Park-Miller PRNG the
prototype used (Appendix A).
"""

from repro.core.compensation import CompensationManager
from repro.core.inflation import ErrorDrivenInflator, deflate, inflate, set_share
from repro.core.inverse import (
    inverse_lottery,
    inverse_probabilities,
    weighted_inverse_lottery,
)
from repro.core.multiresource import (
    BottleneckManager,
    ResourceBudget,
    proportional_decide,
)
from repro.core.lottery import DrawStats, ListLottery, TreeLottery, hold_lottery
from repro.core.prng import MODULUS, MULTIPLIER, ParkMillerPRNG, fastrand
from repro.core.tickets import Currency, Ledger, Ticket, TicketHolder
from repro.core.transfers import TransferHandle, split_transfer, transfer_funding

__all__ = [
    "BottleneckManager",
    "CompensationManager",
    "Currency",
    "DrawStats",
    "ErrorDrivenInflator",
    "Ledger",
    "ListLottery",
    "ResourceBudget",
    "MODULUS",
    "MULTIPLIER",
    "ParkMillerPRNG",
    "Ticket",
    "TicketHolder",
    "TransferHandle",
    "TreeLottery",
    "deflate",
    "fastrand",
    "hold_lottery",
    "inflate",
    "inverse_lottery",
    "inverse_probabilities",
    "proportional_decide",
    "set_share",
    "split_transfer",
    "transfer_funding",
    "weighted_inverse_lottery",
]
