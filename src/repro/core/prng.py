"""Park-Miller minimal-standard pseudo-random number generator.

The paper's prototype selects winning tickets with the multiplicative
linear congruential generator of Park and Miller [Par88]:

    S' = (A * S) mod M,   A = 16807,  M = 2**31 - 1

implemented in ~10 RISC instructions using Carta's high/low-word
decomposition [Car90] (paper Appendix A).  This module reproduces both
the mathematical generator and the exact overflow-handling dance of the
MIPS assembly listing, so the stream of winning-ticket choices is
bit-for-bit the stream the prototype kernel would have produced.

Two interfaces are provided:

* :class:`ParkMillerPRNG` -- a seedable generator object with the
  convenience draws the schedulers need (``next_uint``, ``randrange``,
  ``uniform``, ``expovariate``).
* :func:`fastrand` -- the raw one-step transition function matching the
  ANSI prototype ``unsigned int fastrand(unsigned int s)`` from the
  appendix, for direct testing against the published algorithm.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Sequence, TypeVar

from repro.errors import ReproError

__all__ = [
    "MULTIPLIER",
    "MODULUS",
    "fastrand",
    "fastrand_reference",
    "ParkMillerPRNG",
]

#: Park-Miller "minimal standard" multiplier (paper Appendix A: ``li $8, 33614``
#: is 2*A folded into the Carta trick; the underlying A is 16807).
MULTIPLIER = 16807

#: Mersenne prime modulus 2**31 - 1.
MODULUS = 2**31 - 1

_T = TypeVar("_T")


def fastrand_reference(seed: int) -> int:
    """One step of the Park-Miller generator, straightforward form.

    Computes ``(MULTIPLIER * seed) % MODULUS`` directly.  Used as the
    oracle that :func:`fastrand` (the Carta-decomposition port of the
    paper's assembly) is tested against.
    """
    if not 0 < seed < MODULUS:
        raise ReproError(f"Park-Miller seed must be in (0, 2**31-1), got {seed}")
    return (MULTIPLIER * seed) % MODULUS


def fastrand(seed: int) -> int:
    """One step of the generator via Carta's decomposition [Car90].

    This mirrors the paper's MIPS assembly (Appendix A) operation for
    operation.  The assembly multiplies by ``33614 = 2 * 16807`` and then
    splits the 64-bit product of ``2*A*S`` into

    * ``Q`` = bits 0..31 of ``2*A*S`` shifted right once (i.e. low word
      of ``A*S``), and
    * ``P`` = bits 32..63 shifted left ... equivalently the high word of
      ``A*S`` doubled and re-halved;

    then forms ``S' = P + Q`` and folds any overflow past bit 31 back in
    (clear bit 31, add 1).  The net effect is ``(A*S) mod (2**31 - 1)``
    without a division.
    """
    if not 0 < seed < MODULUS:
        raise ReproError(f"Park-Miller seed must be in (0, 2**31-1), got {seed}")
    product = 2 * MULTIPLIER * seed  # multu $8: HI,LO = (2*A) * S
    lo = product & 0xFFFFFFFF
    hi = product >> 32
    q = lo >> 1  # srl $9, $9, 1: Q = bits 0..30 of A*S
    p = hi  # mfhi $10: P = bits 31..62 of A*S
    s_new = p + q  # addu $2: S' = P + Q
    if s_new & 0x80000000:  # bltz overflow branch: zero bit 31, add 1
        s_new = (s_new & 0x7FFFFFFF) + 1
    return s_new


class ParkMillerPRNG:
    """Seedable Park-Miller stream with scheduler-oriented helpers.

    The generator state is the last raw draw; successive calls walk the
    full period-(2**31 - 2) cycle.  All higher-level draws (range
    reduction, floats, permutations) are built only on :meth:`next_uint`
    so the underlying stream stays reproducible and testable.

    Parameters
    ----------
    seed:
        Initial state; any value is folded into ``[1, 2**31 - 2]``.
    """

    def __init__(self, seed: int = 1) -> None:
        self.reseed(seed)

    def reseed(self, seed: int) -> None:
        """Reset the stream. Any integer is accepted and folded into range."""
        state = int(seed) % MODULUS
        if state <= 0:
            state += MODULUS - 1
        if state >= MODULUS:
            state = 1
        self._state = state
        self._initial_seed = state

    @property
    def state(self) -> int:
        """Current raw generator state (the last value returned)."""
        return self._state

    @property
    def initial_seed(self) -> int:
        """The (folded) seed this stream started from."""
        return self._initial_seed

    def next_uint(self) -> int:
        """Advance one step; returns a value uniform on [1, 2**31 - 2]."""
        self._state = fastrand(self._state)
        return self._state

    def randrange(self, bound: int) -> int:
        """Uniform integer on ``[0, bound)``.

        Uses rejection sampling on the top of the range so small bounds
        are exactly uniform rather than merely approximately so -- a
        lottery over T tickets must give each ticket probability exactly
        1/T or the paper's fairness analysis (section 2.2) would acquire
        a systematic bias.
        """
        if bound <= 0:
            raise ReproError(f"randrange bound must be positive, got {bound}")
        if bound >= MODULUS:
            raise ReproError(f"randrange bound {bound} exceeds generator range")
        span = MODULUS - 1  # values 1..MODULUS-1 are equiprobable
        limit = span - span % bound
        while True:
            value = self.next_uint() - 1  # now uniform on [0, span)
            if value < limit:
                return value % bound

    def uniform(self) -> float:
        """Uniform float on [0, 1)."""
        return (self.next_uint() - 1) / (MODULUS - 1)

    def expovariate(self, rate: float) -> float:
        """Exponential variate with the given rate (mean ``1/rate``)."""
        if rate <= 0:
            raise ReproError(f"expovariate rate must be positive, got {rate}")
        u = self.uniform()
        # Guard the log: uniform() can return exactly 0.0.
        return -math.log(1.0 - u) / rate

    def choice(self, items: Sequence[_T]) -> _T:
        """Uniformly select one element of a non-empty sequence."""
        if not items:
            raise ReproError("choice requires a non-empty sequence")
        return items[self.randrange(len(items))]

    def shuffle(self, items: List[_T]) -> None:
        """In-place Fisher-Yates shuffle driven by this stream."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randrange(i + 1)
            items[i], items[j] = items[j], items[i]

    def spawn(self) -> "ParkMillerPRNG":
        """Derive an independent-ish child stream.

        The child seed is the next draw XOR a decorrelating constant:
        seeding with the raw draw would start the child exactly one
        step ahead of the parent on the generator's single cycle,
        making the two streams identical.  The perturbed seed lands at
        an unrelated cycle offset.
        """
        return ParkMillerPRNG((self.next_uint() ^ 0x55AA55AA) & 0x7FFFFFFF)

    def iter_uints(self, count: int) -> Iterator[int]:
        """Yield the next ``count`` raw draws (testing convenience)."""
        for _ in range(count):
            yield self.next_uint()

    def snapshot_state(self) -> dict:
        """Typed state tree for checkpointing (see ``repro.checkpoint``).

        The whole stream position is one integer -- the last raw draw --
        so a restored generator continues bit-for-bit.
        """
        return {"state": self._state, "initial_seed": self._initial_seed}

    def restore_state(self, state: dict) -> None:
        """Re-position the stream from a :meth:`snapshot_state` tree."""
        value = int(state["state"])
        if not 0 < value < MODULUS:
            raise ReproError(
                f"Park-Miller snapshot state must be in (0, 2**31-1), got {value}")
        initial = int(state.get("initial_seed", value))
        if not 0 < initial < MODULUS:
            raise ReproError(
                f"Park-Miller snapshot seed must be in (0, 2**31-1), got {initial}")
        self._state = value
        self._initial_seed = initial

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ParkMillerPRNG(state={self._state})"
