"""Compensation tickets (paper sections 3.4 and 4.5).

A client that consumes only a fraction ``f`` of its allocated time
quantum would, under a plain lottery, receive ``f`` times its entitled
CPU share: it wins lotteries at the right rate but banks less CPU per
win.  The paper repairs this by granting the client a **compensation
ticket** that inflates its funding by ``1/f`` until the client starts
its next quantum, restoring consumption to ``rate * proportional
share`` and letting I/O-bound tasks that use few cycles start quickly.

Worked example from section 4.5: threads A and B each hold tickets
worth 400 base units; B always yields after 20 of its 100 ms quantum
(f = 1/5).  On yielding, B is granted a compensation ticket worth
400 * (5 - 1) = 1600 base units, so B competes with 2000 vs. A's 400
and wins five times as often -- exactly cancelling its 1/5-size turns.

The manager below grants real base-currency tickets (as the prototype
does), so compensation automatically interacts correctly with
currencies, transfers, and the run-queue activation rules.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.tickets import Ledger, Ticket, TicketHolder
from repro.errors import SchedulerError

__all__ = ["CompensationManager", "MIN_FRACTION"]

#: Quantum fractions below this are clamped to bound compensation values.
#: A thread that runs for ~0 time would otherwise receive unbounded
#: funding; the prototype's clock granularity imposes the same floor
#: (1 ms of a 100 ms quantum).
MIN_FRACTION = 0.01

#: Usage below this (virtual ms) reads as "consumed nothing": the
#: prototype's clock could not measure it, and 1/f would be unbounded.
MIN_MEASURABLE_USE = 1e-6


class CompensationManager:
    """Grants and revokes compensation tickets around quantum boundaries.

    The kernel calls :meth:`on_quantum_end` whenever a thread leaves the
    CPU, reporting how much of its quantum it used, and
    :meth:`on_quantum_start` when a thread is dispatched.  At most one
    compensation ticket exists per client at a time.
    """

    def __init__(self, ledger: Ledger) -> None:
        self._ledger = ledger
        self._grants: Dict[int, Ticket] = {}
        self._holders: Dict[int, TicketHolder] = {}
        #: Total compensation tickets granted (for overhead accounting).
        self.grants_issued = 0

    # -- kernel hooks ------------------------------------------------------

    def on_quantum_start(self, holder: TicketHolder) -> None:
        """Revoke any outstanding compensation when a full quantum begins."""
        self._revoke(holder)

    def on_quantum_end(
        self, holder: TicketHolder, used: float, quantum: float
    ) -> None:
        """Grant compensation if the holder under-used its quantum.

        ``used`` is CPU time actually consumed this dispatch; ``quantum``
        the full allocation.  Using the whole quantum (or more, if the
        clock overshoots) grants nothing.
        """
        if quantum <= 0:
            raise SchedulerError(f"quantum must be positive, got {quantum}")
        if used < 0:
            raise SchedulerError(f"negative usage {used}")
        self._revoke(holder)
        if used < MIN_MEASURABLE_USE:
            # Blocked before consuming measurable CPU: below the clock
            # granularity, no compensation is defined (1/f diverges).
            return
        fraction = used / quantum
        if fraction >= 1.0:
            return
        fraction = max(fraction, MIN_FRACTION)
        # Funding *excluding* compensation (just revoked above).  The
        # grant tops the client up to funding / fraction.  A *blocked*
        # holder's tickets are deactivated (funding() == 0), but it must
        # still be granted compensation -- that is precisely how the
        # paper's I/O-bound tasks "start quickly" when they wake -- so
        # fall back to the nominal (as-if-active) valuation.
        funding = holder.funding()
        if funding <= 0:
            funding = holder.nominal_funding()
        if funding <= 0:
            # Genuinely unfunded: nothing to compensate.
            return
        bonus = funding * (1.0 / fraction - 1.0)
        ticket = self._ledger.create_ticket(bonus, fund=holder, tag="compensation")
        self._grants[id(holder)] = ticket
        self._holders[id(holder)] = holder
        self.grants_issued += 1

    def on_holder_removed(self, holder: TicketHolder) -> None:
        """Clean up when a thread exits the system entirely."""
        self._revoke(holder)

    # -- inspection ------------------------------------------------------------

    def compensation_value(self, holder: TicketHolder) -> float:
        """Current compensation funding for a client (0 if none)."""
        ticket = self._grants.get(id(holder))
        return ticket.amount if ticket is not None else 0.0

    def outstanding(self) -> int:
        """Number of clients currently holding a compensation ticket."""
        return len(self._grants)

    def grants(self) -> List[Tuple[TicketHolder, Ticket]]:
        """Current (holder, compensation ticket) pairs, grant order.

        Exposed for the invariant sanitizer, which audits that every
        tracked grant still funds a live, non-running holder.
        """
        # Dict views preserve insertion (= grant) order and the
        # consumer is order-insensitive, so the iteration is safe.
        return [(self._holders[key], ticket)  # repro: noqa[RPR003] -- insertion order
                for key, ticket in self._grants.items()]

    def snapshot_state(self) -> dict:
        """Typed state tree for checkpointing (see ``repro.checkpoint``).

        Grants are keyed by holder *name* in grant order -- the stable,
        serializable identity two deterministic runs share (the ``id()``
        keys used internally are process-local and never serialized).
        """
        return {
            "grants_issued": self.grants_issued,
            "outstanding": [
                {"holder": holder.name, "amount": ticket.amount}
                for holder, ticket in self.grants()
            ],
        }

    # -- internals ----------------------------------------------------------------

    def _revoke(self, holder: TicketHolder) -> None:
        ticket: Optional[Ticket] = self._grants.pop(id(holder), None)
        self._holders.pop(id(holder), None)
        if ticket is not None:
            ticket.destroy()
