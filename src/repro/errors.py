"""Exception hierarchy for the lottery-scheduling reproduction.

Every error raised by the library derives from :class:`ReproError`, so
applications embedding the simulator can catch a single base class.  The
subtypes mirror the paper's object model: ticket/currency bookkeeping
errors, kernel/simulation errors, and experiment configuration errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class TicketError(ReproError):
    """Invalid operation on a :class:`~repro.core.tickets.Ticket`."""


class CurrencyError(ReproError):
    """Invalid operation on a :class:`~repro.core.tickets.Currency`."""


class CurrencyCycleError(CurrencyError):
    """A funding edge would make the currency graph cyclic.

    The paper requires currency relationships to form an acyclic graph
    (section 3.3); valuation would otherwise not terminate.
    """


class InsufficientTicketsError(TicketError):
    """A transfer or deflation asked for more tickets than are held."""


class EmptyLotteryError(ReproError):
    """A lottery was held with no active tickets (zero total)."""


class KernelError(ReproError):
    """Invalid kernel operation (bad thread state, unknown port, ...)."""


class ThreadStateError(KernelError):
    """A thread transitioned between incompatible states."""


class IpcError(KernelError):
    """Invalid IPC operation (dead port, reply without request, ...)."""


class SimulationError(ReproError):
    """The discrete-event engine detected an inconsistency."""


class SchedulerError(ReproError):
    """A scheduling policy was misused (unknown thread, double add...)."""


class ShardError(ReproError):
    """The sharded multicore engine was misconfigured or misused
    (bad plan, off-grid advance, dead worker, undeclared payload)."""


class FrameCorruptError(ShardError):
    """A checksummed pipe frame failed validation (bad shape, checksum
    mismatch, or non-JSON body) -- the supervised mp backend treats
    this as a host fault and recovers the emitting worker."""


class ExperimentError(ReproError):
    """An experiment was configured with invalid parameters."""


class FaultError(ReproError):
    """A fault plan or injector was misconfigured.

    Raised by :mod:`repro.faults` for malformed fault schedules (bad
    rates, negative times, unknown fault kinds) and for injector misuse
    (unknown targets, double arming).  Note that *injected* faults do
    not raise -- they mutate the simulated system; this error is about
    the fault-injection machinery itself.
    """


class CheckpointError(ReproError):
    """A checkpoint could not be captured, written, read, or restored.

    Raised by :mod:`repro.checkpoint` for malformed or corrupted
    checkpoint files (bad schema version, checksum mismatch, unknown
    recipe) and for capture-time problems (snapshotting a system in an
    incoherent state).
    """


class DivergenceError(CheckpointError):
    """A restored run diverged from its checkpoint or reference trace.

    The message pinpoints the first mismatch: the state-tree path where
    a restored system differs from the saved tree, or the first
    (time, thread, draw) replay event that disagrees between streams.
    """


class DeterminismRaceError(ReproError):
    """Cross-owner mutation of kernel state outside a barrier seam.

    Raised by :mod:`repro.analysis.races` (the determinism-race
    sanitizer, active under ``REPRO_SANITIZE=1``) when code running in
    one kernel's execution context mutates an object owned by another
    kernel without passing through a declared barrier seam (IPC reply
    or delivery, cluster migration/evacuation/crash).  Such mutations
    are exactly the ones that become order-dependent -- and therefore
    break bit-exact replay -- once the engine is sharded.
    """


class InvariantViolation(ReproError):
    """A runtime invariant of the ticket/scheduling machinery failed.

    Raised by :mod:`repro.analysis.sanitizer` when ticket conservation,
    currency-graph consistency, run-queue membership, or the
    compensation-ticket lifetime is violated; the message names the
    offending thread, ticket, or currency.
    """
