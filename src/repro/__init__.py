"""repro: a reproduction of Waldspurger & Weihl's lottery scheduling (OSDI '94).

A pure-Python discrete-event reimplementation of the paper's entire
system: the ticket/currency resource-rights model, lottery and inverse
lotteries, compensation tickets, ticket transfers over IPC, a simulated
microkernel with pluggable scheduling policies (lottery plus classical
baselines), lottery-scheduled synchronization, memory and I/O
generalizations, the paper's workloads, and experiment drivers that
regenerate every figure in the evaluation.

Quickstart::

    from repro import simulate_shares

    shares = simulate_shares({"A": 2, "B": 1}, duration_ms=60_000, seed=7)
    print(shares)   # {'A': ~0.667, 'B': ~0.333}
"""

from typing import Dict

from repro.core import (
    CompensationManager,
    Currency,
    ErrorDrivenInflator,
    Ledger,
    ListLottery,
    ParkMillerPRNG,
    Ticket,
    TicketHolder,
    TransferHandle,
    TreeLottery,
    fastrand,
    hold_lottery,
    inverse_lottery,
    transfer_funding,
)
from repro.kernel import Compute, Kernel, Port, Task, Thread
from repro.schedulers import (
    FairSharePolicy,
    FixedPriorityPolicy,
    LotteryPolicy,
    RoundRobinPolicy,
    SchedulingPolicy,
    StridePolicy,
    TimesharingPolicy,
)
from repro.sim import Engine
from repro.sync import Condition, LotteryMutex, Mutex, Semaphore

__version__ = "1.0.0"

__all__ = [
    "CompensationManager",
    "Compute",
    "Condition",
    "Currency",
    "Engine",
    "ErrorDrivenInflator",
    "FairSharePolicy",
    "FixedPriorityPolicy",
    "Kernel",
    "Ledger",
    "ListLottery",
    "LotteryMutex",
    "LotteryPolicy",
    "Mutex",
    "ParkMillerPRNG",
    "Port",
    "RoundRobinPolicy",
    "SchedulingPolicy",
    "Semaphore",
    "StridePolicy",
    "Task",
    "Thread",
    "Ticket",
    "TicketHolder",
    "TimesharingPolicy",
    "TransferHandle",
    "TreeLottery",
    "fastrand",
    "hold_lottery",
    "inverse_lottery",
    "simulate_shares",
    "transfer_funding",
    "__version__",
]


def simulate_shares(
    tickets: Dict[str, float],
    duration_ms: float = 60_000.0,
    quantum_ms: float = 100.0,
    seed: int = 1,
) -> Dict[str, float]:
    """Run compute-bound threads with the given ticket allocation.

    A convenience entry point: spawns one always-runnable thread per
    entry of ``tickets``, lottery-schedules them for ``duration_ms`` of
    virtual time, and returns each thread's observed CPU share.
    """
    engine = Engine()
    ledger = Ledger()
    policy = LotteryPolicy(ledger, prng=ParkMillerPRNG(seed))
    kernel = Kernel(engine, policy, ledger=ledger, quantum=quantum_ms)

    def spin(ctx):
        while True:
            yield Compute(quantum_ms)

    threads = {
        name: kernel.spawn(spin, name, tickets=amount)
        for name, amount in tickets.items()
    }
    kernel.run_until(duration_ms)
    total = sum(t.cpu_time for t in threads.values()) or 1.0
    return {name: t.cpu_time / total for name, t in threads.items()}
