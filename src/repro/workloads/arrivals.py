"""Deterministic open-loop arrival processes (seed + virtual time only).

The heavy-traffic serving arena (:mod:`repro.serving`) drives the
simulated kernel with *open-loop* request streams: arrival instants are
a pure function of a seed, never of service completions, so offered
load can exceed capacity and queues grow -- the regime where tail
latency, not mean throughput, is the verdict (see ``docs/SERVING.md``).

Three processes are provided, all built on the paper's Park-Miller
stream (:class:`repro.core.prng.ParkMillerPRNG`) and therefore
bit-reproducible across runs, platforms, and shard placements:

* :class:`PoissonArrivals` -- memoryless arrivals at a constant rate
  (inter-arrival CV = 1);
* :class:`MMPPArrivals` -- a two-state Markov-modulated Poisson
  process alternating calm and burst phases (CV > 1, the bursty
  traffic of flash crowds), time-averaged to the requested rate;
* :class:`DiurnalArrivals` -- a non-homogeneous Poisson process whose
  rate follows a sinusoidal day/night cycle, sampled exactly by
  Lewis-Shedler thinning (every candidate and acceptance draw comes
  from the one seeded stream).

Each process is an iterator-style object: ``next_arrival_ms()`` yields
the next absolute arrival instant in virtual milliseconds.  State is a
handful of scalars plus the PRNG position, so the processes checkpoint
through ``snapshot_state()`` like every other stateful object (see
``repro.checkpoint``).
"""

from __future__ import annotations

import hashlib
import math
from typing import Any, Dict, Iterator, List

from repro.core.prng import ParkMillerPRNG
from repro.errors import ReproError

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "MMPPArrivals",
    "DiurnalArrivals",
    "ARRIVAL_KINDS",
    "make_arrivals",
    "replay_digest",
]


class ArrivalProcess:
    """Base class: a seeded stream of absolute arrival instants (ms).

    Subclasses implement ``_interval_ms()`` -- the wait from the last
    arrival to the next one -- using only ``self.prng`` and their own
    scalar state, which is what keeps every stream a pure function of
    ``(kind, seed, parameters)``.
    """

    kind = "abstract"

    def __init__(self, seed: int, rate_per_s: float) -> None:
        if rate_per_s <= 0:
            raise ReproError(
                f"arrival rate must be positive: {rate_per_s}")
        self.rate_per_s = float(rate_per_s)
        self.prng = ParkMillerPRNG(seed)
        #: Virtual time of the last generated arrival (ms).
        self.clock_ms = 0.0
        #: Arrivals generated so far.
        self.emitted = 0

    # -- the generator ---------------------------------------------------

    def _interval_ms(self) -> float:
        raise NotImplementedError

    def next_arrival_ms(self) -> float:
        """Advance the stream one arrival; returns its absolute instant."""
        self.clock_ms += self._interval_ms()
        self.emitted += 1
        return self.clock_ms

    def take(self, count: int) -> List[float]:
        """The next ``count`` arrival instants (testing convenience)."""
        return [self.next_arrival_ms() for _ in range(count)]

    def iter_arrivals(self, count: int) -> Iterator[float]:
        """Yield the next ``count`` arrival instants lazily."""
        for _ in range(count):
            yield self.next_arrival_ms()

    # -- checkpointing -----------------------------------------------------

    def snapshot_state(self) -> Dict[str, Any]:
        """Typed state tree for checkpointing (see ``repro.checkpoint``)."""
        return {
            "kind": self.kind,
            "rate_per_s": self.rate_per_s,
            "prng": self.prng.snapshot_state(),
            "clock_ms": self.clock_ms,
            "emitted": self.emitted,
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Re-position the stream from a :meth:`snapshot_state` tree."""
        self.prng.restore_state(state["prng"])
        self.clock_ms = float(state["clock_ms"])
        self.emitted = int(state["emitted"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<{type(self).__name__} rate={self.rate_per_s:g}/s "
                f"emitted={self.emitted} t={self.clock_ms:.1f}ms>")


class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals: exponential inter-arrival times."""

    kind = "poisson"

    def _interval_ms(self) -> float:
        return self.prng.expovariate(self.rate_per_s / 1000.0)


class MMPPArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (bursty traffic).

    The stream alternates a *calm* phase and a *burst* phase whose
    rates differ by ``burst_factor``; phase dwell times are exponential
    with the burst phase ``burst_factor`` times shorter, so the
    time-averaged rate equals ``rate_per_s`` exactly:

        calm rate  = rate * (b + 1) / (2b)
        burst rate = rate * (b + 1) / 2
        E[dwell]   = mean_dwell_ms (calm), mean_dwell_ms / b (burst)

    Inter-arrival CV exceeds 1 for every ``burst_factor > 1`` -- the
    signature of bursty open-loop traffic.
    """

    kind = "mmpp"

    def __init__(self, seed: int, rate_per_s: float,
                 burst_factor: float = 4.0,
                 mean_dwell_ms: float = 2_000.0) -> None:
        super().__init__(seed, rate_per_s)
        if burst_factor <= 1.0:
            raise ReproError(
                f"burst factor must exceed 1: {burst_factor}")
        if mean_dwell_ms <= 0:
            raise ReproError(
                f"mean dwell must be positive: {mean_dwell_ms}")
        self.burst_factor = float(burst_factor)
        self.mean_dwell_ms = float(mean_dwell_ms)
        self._calm_rate = (rate_per_s * (burst_factor + 1.0)
                           / (2.0 * burst_factor))
        self._burst_rate = rate_per_s * (burst_factor + 1.0) / 2.0
        #: 0 = calm phase, 1 = burst phase.
        self._phase = 0
        #: Virtual instant the current phase's dwell ends.
        self._phase_until_ms = self.prng.expovariate(
            1.0 / self.mean_dwell_ms)

    def _phase_rate_per_ms(self) -> float:
        rate = self._burst_rate if self._phase else self._calm_rate
        return rate / 1000.0

    def _dwell_ms(self) -> float:
        mean = (self.mean_dwell_ms / self.burst_factor if self._phase
                else self.mean_dwell_ms)
        return self.prng.expovariate(1.0 / mean)

    def _interval_ms(self) -> float:
        # Walk dwell segments until an arrival lands inside one.  The
        # exponential's memorylessness makes the redraw after a phase
        # switch exact, and every draw comes from the single seeded
        # stream, so the walk is deterministic.
        cursor = self.clock_ms
        while True:
            wait = self.prng.expovariate(self._phase_rate_per_ms())
            if cursor + wait <= self._phase_until_ms:
                return cursor + wait - self.clock_ms
            cursor = self._phase_until_ms
            self._phase = 1 - self._phase
            self._phase_until_ms = cursor + self._dwell_ms()

    def snapshot_state(self) -> Dict[str, Any]:
        state = super().snapshot_state()
        state.update({
            "burst_factor": self.burst_factor,
            "mean_dwell_ms": self.mean_dwell_ms,
            "phase": self._phase,
            "phase_until_ms": self._phase_until_ms,
        })
        return state

    def restore_state(self, state: Dict[str, Any]) -> None:
        super().restore_state(state)
        self._phase = int(state["phase"])
        self._phase_until_ms = float(state["phase_until_ms"])


class DiurnalArrivals(ArrivalProcess):
    """Non-homogeneous Poisson arrivals on a sinusoidal day/night cycle.

    The instantaneous rate is ``rate * (1 + amplitude * sin(2pi t /
    period))``, sampled exactly by Lewis-Shedler thinning against the
    peak rate: candidates are drawn at the peak rate and accepted with
    probability ``rate(t) / peak`` -- both draws from the one seeded
    stream, so the accepted instants are a pure function of the seed.
    """

    kind = "diurnal"

    def __init__(self, seed: int, rate_per_s: float,
                 period_ms: float = 60_000.0,
                 amplitude: float = 0.8) -> None:
        super().__init__(seed, rate_per_s)
        if period_ms <= 0:
            raise ReproError(f"period must be positive: {period_ms}")
        if not 0.0 <= amplitude < 1.0:
            raise ReproError(
                f"amplitude must be in [0, 1): {amplitude}")
        self.period_ms = float(period_ms)
        self.amplitude = float(amplitude)
        self._peak_rate_per_ms = rate_per_s * (1.0 + amplitude) / 1000.0

    def rate_at(self, time_ms: float) -> float:
        """Instantaneous arrival rate (per second) at ``time_ms``."""
        phase = 2.0 * math.pi * time_ms / self.period_ms
        return self.rate_per_s * (1.0 + self.amplitude * math.sin(phase))

    def _interval_ms(self) -> float:
        cursor = self.clock_ms
        while True:
            cursor += self.prng.expovariate(self._peak_rate_per_ms)
            accept = (self.rate_at(cursor) / 1000.0
                      / self._peak_rate_per_ms)
            if self.prng.uniform() < accept:
                return cursor - self.clock_ms

    def snapshot_state(self) -> Dict[str, Any]:
        state = super().snapshot_state()
        state.update({
            "period_ms": self.period_ms,
            "amplitude": self.amplitude,
        })
        return state


#: kind -> class.  Write-once registry, like the recipe and body
#: registries; keys are the values of each class's ``kind`` attribute.
ARRIVAL_KINDS: Dict[str, type] = {
    PoissonArrivals.kind: PoissonArrivals,
    MMPPArrivals.kind: MMPPArrivals,
    DiurnalArrivals.kind: DiurnalArrivals,
}


def make_arrivals(kind: str, seed: int, rate_per_s: float,
                  **params: Any) -> ArrivalProcess:
    """Build an arrival process by kind name (plan/JSON friendly)."""
    try:
        cls = ARRIVAL_KINDS[kind]
    except KeyError:
        raise ReproError(
            f"unknown arrival kind {kind!r}; known: "
            f"{sorted(ARRIVAL_KINDS)}") from None
    return cls(seed, rate_per_s, **params)


def replay_digest(kind: str, seed: int, rate_per_s: float, count: int,
                  **params: Any) -> str:
    """sha256 over the first ``count`` arrival instants of a stream.

    The digest pins a stream's exact float sequence (via ``repr``, so
    no formatting loss), giving tests a one-line bit-reproducibility
    check per (kind, seed, rate) triple.
    """
    process = make_arrivals(kind, seed, rate_per_s, **params)
    text = ",".join(repr(t) for t in process.iter_arrivals(count))
    return hashlib.sha256(text.encode("ascii")).hexdigest()
