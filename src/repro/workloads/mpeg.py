"""MPEG viewer workload (Figure 8, section 5.4).

The paper runs three ``mpeg_play`` viewers displaying the same music
video and controls their relative frame rates purely through ticket
allocations (3:2:1, changed to 3:1:2 mid-run).  Decoding dominates when
run with ``-no_display``, so a viewer's frame rate is proportional to
its CPU share.  The simulated viewer decodes frames of configurable CPU
cost in a loop, recording each displayed frame against virtual time;
an optional target frame rate adds the sleep-until-deadline pacing a
real viewer performs when it is *not* CPU-starved.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.errors import ReproError
from repro.kernel.syscalls import Compute, Sleep, Syscall
from repro.kernel.thread import ThreadContext
from repro.metrics.counters import WindowedCounter

__all__ = ["MpegViewer"]


class MpegViewer:
    """A frame-decoding loop whose rate tracks its CPU share.

    Parameters
    ----------
    decode_ms:
        Virtual CPU cost to decode one frame.  The paper's observed
        rates of a few frames/sec on a shared CPU correspond to
        ~100 ms+ decode times on that hardware; the default of 100 ms
        reproduces per-second rates of the same magnitude.
    target_fps:
        Optional display deadline pacing: a viewer ahead of schedule
        sleeps until its next frame is due (only matters when its CPU
        share exceeds what the target rate needs).
    """

    def __init__(self, name: str, decode_ms: float = 100.0,
                 target_fps: Optional[float] = None) -> None:
        if decode_ms <= 0:
            raise ReproError("decode_ms must be positive")
        if target_fps is not None and target_fps <= 0:
            raise ReproError("target_fps must be positive when given")
        self.name = name
        self.decode_ms = decode_ms
        self.target_fps = target_fps
        self.counter = WindowedCounter(f"mpeg:{name}")

    @property
    def frames(self) -> float:
        """Total frames decoded and displayed."""
        return self.counter.total

    def frame_rate(self, start: float, end: float) -> float:
        """Average frames/sec over a virtual-time window."""
        if end <= start:
            return 0.0
        return self.counter.count_between(start, end) / (end - start) * 1000.0

    def body(self, ctx: ThreadContext) -> Generator[Syscall, None, None]:
        """Thread body: decode frames forever, pacing to target_fps if set."""
        frame_interval = (
            1000.0 / self.target_fps if self.target_fps is not None else None
        )
        next_deadline = ctx.now
        while True:
            yield Compute(self.decode_ms)
            self.counter.add(ctx.now, 1)
            if frame_interval is not None:
                next_deadline += frame_interval
                slack = next_deadline - ctx.now
                if slack > 0:
                    yield Sleep(slack)
                else:
                    # Behind schedule: drop the debt rather than racing
                    # (mpeg_play skips frames; the progress metric here
                    # is decoded frames either way).
                    next_deadline = ctx.now
