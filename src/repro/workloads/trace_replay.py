"""Trace-driven workloads: record, generate, and replay job streams.

The paper's experiments use steady synthetic applications; real systems
see *job streams* -- arrivals over time, each with its own CPU demand,
I/O pattern, and importance.  This module provides the substrate for
trace-driven evaluation:

* :class:`JobSpec` -- one job: arrival time, ticket funding, and a list
  of (cpu_ms, sleep_ms) phases;
* :class:`WorkloadTrace` -- an ordered collection of jobs with CSV
  round-tripping, so traces can be versioned alongside experiments;
* :func:`generate_poisson_trace` -- a synthetic open-arrival generator
  (Poisson arrivals, exponential service) driven by the reproducible
  Park-Miller stream;
* :class:`TraceReplayer` -- spawns each job on a kernel at its arrival
  time and records per-job response times (completion - arrival), the
  metric batch/interactive studies care about.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.prng import ParkMillerPRNG
from repro.errors import ReproError
from repro.kernel.kernel import Kernel
from repro.kernel.syscalls import Compute, Sleep
from repro.kernel.thread import Thread

__all__ = [
    "JobSpec",
    "WorkloadTrace",
    "TraceReplayer",
    "generate_poisson_trace",
]


@dataclass
class JobSpec:
    """One job in a trace."""

    name: str
    arrival_ms: float
    tickets: float
    #: Alternating (cpu_ms, sleep_ms) phases; sleep 0 = pure compute.
    phases: List[Tuple[float, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.arrival_ms < 0:
            raise ReproError(f"job {self.name!r}: negative arrival time")
        if self.tickets < 0:
            raise ReproError(f"job {self.name!r}: negative tickets")
        for cpu_ms, sleep_ms in self.phases:
            if cpu_ms < 0 or sleep_ms < 0:
                raise ReproError(f"job {self.name!r}: negative phase time")

    @property
    def total_cpu_ms(self) -> float:
        """CPU demand of the whole job."""
        return sum(cpu for cpu, _ in self.phases)


class WorkloadTrace:
    """An arrival-ordered list of jobs, serializable to CSV."""

    def __init__(self, jobs: Optional[Sequence[JobSpec]] = None) -> None:
        self.jobs: List[JobSpec] = sorted(
            jobs or [], key=lambda j: j.arrival_ms
        )

    def add(self, job: JobSpec) -> None:
        """Insert a job, keeping arrival order."""
        self.jobs.append(job)
        self.jobs.sort(key=lambda j: j.arrival_ms)

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self):
        return iter(self.jobs)

    def total_cpu_ms(self) -> float:
        """Aggregate CPU demand of the trace."""
        return sum(job.total_cpu_ms for job in self.jobs)

    # -- CSV round-trip --------------------------------------------------------
    # Format: name,arrival_ms,tickets,cpu0,sleep0,cpu1,sleep1,...

    def to_csv(self) -> str:
        """Serialize (header + one row per job)."""
        out = io.StringIO()
        out.write("name,arrival_ms,tickets,phases...\n")
        for job in self.jobs:
            cells = [job.name, f"{job.arrival_ms:g}", f"{job.tickets:g}"]
            for cpu_ms, sleep_ms in job.phases:
                cells.append(f"{cpu_ms:g}")
                cells.append(f"{sleep_ms:g}")
            out.write(",".join(cells) + "\n")
        return out.getvalue()

    @classmethod
    def from_csv(cls, text: str) -> "WorkloadTrace":
        """Parse the format written by :meth:`to_csv`."""
        jobs = []
        lines = [line for line in text.splitlines() if line.strip()]
        for line in lines[1:]:  # skip header
            cells = line.split(",")
            if len(cells) < 3 or (len(cells) - 3) % 2 != 0:
                raise ReproError(f"malformed trace row: {line!r}")
            phases = [
                (float(cells[i]), float(cells[i + 1]))
                for i in range(3, len(cells), 2)
            ]
            jobs.append(
                JobSpec(cells[0], float(cells[1]), float(cells[2]), phases)
            )
        return cls(jobs)


def generate_poisson_trace(
    count: int,
    arrival_rate_per_s: float = 1.0,
    mean_cpu_ms: float = 200.0,
    mean_sleep_ms: float = 0.0,
    phases_per_job: int = 2,
    tickets_choices: Sequence[float] = (100.0,),
    seed: int = 1,
) -> WorkloadTrace:
    """Synthetic open-arrival trace (Poisson/exponential)."""
    if count <= 0:
        raise ReproError("trace must contain at least one job")
    if arrival_rate_per_s <= 0 or mean_cpu_ms <= 0:
        raise ReproError("rates and demands must be positive")
    prng = ParkMillerPRNG(seed)
    jobs = []
    clock = 0.0
    for index in range(count):
        clock += prng.expovariate(arrival_rate_per_s / 1000.0)
        phases = []
        for _ in range(phases_per_job):
            cpu = prng.expovariate(1.0 / mean_cpu_ms)
            sleep = (prng.expovariate(1.0 / mean_sleep_ms)
                     if mean_sleep_ms > 0 else 0.0)
            phases.append((cpu, sleep))
        tickets = tickets_choices[prng.randrange(len(tickets_choices))]
        jobs.append(JobSpec(f"job{index}", clock, tickets, phases))
    return WorkloadTrace(jobs)


class TraceReplayer:
    """Spawns a trace's jobs on a kernel and collects response times."""

    def __init__(self, kernel: Kernel, trace: WorkloadTrace) -> None:
        self.kernel = kernel
        self.trace = trace
        #: job name -> (arrival, completion) once finished.
        self.completions: Dict[str, Tuple[float, float]] = {}
        self.threads: Dict[str, Thread] = {}

    def start(self) -> None:
        """Schedule every job's spawn at its arrival time."""
        for job in self.trace:
            self.kernel.engine.call_at(
                job.arrival_ms,
                lambda j=job: self._spawn(j),
                label=f"arrive:{job.name}",
            )

    def _spawn(self, job: JobSpec) -> None:
        def body(ctx):
            for cpu_ms, sleep_ms in job.phases:
                if cpu_ms > 0:
                    yield Compute(cpu_ms)
                if sleep_ms > 0:
                    yield Sleep(sleep_ms)
            self.completions[job.name] = (job.arrival_ms, ctx.now)

        self.threads[job.name] = self.kernel.spawn(
            body, job.name, tickets=job.tickets or None
        )

    # -- results ------------------------------------------------------------------

    def response_times(self) -> Dict[str, float]:
        """Completion - arrival per finished job (ms)."""
        return {
            name: done - arrived
            for name, (arrived, done) in self.completions.items()
        }

    def completed(self) -> int:
        """Jobs finished so far."""
        return len(self.completions)

    def mean_response_time(self) -> float:
        """Average response time of finished jobs (0 if none)."""
        times = list(self.response_times().values())
        if not times:
            return 0.0
        return sum(times) / len(times)

    def slowdowns(self) -> Dict[str, float]:
        """Response time over ideal (unloaded) duration per job."""
        ideal = {
            job.name: max(
                job.total_cpu_ms + sum(s for _, s in job.phases), 1e-9
            )
            for job in self.trace
        }
        return {
            name: elapsed / ideal[name]
            for name, elapsed in self.response_times().items()
        }
