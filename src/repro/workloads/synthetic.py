"""Parametric synthetic workloads (ablation and stress substrates).

Generic thread-body factories used by tests, ablation benchmarks, and
examples: pure CPU spinners, I/O-bound loops that use a fixed fraction
of each quantum (the compensation-ticket scenario of section 4.5),
bursty on/off tasks, and the mutex contenders of section 6.1.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.core.prng import ParkMillerPRNG
from repro.errors import ReproError
from repro.kernel.syscalls import (
    AcquireMutex,
    Compute,
    ReleaseMutex,
    Sleep,
    Syscall,
    YieldCPU,
)
from repro.kernel.thread import ThreadContext
from repro.metrics.counters import WindowedCounter
from repro.sync.mutex import MutexBase

__all__ = ["CpuBound", "FractionalQuantum", "Bursty", "MutexContender"]


class CpuBound:
    """Compute forever in fixed chunks, counting chunks completed."""

    def __init__(self, name: str, chunk_ms: float = 10.0) -> None:
        if chunk_ms <= 0:
            raise ReproError("chunk_ms must be positive")
        self.name = name
        self.chunk_ms = chunk_ms
        self.counter = WindowedCounter(f"cpu:{name}")

    def body(self, ctx: ThreadContext) -> Generator[Syscall, Any, None]:
        while True:
            yield Compute(self.chunk_ms)
            self.counter.add(ctx.now, 1)


class FractionalQuantum:
    """Use a fixed fraction of each quantum, then yield (section 4.5).

    The paper's thread B computes for 20 ms of each 100 ms quantum and
    yields; with compensation tickets its CPU *rate while running*
    drops but its lottery win rate rises by 5x, preserving its share.
    """

    def __init__(self, name: str, burst_ms: float = 20.0) -> None:
        if burst_ms <= 0:
            raise ReproError("burst_ms must be positive")
        self.name = name
        self.burst_ms = burst_ms
        self.counter = WindowedCounter(f"frac:{name}")

    def body(self, ctx: ThreadContext) -> Generator[Syscall, Any, None]:
        while True:
            yield Compute(self.burst_ms)
            self.counter.add(ctx.now, 1)
            yield YieldCPU()


class Bursty:
    """Alternate CPU bursts with off-CPU sleeps (interactive-ish load)."""

    def __init__(self, name: str, burst_ms: float = 5.0,
                 sleep_ms: float = 50.0) -> None:
        if burst_ms <= 0 or sleep_ms < 0:
            raise ReproError("burst_ms must be positive, sleep_ms non-negative")
        self.name = name
        self.burst_ms = burst_ms
        self.sleep_ms = sleep_ms
        self.counter = WindowedCounter(f"bursty:{name}")

    def body(self, ctx: ThreadContext) -> Generator[Syscall, Any, None]:
        while True:
            yield Compute(self.burst_ms)
            self.counter.add(ctx.now, 1)
            if self.sleep_ms > 0:
                yield Sleep(self.sleep_ms)


class MutexContender:
    """The section 6.1 loop: acquire, hold h ms, release, compute t ms.

    "Each thread repeatedly acquires the mutex, holds it for h
    milliseconds, releases the mutex, and computes for another t
    milliseconds."  Acquisition counts and waiting times are recorded
    by the mutex itself; the contender counts complete cycles.

    ``jitter`` varies each hold/compute burst by up to that fraction
    (real section times are never exact): without it, a 50+50 ms cycle
    aligns perfectly with a 100 ms quantum and the lock would never be
    observed held -- an artifact of idealized simulation, not of the
    mechanism under test.
    """

    def __init__(self, name: str, mutex: MutexBase, hold_ms: float = 50.0,
                 compute_ms: float = 50.0, jitter: float = 0.2,
                 seed: int = 1, max_cycles: Optional[int] = None) -> None:
        if hold_ms <= 0 or compute_ms < 0:
            raise ReproError("hold_ms must be positive, compute_ms non-negative")
        if not 0.0 <= jitter < 1.0:
            raise ReproError("jitter must lie in [0, 1)")
        self.name = name
        self.mutex = mutex
        self.hold_ms = hold_ms
        self.compute_ms = compute_ms
        self.jitter = jitter
        self.max_cycles = max_cycles
        self.counter = WindowedCounter(f"mutex:{name}")
        self._prng = ParkMillerPRNG(seed)

    def _jittered(self, base: float) -> float:
        if self.jitter == 0.0 or base == 0.0:
            return base
        return base * (1.0 + self.jitter * (2.0 * self._prng.uniform() - 1.0))

    def body(self, ctx: ThreadContext) -> Generator[Syscall, Any, None]:
        cycles = 0
        while self.max_cycles is None or cycles < self.max_cycles:
            yield AcquireMutex(self.mutex)
            yield Compute(self._jittered(self.hold_ms))
            yield ReleaseMutex(self.mutex)
            self.counter.add(ctx.now, 1)
            if self.compute_ms > 0:
                yield Compute(self._jittered(self.compute_ms))
            cycles += 1
