"""Multithreaded text-search client-server workload (Figure 7, §5.3).

The paper's server loads the Shakespeare corpus, forks worker threads,
and services case-insensitive substring-count queries from clients over
synchronous RPC.  Crucially, **the server holds no tickets of its own**:
it relies entirely on the tickets transferred from blocked clients, so
server CPU is consumed at each client's funded rate and both throughput
and response time track the 8:3:1 allocation.

This module wires the same structure onto the simulated kernel:

* :class:`DatabaseServer` -- owns the corpus, a request port, and N
  worker threads that loop ``Receive -> Compute(scan) -> Reply``.  The
  scan cost is proportional to corpus size; the *result* is a real
  substring count over the real generated corpus.
* :class:`DatabaseClient` -- issues back-to-back queries via ``Call``
  (which transfers its tickets) and records per-query response times.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from repro.errors import ReproError
from repro.kernel.ipc import Port, Request
from repro.kernel.kernel import Kernel
from repro.kernel.syscalls import Call, Compute, Receive, Reply, Syscall
from repro.kernel.thread import Thread, ThreadContext
from repro.metrics.counters import WindowedCounter
from repro.workloads.corpus import count_occurrences, generate_corpus

__all__ = ["DatabaseServer", "DatabaseClient"]

#: Virtual CPU ms to scan 1 KB of corpus (25 MHz-era string search).
DEFAULT_SCAN_MS_PER_KB = 0.4


class DatabaseServer:
    """The ticketless multithreaded search server.

    Parameters
    ----------
    kernel:
        The simulated machine to run on.
    workers:
        Worker thread count (the paper "forks off several").
    corpus_kb:
        Size of the generated corpus (paper: 4600 KB).
    scan_ms_per_kb:
        Virtual CPU cost per KB scanned per query.
    use_server_currency:
        Fund a server currency from client transfers (footnote-4 mode)
        instead of funding the receiving thread directly.
    """

    def __init__(
        self,
        kernel: Kernel,
        workers: int = 3,
        corpus_kb: float = 4600.0,
        scan_ms_per_kb: float = DEFAULT_SCAN_MS_PER_KB,
        corpus_seed: int = 1994,
        search_occurrences: int = 8,
        use_server_currency: bool = False,
    ) -> None:
        if workers <= 0:
            raise ReproError("server needs at least one worker thread")
        self.kernel = kernel
        self.corpus = generate_corpus(
            size_kb=corpus_kb, occurrences=search_occurrences, seed=corpus_seed
        )
        self.corpus_kb = len(self.corpus) / 1024.0
        self.scan_ms_per_kb = scan_ms_per_kb
        self.task = kernel.create_task("db-server")
        currency = None
        if use_server_currency:
            currency = kernel.ledger.create_currency("db-server")
            self.task.currency = currency
        self.port = Port(kernel, "db-requests", currency=currency)
        self.queries_served = 0
        self._result_cache: dict = {}
        # The server holds (essentially) no tickets of its own (paper
        # section 5.3) and runs on transferred client rights.  Each
        # worker gets one token base ticket so it can reach its first
        # Receive -- the analogue of the startup funding the real server
        # briefly had from the shell that launched it.
        self.worker_threads: List[Thread] = [
            kernel.spawn(
                self._worker_body, f"db-worker-{i}", task=self.task, tickets=1
            )
            for i in range(workers)
        ]
        if use_server_currency:
            # Threads in footnote-4 mode are backed by the server
            # currency so a transfer accelerates all of them.
            for thread in self.worker_threads:
                thread.fund_from(kernel.ledger, 100, currency=currency)

    # -- query execution ------------------------------------------------------------

    def _scan_cost(self) -> float:
        return self.corpus_kb * self.scan_ms_per_kb

    def _execute(self, search_string: str) -> int:
        """The real query: case-insensitive occurrence count (cached)."""
        key = search_string.lower()
        if key not in self._result_cache:
            self._result_cache[key] = count_occurrences(self.corpus, search_string)
        return self._result_cache[key]

    def _worker_body(self, ctx: ThreadContext) -> Generator[Syscall, Any, None]:
        while True:
            request: Request = yield Receive(self.port)
            # The scan burns CPU proportional to corpus size while the
            # worker runs on the client's transferred funding.
            yield Compute(self._scan_cost())
            result = self._execute(str(request.message))
            self.queries_served += 1
            yield Reply(request, result)


class DatabaseClient:
    """A funded client issuing back-to-back substring-count queries."""

    def __init__(
        self,
        kernel: Kernel,
        server: DatabaseServer,
        name: str,
        tickets: float,
        search_string: str = "lottery",
        max_queries: Optional[int] = None,
        think_ms: float = 1.0,
    ) -> None:
        if think_ms < 0:
            raise ReproError("think_ms must be non-negative")
        self.kernel = kernel
        self.server = server
        self.name = name
        self.search_string = search_string
        self.max_queries = max_queries
        self.think_ms = think_ms
        self.counter = WindowedCounter(f"queries:{name}")
        self.response_times: List[float] = []
        #: (completion virtual time, response time) per query.
        self.completions: List[tuple] = []
        self.results: List[int] = []
        task = kernel.create_task(f"client:{name}", create_currency=True)
        kernel.ledger.create_ticket(tickets, fund=task.currency)
        self.thread = kernel.spawn(
            self._body, name, task=task, tickets=100
        )

    @property
    def completed(self) -> int:
        """Queries answered so far."""
        return len(self.response_times)

    def mean_response_time(self) -> float:
        """Average per-query response time (ms)."""
        if not self.response_times:
            return 0.0
        return sum(self.response_times) / len(self.response_times)

    def _body(self, ctx: ThreadContext) -> Generator[Syscall, Any, None]:
        issued = 0
        while self.max_queries is None or issued < self.max_queries:
            if self.think_ms > 0:
                yield Compute(self.think_ms)
            started = ctx.now
            result = yield Call(self.server.port, self.search_string)
            elapsed = ctx.now - started
            self.response_times.append(elapsed)
            self.completions.append((ctx.now, elapsed))
            self.results.append(int(result))
            self.counter.add(ctx.now, 1)
            issued += 1
