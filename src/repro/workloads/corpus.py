"""Deterministic synthetic text corpus (the Shakespeare stand-in).

The paper's database server loads "a 4.6 Mbyte text file database
containing the complete text to all of William Shakespeare's plays" and
counts case-insensitive occurrences of a search string; the string
``lottery`` "incidentally occurs a total of 8 times in Shakespeare's
plays".  The plays are not shipped here, so this module generates a
reproducible pseudo-English corpus of any size with a chosen search
string planted an exact number of times -- preserving the two properties
the experiment needs: a large body of text to scan, and a known answer
to validate results against.
"""

from __future__ import annotations

from typing import List

from repro.core.prng import ParkMillerPRNG
from repro.errors import ReproError

__all__ = ["generate_corpus", "count_occurrences", "DEFAULT_SEARCH_STRING"]

DEFAULT_SEARCH_STRING = "lottery"

#: Elizabethan-flavoured filler vocabulary (none contain each other or
#: the default search string, so planted counts are exact).
_WORDS = [
    "thou", "art", "more", "temperate", "rough", "winds", "shake",
    "darling", "buds", "summer", "lease", "hath", "all", "too", "short",
    "date", "sometime", "hot", "eye", "heaven", "shines", "gold",
    "complexion", "dimmed", "fair", "from", "declines", "chance",
    "nature", "changing", "course", "untrimmed", "eternal", "shall",
    "not", "fade", "lose", "possession", "owest", "death", "brag",
    "wander", "shade", "when", "lines", "time", "grow", "long", "lives",
    "this", "gives", "life", "thee", "king", "crown", "sword", "castle",
    "knight", "forsooth", "prithee", "wherefore", "hence", "anon",
]

_PUNCTUATION = [".", ",", ";", ":", "!", "?"]


def generate_corpus(
    size_kb: float = 4600.0,
    search_string: str = DEFAULT_SEARCH_STRING,
    occurrences: int = 8,
    seed: int = 1994,
    line_words: int = 10,
) -> str:
    """Build a corpus of roughly ``size_kb`` kilobytes.

    The ``search_string`` is embedded exactly ``occurrences`` times at
    deterministic pseudo-random positions (case varied to exercise the
    case-insensitive search).  Raises if the filler vocabulary could
    collide with the search string.
    """
    if size_kb <= 0:
        raise ReproError(f"corpus size must be positive: {size_kb}")
    if occurrences < 0:
        raise ReproError(f"occurrences must be non-negative: {occurrences}")
    needle = search_string.lower()
    for word in _WORDS:
        if needle in word or word in needle:
            raise ReproError(
                f"search string {search_string!r} collides with filler word {word!r}"
            )
    prng = ParkMillerPRNG(seed)
    target_chars = int(size_kb * 1024)
    words: List[str] = []
    length = 0
    while length < target_chars:
        word = _WORDS[prng.randrange(len(_WORDS))]
        if prng.randrange(8) == 0:
            word += _PUNCTUATION[prng.randrange(len(_PUNCTUATION))]
        if len(words) % line_words == line_words - 1:
            word += "\n"
        words.append(word)
        length += len(word) + 1

    if occurrences > 0:
        if len(words) < occurrences:
            raise ReproError("corpus too small to plant the occurrences")
        stride = len(words) // occurrences
        for k in range(occurrences):
            position = k * stride + prng.randrange(max(stride // 2, 1))
            # Vary case so a naive case-sensitive search would miss some.
            planted = search_string.capitalize() if k % 3 == 0 else needle
            words[min(position, len(words) - 1)] = planted
    return " ".join(words)


def count_occurrences(corpus: str, search_string: str) -> int:
    """Case-insensitive substring count (the server's query operation)."""
    if not search_string:
        raise ReproError("search string must be non-empty")
    return corpus.lower().count(search_string.lower())
