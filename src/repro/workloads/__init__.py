"""The paper's application workloads, rebuilt on the simulated kernel."""

from repro.workloads.corpus import (
    DEFAULT_SEARCH_STRING,
    count_occurrences,
    generate_corpus,
)
from repro.workloads.database import DatabaseClient, DatabaseServer
from repro.workloads.dhrystone import ITERATION_MS, DhrystoneTask
from repro.workloads.montecarlo import (
    MonteCarloEstimator,
    MonteCarloTask,
    quarter_circle,
)
from repro.workloads.mpeg import MpegViewer
from repro.workloads.trace_replay import (
    JobSpec,
    TraceReplayer,
    WorkloadTrace,
    generate_poisson_trace,
)
from repro.workloads.synthetic import (
    Bursty,
    CpuBound,
    FractionalQuantum,
    MutexContender,
)

__all__ = [
    "Bursty",
    "CpuBound",
    "DEFAULT_SEARCH_STRING",
    "DatabaseClient",
    "DatabaseServer",
    "DhrystoneTask",
    "FractionalQuantum",
    "ITERATION_MS",
    "JobSpec",
    "MonteCarloEstimator",
    "MonteCarloTask",
    "MpegViewer",
    "MutexContender",
    "TraceReplayer",
    "WorkloadTrace",
    "count_occurrences",
    "generate_corpus",
    "generate_poisson_trace",
    "quarter_circle",
]
