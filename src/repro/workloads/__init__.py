"""The paper's application workloads, rebuilt on the simulated kernel."""

from repro.workloads.arrivals import (
    ARRIVAL_KINDS,
    ArrivalProcess,
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
    make_arrivals,
    replay_digest,
)
from repro.workloads.corpus import (
    DEFAULT_SEARCH_STRING,
    count_occurrences,
    generate_corpus,
)
from repro.workloads.database import DatabaseClient, DatabaseServer
from repro.workloads.dhrystone import ITERATION_MS, DhrystoneTask
from repro.workloads.montecarlo import (
    MonteCarloEstimator,
    MonteCarloTask,
    quarter_circle,
)
from repro.workloads.mpeg import MpegViewer
from repro.workloads.trace_replay import (
    JobSpec,
    TraceReplayer,
    WorkloadTrace,
    generate_poisson_trace,
)
from repro.workloads.synthetic import (
    Bursty,
    CpuBound,
    FractionalQuantum,
    MutexContender,
)

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalProcess",
    "Bursty",
    "CpuBound",
    "DEFAULT_SEARCH_STRING",
    "DatabaseClient",
    "DatabaseServer",
    "DhrystoneTask",
    "DiurnalArrivals",
    "FractionalQuantum",
    "ITERATION_MS",
    "JobSpec",
    "MMPPArrivals",
    "MonteCarloEstimator",
    "MonteCarloTask",
    "MpegViewer",
    "MutexContender",
    "PoissonArrivals",
    "TraceReplayer",
    "WorkloadTrace",
    "count_occurrences",
    "generate_corpus",
    "generate_poisson_trace",
    "make_arrivals",
    "quarter_circle",
    "replay_digest",
]
