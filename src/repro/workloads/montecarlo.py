"""Monte-Carlo integration workload with error-driven inflation (§5.2).

A real Monte-Carlo estimator (not a mock): each task integrates a
function over [0, 1] by uniform sampling, tracking the running mean and
variance (Welford), so its **relative error** -- standard error over
estimate -- genuinely shrinks as 1/sqrt(trials).  Following the paper,
each task periodically sets its ticket value proportional to the square
of its relative error, so freshly started experiments race ahead and
taper off as they converge (Figure 6).
"""

from __future__ import annotations

import math
from typing import Callable, Generator, Optional

from repro.core.inflation import ErrorDrivenInflator
from repro.core.prng import ParkMillerPRNG
from repro.errors import ReproError
from repro.kernel.syscalls import Compute, Syscall
from repro.kernel.thread import ThreadContext
from repro.metrics.counters import WindowedCounter

__all__ = ["MonteCarloEstimator", "MonteCarloTask", "quarter_circle"]


def quarter_circle(x: float) -> float:
    """sqrt(1 - x^2): integrates to pi/4 on [0, 1] (the classic demo)."""
    return math.sqrt(max(0.0, 1.0 - x * x))


class MonteCarloEstimator:
    """Streaming mean/variance estimator for a 1-D integral."""

    def __init__(self, fn: Callable[[float], float], seed: int = 1) -> None:
        self.fn = fn
        self.prng = ParkMillerPRNG(seed)
        self.trials = 0
        self._mean = 0.0
        self._m2 = 0.0

    def sample(self, count: int) -> None:
        """Draw ``count`` samples, updating the running estimate."""
        if count <= 0:
            raise ReproError(f"sample count must be positive: {count}")
        for _ in range(count):
            value = self.fn(self.prng.uniform())
            self.trials += 1
            delta = value - self._mean
            self._mean += delta / self.trials
            self._m2 += delta * (value - self._mean)

    @property
    def estimate(self) -> float:
        """Current integral estimate (the sample mean)."""
        return self._mean

    def standard_error(self) -> float:
        """Standard error of the estimate; infinite below 2 samples."""
        if self.trials < 2:
            return math.inf
        variance = self._m2 / (self.trials - 1)
        return math.sqrt(max(variance, 0.0) / self.trials)

    def relative_error(self) -> float:
        """Standard error over the estimate, clamped to [0, 1].

        A brand-new experiment reports 1.0 (maximum urgency), matching
        the paper's behaviour where a freshly started task receives a
        large share.
        """
        if self.trials < 2 or self._mean == 0.0:
            return 1.0
        return min(self.standard_error() / abs(self._mean), 1.0)


class MonteCarloTask:
    """A Monte-Carlo experiment thread with periodic ticket updates.

    Parameters
    ----------
    name:
        Task name (also labels its counter).
    inflator:
        Shared :class:`~repro.core.inflation.ErrorDrivenInflator` that
        maps relative error to ticket value.  Pass None to run at fixed
        funding (the no-inflation ablation).
    trials_per_batch:
        Samples per Compute chunk.
    batch_ms:
        Virtual CPU cost per batch.
    update_every_batches:
        Ticket re-funding cadence.
    """

    def __init__(
        self,
        name: str,
        fn: Callable[[float], float] = quarter_circle,
        seed: int = 1,
        inflator: Optional[ErrorDrivenInflator] = None,
        trials_per_batch: int = 500,
        batch_ms: float = 10.0,
        update_every_batches: int = 10,
    ) -> None:
        if trials_per_batch <= 0 or batch_ms <= 0 or update_every_batches <= 0:
            raise ReproError("Monte-Carlo task parameters must be positive")
        self.name = name
        self.estimator = MonteCarloEstimator(fn, seed=seed)
        self.inflator = inflator
        self.trials_per_batch = trials_per_batch
        self.batch_ms = batch_ms
        self.update_every_batches = update_every_batches
        self.counter = WindowedCounter(f"montecarlo:{name}")
        self.ticket_history = []  # (time, amount) after each update

    @property
    def trials(self) -> int:
        """Total samples drawn so far."""
        return self.estimator.trials

    def body(self, ctx: ThreadContext) -> Generator[Syscall, None, None]:
        """Thread body: sample batches, periodically re-fund from error."""
        batches = 0
        while True:
            yield Compute(self.batch_ms)
            self.estimator.sample(self.trials_per_batch)
            self.counter.add(ctx.now, self.trials_per_batch)
            batches += 1
            if self.inflator is not None and batches % self.update_every_batches == 0:
                amount = self.inflator.update(
                    ctx.thread, self.estimator.relative_error()
                )
                self.ticket_history.append((ctx.now, amount))
