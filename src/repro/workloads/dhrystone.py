"""Dhrystone-style compute-bound workload (Figures 4, 5, 9).

The paper measures relative execution rates with the Dhrystone
benchmark [Wei84]: a pure CPU loop whose iteration count is the
progress metric.  Here a Dhrystone task is a thread that alternates
``Compute`` chunks with progress recording; its iteration *rate* is
therefore exactly proportional to the CPU share the scheduler grants
it, which is the quantity Figures 4/5/9 plot.

The default calibration (0.05 ms/iteration, i.e. 20k iterations/sec of
dedicated CPU) is in the ballpark of the paper's 25 MHz DECStation;
only ratios matter to the experiments.
"""

from __future__ import annotations

from typing import Generator

from repro.errors import ReproError
from repro.kernel.syscalls import Compute, Syscall
from repro.kernel.thread import ThreadContext
from repro.metrics.counters import WindowedCounter

__all__ = ["DhrystoneTask", "ITERATION_MS"]

#: Virtual CPU milliseconds per Dhrystone iteration.
ITERATION_MS = 0.05


class DhrystoneTask:
    """A compute-bound iteration counter.

    Parameters
    ----------
    chunk_iterations:
        Iterations per Compute chunk.  The default (200 iterations =
        10 ms) keeps event counts low while staying much finer than the
        100 ms quantum.
    iteration_ms:
        Virtual CPU cost per iteration.
    """

    def __init__(self, name: str, chunk_iterations: int = 200,
                 iteration_ms: float = ITERATION_MS) -> None:
        if chunk_iterations <= 0:
            raise ReproError("chunk_iterations must be positive")
        if iteration_ms <= 0:
            raise ReproError("iteration_ms must be positive")
        self.name = name
        self.chunk_iterations = chunk_iterations
        self.iteration_ms = iteration_ms
        self.counter = WindowedCounter(f"dhrystone:{name}")

    @property
    def iterations(self) -> float:
        """Total iterations completed."""
        return self.counter.total

    def rate_per_second(self, start: float, end: float) -> float:
        """Average iterations/sec over a virtual-time window."""
        if end <= start:
            return 0.0
        return self.counter.count_between(start, end) / (end - start) * 1000.0

    def body(self, ctx: ThreadContext) -> Generator[Syscall, None, None]:
        """Thread body: compute forever, recording progress per chunk."""
        chunk_ms = self.chunk_iterations * self.iteration_ms
        while True:
            yield Compute(chunk_ms)
            self.counter.add(ctx.now, self.chunk_iterations)
