"""Condition variables layered on the simulated mutexes.

POSIX-style semantics: ``wait`` atomically releases the associated
mutex and blocks; ``signal``/``broadcast`` move waiters to the mutex's
acquisition queue, so a signalled thread resumes *holding the lock*.
With a :class:`~repro.sync.mutex.LotteryMutex` underneath, a signalled
waiter's funding transfers to the mutex currency while it re-acquires,
preserving the section 6.1 inheritance behaviour end-to-end.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, TYPE_CHECKING

from repro.errors import KernelError
from repro.sync.mutex import MutexBase

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.thread import Thread

__all__ = ["Condition"]


class Condition:
    """A condition variable bound to a mutex."""

    def __init__(self, kernel: "Kernel", mutex: MutexBase, name: str = "cond") -> None:
        self.kernel = kernel
        self.mutex = mutex
        self.name = name
        self._waiters: Deque["Thread"] = deque()
        self.signals = 0
        self.broadcasts = 0

    def wait(self, thread: "Thread") -> Any:
        """Release the mutex and block until signalled (kernel hook)."""
        from repro.kernel.kernel import BLOCK  # local import: cycle guard

        if self.mutex.owner is not thread:
            raise KernelError(
                f"thread {thread.name!r} waited on {self.name!r} without "
                f"holding mutex {self.mutex.name!r}"
            )
        self.mutex.release(thread)
        self._waiters.append(thread)
        return BLOCK

    def signal(self, _signaller: "Thread" = None) -> None:
        """Wake one waiter; it re-contends for the mutex before resuming."""
        self.signals += 1
        if not self._waiters:
            return
        waiter = self._waiters.popleft()
        self._hand_to_mutex(waiter)

    def broadcast(self, _signaller: "Thread" = None) -> None:
        """Wake every waiter; each re-contends for the mutex."""
        self.broadcasts += 1
        while self._waiters:
            self._hand_to_mutex(self._waiters.popleft())

    def waiting(self) -> int:
        """Number of threads blocked in wait()."""
        return len(self._waiters)

    # -- internals ---------------------------------------------------------------

    def _hand_to_mutex(self, waiter: "Thread") -> None:
        """Move a signalled waiter into the mutex acquisition path."""
        if self.mutex.owner is None and not self.mutex._has_waiters():
            # Lock is free: grant immediately and wake the thread.
            self.mutex._grant(waiter, waited=0.0)
            self.kernel.wake(waiter)
        else:
            # Lock is contended: join the waiter queue; the release path
            # will wake the thread when it wins the lock.
            self.mutex._enqueue_waiter(waiter)
